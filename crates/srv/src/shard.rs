//! Multi-instance cache sharding.
//!
//! Several `sctmd` processes can partition the content-addressed
//! capture cache: each [`CaptureKey`] has exactly one *owner* instance,
//! chosen by consistent hashing over the key's existing FNV value. A
//! non-owner that misses forwards the capture to the owner via the
//! `fwd` verb instead of capturing locally, so a sweep over one
//! workload performs **one capture cluster-wide** — the single-flight
//! guarantee survives the network hop:
//!
//! - on the non-owner, the local `Pending` slot still dedups concurrent
//!   local requests (one forward per key, not N);
//! - on the owner, `fwd` goes through the owner's own
//!   `get_or_capture`, so racing forwards from several peers collapse
//!   onto one production there.
//!
//! A forward that fails (peer down, malformed reply) surfaces a typed
//! error to that request and releases the local pending slot; the next
//! request for the key retries. The owner never re-forwards — it is by
//! definition the end of the chain — so there are no forwarding loops
//! and no distributed deadlock.
//!
//! The ring uses ~64 virtual nodes per peer (FNV over `"addr|vnode"`,
//! then a splitmix64 finalizer — raw FNV-1a of near-identical strings
//! clusters, because the last byte is multiplied by the prime only
//! once, and a clustered ring degenerates to one owner). The mix keeps
//! the key split within a few percent of even for small clusters while
//! staying entirely deterministic: every instance computes the same
//! ring from the same `--peers` list, no coordination protocol
//! required.

use crate::cache::CaptureKey;
use crate::proto::{fwd_line, parse_fwd_response, CacheOutcome};
use sctm_client::{Client, ClientOptions};
use sctm_core::trace::TraceLog;
use sctm_core::{Experiment, SctmError};
use std::collections::HashMap;
use std::sync::Mutex;

/// Virtual nodes per peer: enough that a two-instance ring splits keys
/// roughly evenly, cheap enough that ring construction is trivial.
const VNODES_PER_PEER: u32 = 64;

fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer. FNV-1a values of strings that differ only in
/// their last characters sit within `prime * small-delta` of each
/// other, so using them directly as ring positions collapses each
/// peer's vnodes into one tight arc. Mixing spreads both the vnode
/// positions and the key positions across the full u64 circle.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Deterministic consistent-hash ring over the peer list.
#[derive(Clone, Debug)]
pub struct ShardRing {
    /// Sorted ring points: (position, peer index).
    points: Vec<(u64, usize)>,
    peers: Vec<String>,
    self_index: usize,
}

impl ShardRing {
    /// Build the ring. `peers` is the full instance list (addresses as
    /// the clients will dial them), `self_addr` must be one of them.
    pub fn new(peers: Vec<String>, self_addr: &str) -> Result<ShardRing, SctmError> {
        if peers.is_empty() {
            return Err(SctmError::InvalidConfig("shard peer list is empty".into()));
        }
        let self_index = peers.iter().position(|p| p == self_addr).ok_or_else(|| {
            SctmError::InvalidConfig(format!(
                "shard self address '{self_addr}' is not in the peer list"
            ))
        })?;
        let mut points = Vec::with_capacity(peers.len() * VNODES_PER_PEER as usize);
        for (i, peer) in peers.iter().enumerate() {
            for v in 0..VNODES_PER_PEER {
                points.push((mix64(fnv64(&format!("{peer}|{v}"))), i));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Ok(ShardRing {
            points,
            peers,
            self_index,
        })
    }

    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    pub fn self_addr(&self) -> &str {
        &self.peers[self.self_index]
    }

    /// The owning peer of `key`: first ring point at or after the key's
    /// hash, wrapping to the first point.
    pub fn owner(&self, key: CaptureKey) -> &str {
        let (_, peer) = self.points[self.point_index(key)];
        &self.peers[peer]
    }

    /// Does this instance own `key`?
    pub fn owns(&self, key: CaptureKey) -> bool {
        self.points[self.point_index(key)].1 == self.self_index
    }

    fn point_index(&self, key: CaptureKey) -> usize {
        let pos = mix64(key.0);
        let idx = self.points.partition_point(|&(p, _)| p < pos);
        idx % self.points.len()
    }
}

/// Runtime shard state: the ring plus lazily-dialed pooled clients to
/// each peer. Peer connections are created on first forward and reused
/// through the [`Client`] pool thereafter.
pub struct Shard {
    ring: ShardRing,
    clients: Mutex<HashMap<String, std::sync::Arc<Client>>>,
    /// Dial/IO options for peer links; short-ish timeout so one hung
    /// peer degrades into typed errors instead of wedging workers.
    opts: ClientOptions,
}

impl Shard {
    pub fn new(ring: ShardRing) -> Shard {
        Shard {
            ring,
            clients: Mutex::new(HashMap::new()),
            opts: ClientOptions {
                io_timeout_ms: 60_000,
                pool_cap: 4,
                max_busy_retries: 0,
            },
        }
    }

    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    fn client_for(&self, addr: &str) -> Result<std::sync::Arc<Client>, SctmError> {
        let mut clients = self.clients.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = clients.get(addr) {
            return Ok(std::sync::Arc::clone(c));
        }
        let c = std::sync::Arc::new(
            Client::connect_with(addr, self.opts)
                .map_err(|e| SctmError::Io(format!("dial shard peer {addr}: {e}")))?,
        );
        clients.insert(addr.to_string(), std::sync::Arc::clone(&c));
        Ok(c)
    }

    /// Fetch the capture for `exp` from its owning peer, asking for the
    /// binary sctf wire format (several× smaller frames than CSV; the
    /// reply decoder accepts either, so a CSV-pinned peer still works).
    /// Called from a non-owner's capture stage as the single-flight
    /// producer, so at most one forward per key is in flight per
    /// instance. Any failure — dial, transport, malformed reply,
    /// undecodable payload — is a typed [`SctmError`]; the caller's
    /// pending-slot guard releases waiters.
    pub fn fetch_from_owner(
        &self,
        owner: &str,
        exp: &Experiment,
        id: &str,
    ) -> Result<(TraceLog, CacheOutcome), SctmError> {
        let client = self.client_for(owner)?;
        let line = fwd_line(exp, id, sctm_core::trace::TraceFormat::Sctf);
        let reply = client
            .call(&line)
            .map_err(|e| SctmError::Io(format!("fwd to {owner}: {e}")))?;
        parse_fwd_response(&reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring2() -> ShardRing {
        ShardRing::new(
            vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
            "127.0.0.1:7001",
        )
        .unwrap()
    }

    #[test]
    fn every_instance_computes_the_same_owner() {
        let a = ring2();
        let b = ShardRing::new(a.peers().to_vec(), "127.0.0.1:7002").unwrap();
        for seed in 0..200u64 {
            let key = CaptureKey::new("fft", 4, 600, seed);
            assert_eq!(a.owner(key), b.owner(key));
            assert_eq!(a.owns(key), a.owner(key) == a.self_addr());
            assert_eq!(b.owns(key), b.owner(key) == b.self_addr());
            // Exactly one instance owns each key.
            assert_ne!(a.owns(key), b.owns(key));
        }
    }

    #[test]
    fn two_instance_split_is_roughly_even() {
        let ring = ring2();
        let owned = (0..1000u64)
            .filter(|&seed| ring.owns(CaptureKey::new("fft", 4, 600, seed)))
            .count();
        // Consistent hashing with 64 vnodes/peer: expect 50% ± a wide
        // margin; the guard is against a degenerate all-or-nothing ring.
        assert!((200..=800).contains(&owned), "owned {owned}/1000");
    }

    #[test]
    fn single_instance_ring_owns_everything() {
        let ring = ShardRing::new(vec!["a:1".into()], "a:1").unwrap();
        for seed in 0..50u64 {
            assert!(ring.owns(CaptureKey::new("lu", 8, 900, seed)));
        }
    }

    #[test]
    fn misconfigured_rings_are_rejected() {
        assert!(ShardRing::new(vec![], "a:1").is_err());
        assert!(ShardRing::new(vec!["a:1".into()], "b:2").is_err());
    }
}
