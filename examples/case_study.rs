//! The paper's case study (experiment E2): one real application on the
//! ONoC, simulated execution-driven and with the self-correction trace
//! model, compared against the baseline electrical NoC simulator.
//!
//! ```text
//! cargo run --release --example case_study             # 16 cores
//! cargo run --release --example case_study -- 8 1200   # 64 cores, longer run
//! SCTM_OBS=1 cargo run --release --example case_study  # + Perfetto trace
//! ```
//!
//! With `SCTM_OBS=1` the run is fully instrumented: every simulation
//! phase becomes a host-time span, every message hop a sim-time
//! instant, and the example writes `case_study_trace.json` (open it at
//! <https://ui.perfetto.dev>) plus `case_study_manifest.json` with
//! metric snapshots and per-iteration convergence telemetry.

use sctm::engine::table::{fnum, Table};
use sctm::obs;
use sctm::prelude::*;

fn main() {
    obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let side: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let ops: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let kernel = Kernel::Fft;

    let omesh = Experiment::new(SystemConfig::new(side, NetworkKind::Omesh), kernel).with_ops(ops);
    let emesh = Experiment::new(SystemConfig::new(side, NetworkKind::Emesh), kernel).with_ops(ops);

    let go = |e: &Experiment, spec: &RunSpec| e.execute(spec).expect("valid spec").report;
    eprintln!("running the execution-driven ONoC reference...");
    let reference = go(&omesh, &RunSpec::exec_driven());
    eprintln!("running the self-correction trace model...");
    let sctm = go(&omesh, &RunSpec::self_correction(4));
    eprintln!("running the classic trace model...");
    let classic = go(&omesh, &RunSpec::classic());
    eprintln!("running the baseline electrical NoC simulator...");
    let baseline = go(&emesh, &RunSpec::exec_driven());

    let mut t = Table::new(
        format!("Case study: {} on {} cores", kernel.label(), side * side),
        &[
            "simulator",
            "network",
            "exec time",
            "data lat (ns)",
            "exec err %",
            "wall (ms)",
        ],
    );
    for (name, r) in [
        ("execution-driven ONoC (reference)", &reference),
        ("self-correction trace model", &sctm),
        ("classic trace model", &classic),
        ("baseline NoC simulator", &baseline),
    ] {
        let err = if r.network == reference.network {
            fnum(accuracy(r, &reference).exec_time_err_pct)
        } else {
            "-".into()
        };
        t.row(&[
            name.to_string(),
            r.network.to_string(),
            r.exec_time.to_string(),
            fnum(r.mean_lat_data_ns),
            err,
            fnum(r.wall.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());

    let acc = accuracy(&sctm, &reference);
    println!(
        "headline: SCTM reproduces the execution-driven ONoC result within {:.1}% \
         at {:.2}x the wall time of the baseline electrical simulator.",
        acc.exec_time_err_pct,
        sctm.wall.as_secs_f64() / baseline.wall.as_secs_f64()
    );

    if obs::enabled() {
        let trace = obs::chrome_trace_json(&obs::drain());
        let mut manifest = obs::Manifest::new();
        manifest.config("kernel", kernel.label());
        manifest.config("cores", side * side);
        manifest.config("ops", ops);
        manifest.metrics = obs::global_snapshot();
        manifest.iterations = obs::iterations_snapshot();
        std::fs::write("case_study_trace.json", trace).expect("write trace");
        std::fs::write("case_study_manifest.json", manifest.to_json()).expect("write manifest");
        eprintln!(
            "obs: wrote case_study_trace.json (open at https://ui.perfetto.dev) \
             and case_study_manifest.json"
        );
    }
}
