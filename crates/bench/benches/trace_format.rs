//! Trace-format economics (PR10): cold-load cost and resident
//! footprint of the sctf binary container versus the CSV text it
//! replaces. `trace_cold_load` times parsing a 64-core fft capture
//! from each on-disk form (and the zero-copy reader open, which is the
//! wire/cache fast path); `trace_footprint` times the encoders, whose
//! output sizes are the bytes-per-message numbers §P10 tabulates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_core::{Experiment, NetworkKind, SystemConfig};
use sctm_trace::sctf::{from_sctf_bytes, to_sctf_bytes};
use sctm_trace::{SctfReader, TraceLog};
use sctm_workloads::Kernel;

fn capture(side: usize, ops: usize) -> TraceLog {
    Experiment::new(SystemConfig::new(side, NetworkKind::Omesh), Kernel::Fft)
        .with_ops(ops)
        .capture()
}

fn bench_cold_load(c: &mut Criterion) {
    // 64 cores (side 8): the acceptance workload for the ≥5× cold-load
    // speedup and ≤0.5× residency contract.
    let log64 = capture(8, 300);
    let csv64 = log64.to_csv_string();
    let sctf64 = to_sctf_bytes(&log64);

    let mut g = c.benchmark_group("trace_cold_load");
    g.bench_with_input(
        BenchmarkId::from_parameter("csv_parse_64c"),
        &csv64,
        |b, csv| b.iter(|| black_box(TraceLog::from_csv_str(csv).expect("csv").len())),
    );
    g.bench_with_input(
        BenchmarkId::from_parameter("sctf_decode_64c"),
        &sctf64,
        |b, bytes| b.iter(|| black_box(from_sctf_bytes(bytes).expect("sctf").len())),
    );
    // Zero-copy open: header + section validation only, no row structs.
    // This is what a cache hit or a wire frame pays before replay.
    g.bench_with_input(
        BenchmarkId::from_parameter("sctf_reader_open_64c"),
        &sctf64,
        |b, bytes| b.iter(|| black_box(SctfReader::from_bytes(bytes).expect("reader").len())),
    );

    // 256 cores (side 16): the newly-opened scale — kept cheap with a
    // smaller op count so the gate stays fast.
    let log256 = capture(16, 120);
    let csv256 = log256.to_csv_string();
    let sctf256 = to_sctf_bytes(&log256);
    g.bench_with_input(
        BenchmarkId::from_parameter("csv_parse_256c"),
        &csv256,
        |b, csv| b.iter(|| black_box(TraceLog::from_csv_str(csv).expect("csv").len())),
    );
    g.bench_with_input(
        BenchmarkId::from_parameter("sctf_decode_256c"),
        &sctf256,
        |b, bytes| b.iter(|| black_box(from_sctf_bytes(bytes).expect("sctf").len())),
    );
    g.finish();

    // Encoder side: what a capture pays to freeze into the cache, and
    // what a CSV export costs for comparison.
    let mut g = c.benchmark_group("trace_footprint");
    g.bench_with_input(
        BenchmarkId::from_parameter("csv_encode_64c"),
        &log64,
        |b, log| b.iter(|| black_box(log.to_csv_string().len())),
    );
    g.bench_with_input(
        BenchmarkId::from_parameter("sctf_encode_64c"),
        &log64,
        |b, log| b.iter(|| black_box(to_sctf_bytes(log).len())),
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cold_load
}
criterion_main!(benches);
