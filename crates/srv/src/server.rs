//! The batch scheduler and its front-ends.
//!
//! One scheduler thread owns the run loop: it drains whatever the
//! bounded request queue holds, drops requests that outlived their
//! queue deadline, and runs the rest as one batch on the deterministic
//! worker pool ([`par_map`]) — the same executor the sweep examples and
//! the bench harness use, so a batch of N requests is bit-identical to
//! running them serially. Captures go through the content-addressed
//! [`CaptureCache`], so a batch sweeping one workload across many
//! network configs performs a single capture.
//!
//! Backpressure is explicit: `submit` on a full queue fails immediately
//! with a `busy` response carrying `retry_after_ms`, never blocks the
//! caller, and never grows the queue past its cap. Shutdown is a
//! graceful drain — everything already queued still runs and answers.

use crate::cache::{CacheStats, CaptureCache, CaptureKey};
use crate::proto::{
    self, error_response, ok_response, parse_request, result_json, timeout_response, CacheOutcome,
    Request, RunRequest,
};
use sctm_core::Mode;
use sctm_engine::par::par_map;
use sctm_obs::Manifest;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service knobs. All bounds are hard: the queue never exceeds
/// `queue_cap` and the cache evicts past `cache_bytes`.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Bounded request queue length; submissions beyond it get `busy`.
    pub queue_cap: usize,
    /// Capture cache byte budget (CSV-serialised trace bytes).
    pub cache_bytes: usize,
    /// Queue deadline for requests that do not carry `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Retry hint attached to `busy` responses.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_cap: 64,
            cache_bytes: 256 << 20,
            default_timeout_ms: 300_000,
            retry_after_ms: 50,
        }
    }
}

struct Job {
    req: RunRequest,
    enqueued: Instant,
    /// `None` never times out (deadline arithmetic overflowed).
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

struct Shared {
    cfg: ServerConfig,
    cache: CaptureCache,
    queue: Mutex<QueueState>,
    jobs_ready: Condvar,
    completed: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running batch-simulation service. Dropping it drains gracefully.
pub struct Server {
    shared: Arc<Shared>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    pub fn start(cfg: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            cache: CaptureCache::new(cfg.cache_bytes),
            cfg,
            queue: Mutex::new(QueueState::default()),
            jobs_ready: Condvar::new(),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        });
        let worker = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("sctmd-scheduler".into())
            .spawn(move || scheduler_loop(&worker))
            .expect("spawn scheduler thread");
        Server {
            shared,
            scheduler: Mutex::new(Some(scheduler)),
        }
    }

    pub fn config(&self) -> ServerConfig {
        self.shared.cfg
    }

    /// Enqueue a run. Returns the response channel, or the ready-made
    /// `busy`/`error` line when the queue is full or draining. Never
    /// blocks.
    pub fn submit(&self, req: RunRequest) -> Result<mpsc::Receiver<String>, String> {
        let cfg = self.shared.cfg;
        let now = Instant::now();
        let timeout = req.timeout_ms.unwrap_or(cfg.default_timeout_ms);
        let deadline = now.checked_add(Duration::from_millis(timeout));
        let mut q = lock(&self.shared.queue);
        if q.draining {
            let err = sctm_core::SctmError::InvalidSpec("server is shutting down".into());
            return Err(error_response(&req.id, &err));
        }
        if q.jobs.len() >= cfg.queue_cap {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(proto::busy_response(&req.id, cfg.retry_after_ms));
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Job {
            req,
            enqueued: now,
            deadline,
            reply: tx,
        });
        drop(q);
        self.shared.jobs_ready.notify_all();
        Ok(rx)
    }

    /// Submit and wait for the response line.
    pub fn submit_blocking(&self, req: RunRequest) -> String {
        match self.submit(req) {
            Ok(rx) => rx
                .recv()
                .unwrap_or_else(|_| r#"{"status":"error","kind":"internal","message":"scheduler dropped the request"}"#.into()),
            Err(line) => line,
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Service counters as a run manifest in the `sctm-obs` schema.
    pub fn stats_manifest(&self) -> Manifest {
        let cs = self.shared.cache.stats();
        let mut m = Manifest::new();
        m.config("queue_cap", self.shared.cfg.queue_cap);
        m.config("cache_budget_bytes", self.shared.cfg.cache_bytes);
        m.metrics.counter_add("srv.cache.hits", cs.hits);
        m.metrics.counter_add("srv.cache.misses", cs.misses);
        m.metrics.counter_add("srv.cache.evictions", cs.evictions);
        m.metrics.gauge_set("srv.cache.entries", cs.entries as f64);
        m.metrics.gauge_set("srv.cache.bytes", cs.bytes as f64);
        m.metrics
            .gauge_set("srv.queue.depth", self.queue_depth() as f64);
        m.metrics.counter_add(
            "srv.completed",
            self.shared.completed.load(Ordering::Relaxed),
        );
        m.metrics
            .counter_add("srv.rejected", self.shared.rejected.load(Ordering::Relaxed));
        m.metrics
            .counter_add("srv.timeouts", self.shared.timeouts.load(Ordering::Relaxed));
        m
    }

    /// Graceful drain: refuse new submissions, finish everything
    /// queued, then stop the scheduler. Idempotent.
    pub fn drain(&self) {
        {
            let mut q = lock(&self.shared.queue);
            q.draining = true;
        }
        self.shared.jobs_ready.notify_all();
        let handle = lock(&self.scheduler).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut q = lock(&shared.queue);
            while q.jobs.is_empty() && !q.draining {
                q = shared.jobs_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.jobs.is_empty() {
                return; // draining and empty: done
            }
            q.jobs.drain(..).collect()
        };

        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            match job.deadline {
                Some(d) if d <= now => {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    let waited = now.duration_since(job.enqueued).as_millis();
                    let _ = job.reply.send(timeout_response(&job.req.id, waited));
                }
                _ => live.push(job),
            }
        }

        // The batch runs on the deterministic pool: results land in
        // input order and are bit-identical to serial execution, so
        // concurrency never changes an answer.
        let jobs: Vec<_> = live
            .into_iter()
            .map(|job| {
                let shared = Arc::clone(shared);
                move || {
                    let line = run_job(&shared, &job.req);
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(line);
                }
            })
            .collect();
        par_map(jobs);
    }
}

/// Execute one request, satisfying trace-mode captures from the cache.
fn run_job(shared: &Shared, req: &RunRequest) -> String {
    let wall0 = Instant::now();
    let e = &req.experiment;
    let traceless = matches!(req.spec.mode, Mode::ExecutionDriven | Mode::Online { .. });
    let (outcome, cache) = if traceless {
        (e.execute(&req.spec), CacheOutcome::Bypass)
    } else {
        let key = CaptureKey::new(e.kernel.label(), e.system.side, e.ops_per_core, e.seed);
        let (log, hit) = shared.cache.get_or_capture(key, || e.capture());
        let cache = if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        (e.execute_seeded(&req.spec, Some(&log)), cache)
    };
    match outcome {
        Ok(out) => ok_response(
            &req.id,
            wall0.elapsed().as_nanos(),
            cache,
            &result_json(&out.report, e),
        ),
        Err(err) => error_response(&req.id, &err),
    }
}

/// A response owed to the client, in request order.
enum Pending {
    Ready(String),
    Waiting(mpsc::Receiver<String>),
}

fn recv_line(rx: &mpsc::Receiver<String>) -> String {
    rx.recv().unwrap_or_else(|_| {
        r#"{"status":"error","kind":"internal","message":"scheduler dropped the request"}"#.into()
    })
}

/// Serve newline-delimited requests from `reader`, writing one response
/// line per request to `writer` **in request order**. Returns `true`
/// when the stream asked for shutdown.
///
/// Run responses are buffered so consecutive `run` lines schedule as
/// one parallel batch; completed head-of-line responses stream out as
/// soon as they are ready, and control verbs (`ping`, `stats`,
/// `shutdown`) flush everything still owed first, so their answers
/// observe all preceding runs.
pub fn serve_lines<R: BufRead, W: Write>(
    reader: R,
    writer: &mut W,
    server: &Server,
) -> std::io::Result<bool> {
    let mut pending: VecDeque<Pending> = VecDeque::new();

    let flush_all = |pending: &mut VecDeque<Pending>, writer: &mut W| -> std::io::Result<()> {
        while let Some(p) = pending.pop_front() {
            let line = match p {
                Pending::Ready(line) => line,
                Pending::Waiting(rx) => recv_line(&rx),
            };
            writeln!(writer, "{line}")?;
        }
        writer.flush()
    };
    let flush_ready = |pending: &mut VecDeque<Pending>, writer: &mut W| -> std::io::Result<()> {
        let mut wrote = false;
        loop {
            match pending.front() {
                Some(Pending::Ready(_)) => {
                    if let Some(Pending::Ready(line)) = pending.pop_front() {
                        writeln!(writer, "{line}")?;
                        wrote = true;
                    }
                }
                Some(Pending::Waiting(rx)) => match rx.try_recv() {
                    Ok(line) => {
                        pending.pop_front();
                        writeln!(writer, "{line}")?;
                        wrote = true;
                    }
                    Err(_) => break,
                },
                None => break,
            }
        }
        if wrote {
            writer.flush()?;
        }
        Ok(())
    };

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(err) => pending.push_back(Pending::Ready(error_response("", &err))),
            Ok(Request::Run(req)) => match server.submit(*req) {
                Ok(rx) => pending.push_back(Pending::Waiting(rx)),
                Err(line) => pending.push_back(Pending::Ready(line)),
            },
            Ok(Request::Ping) => {
                flush_all(&mut pending, writer)?;
                writeln!(writer, r#"{{"status":"ok","pong":true}}"#)?;
                writer.flush()?;
            }
            Ok(Request::Stats) => {
                flush_all(&mut pending, writer)?;
                let stats = server.stats_manifest().to_json_compact();
                writeln!(writer, r#"{{"status":"ok","stats":{stats}}}"#)?;
                writer.flush()?;
            }
            Ok(Request::Shutdown) => {
                flush_all(&mut pending, writer)?;
                writeln!(writer, r#"{{"status":"ok","shutting_down":true}}"#)?;
                writer.flush()?;
                return Ok(true);
            }
        }
        flush_ready(&mut pending, writer)?;
    }
    flush_all(&mut pending, writer)?;
    Ok(false)
}

/// Serve the line protocol over TCP until a connection sends
/// `shutdown`. One thread per connection; the accept loop polls so it
/// can notice the shutdown flag. Returns after the graceful drain.
pub fn serve_tcp(listener: std::net::TcpListener, server: Server) -> std::io::Result<()> {
    use std::sync::atomic::AtomicBool;
    listener.set_nonblocking(true)?;
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || {
                    stream.set_nonblocking(false).ok();
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let mut write_half = stream;
                    let reader = std::io::BufReader::new(read_half);
                    if let Ok(true) = serve_lines(reader, &mut write_half, &server) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    server.drain();
    Ok(())
}
