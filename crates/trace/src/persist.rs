//! Trace (de)serialisation: the CSV interchange codec, the typed
//! [`TraceError`], and the [`TraceStore`] facade that unifies it with
//! the binary [`crate::sctf`] container.
//!
//! Captures are expensive relative to replays, so they are worth
//! keeping: a saved trace can be replayed against any number of target
//! networks (or shared with another machine) without re-running the
//! full-system simulation. Two formats share one API:
//!
//! - **CSV** (`sctm-trace-v1`, this module) is the narrow
//!   *import/export pair* — [`TraceLog::to_csv_string`] /
//!   [`TraceLog::from_csv_str`] — kept greppable and diffable for
//!   interchange with external tools.
//! - **sctf** ([`crate::sctf`]) is the *storage* format: a columnar
//!   binary container that cold-loads an order of magnitude faster and
//!   at a fraction of the bytes.
//!
//! Callers should not pick a codec by hand: [`TraceLog::save`] selects
//! by extension (`.sctf` → binary, anything else → CSV),
//! [`TraceLog::save_as`] selects explicitly, and [`TraceLog::load`]
//! autodetects by magic bytes, so either format round-trips through
//! the same two calls.

use crate::log::{TraceLog, TraceRecord};
use crate::sctf;
use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
use sctm_engine::time::SimTime;
use std::path::Path;

const MAGIC: &str = "sctm-trace-v1";

/// Why a trace failed to parse — CSV or sctf, file or in-memory
/// bytes. Every malformed input maps to a specific variant; parsing
/// never panics, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input starts with neither the `sctm-trace-v1` CSV magic nor
    /// the sctf container magic.
    BadMagic,
    /// CSV: the file ends (or a line ends) before all expected data: a
    /// missing metadata/header line or a record with the wrong field
    /// count. `line` is 1-based.
    Truncated { line: usize },
    /// CSV: a numeric field failed to parse. `field` names the column.
    NonNumeric { line: usize, field: &'static str },
    /// CSV: a numeric field parsed but exceeds its type's range (node
    /// ids and byte counts are `u32`).
    OutOfRange { line: usize, field: &'static str },
    /// CSV: message class column was neither `C` nor `D`.
    BadClass { line: usize },
    /// sctf: a section (or the header itself) is shorter than its
    /// declared or required length.
    TruncatedSection {
        section: &'static str,
        need: u64,
        have: u64,
    },
    /// sctf: the container checksum does not match its contents.
    BadChecksum { stored: u64, computed: u64 },
    /// sctf: the container's format version is not one this build
    /// understands (only [`sctf::SCTF_VERSION`] is).
    VersionSkew { found: u32 },
    /// sctf: a section offset violates the format's 8-byte alignment
    /// rule, so the zero-copy column casts would be unsound.
    Misaligned { section: &'static str, offset: u64 },
    /// Underlying file I/O failed.
    Io(String),
    /// The records parsed but violate trace invariants
    /// ([`TraceLog::validate`] — causality, duplicate ids...).
    Invalid(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "neither a {MAGIC} nor an sctf file"),
            TraceError::Truncated { line } => write!(f, "line {line}: truncated"),
            TraceError::NonNumeric { line, field } => {
                write!(f, "line {line}: non-numeric {field}")
            }
            TraceError::OutOfRange { line, field } => {
                write!(f, "line {line}: {field} out of range")
            }
            TraceError::BadClass { line } => write!(f, "line {line}: bad message class"),
            TraceError::TruncatedSection {
                section,
                need,
                have,
            } => write!(f, "sctf section {section}: need {need} bytes, have {have}"),
            TraceError::BadChecksum { stored, computed } => write!(
                f,
                "sctf checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::VersionSkew { found } => write!(
                f,
                "sctf version {found} (this build reads version {})",
                sctf::SCTF_VERSION
            ),
            TraceError::Misaligned { section, offset } => {
                write!(f, "sctf section {section} misaligned at offset {offset}")
            }
            TraceError::Io(e) => write!(f, "trace file i/o: {e}"),
            TraceError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// On-disk trace encodings the [`TraceStore`] facade can read/write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// `sctm-trace-v1` self-describing CSV (interchange).
    Csv,
    /// `sctf` binary columnar container (storage; see [`crate::sctf`]).
    Sctf,
}

impl TraceFormat {
    /// Format implied by a path's extension: `.sctf` → [`Self::Sctf`],
    /// anything else (including none) → [`Self::Csv`].
    pub fn from_path(path: impl AsRef<Path>) -> TraceFormat {
        match path.as_ref().extension().and_then(|e| e.to_str()) {
            Some(e) if e.eq_ignore_ascii_case("sctf") => TraceFormat::Sctf,
            _ => TraceFormat::Csv,
        }
    }

    /// Format implied by leading magic bytes, or `None` for neither.
    pub fn sniff(bytes: &[u8]) -> Option<TraceFormat> {
        if bytes.starts_with(&sctf::SCTF_MAGIC) {
            Some(TraceFormat::Sctf)
        } else if bytes.starts_with(MAGIC.as_bytes()) {
            Some(TraceFormat::Csv)
        } else {
            None
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            TraceFormat::Csv => "csv",
            TraceFormat::Sctf => "sctf",
        }
    }
}

/// The unified trace I/O facade: one save path, one load path, one
/// error type, both formats. [`TraceLog::save`], [`TraceLog::save_as`]
/// and [`TraceLog::load`] are thin delegates to this.
pub struct TraceStore;

impl TraceStore {
    /// Serialise `log` in `format`, in memory.
    pub fn encode(log: &TraceLog, format: TraceFormat) -> Vec<u8> {
        match format {
            TraceFormat::Csv => log.to_csv_string().into_bytes(),
            TraceFormat::Sctf => sctf::to_sctf_bytes(log),
        }
    }

    /// Decode a trace from bytes, autodetecting the format by magic.
    pub fn decode(bytes: &[u8]) -> Result<TraceLog, TraceError> {
        match TraceFormat::sniff(bytes) {
            Some(TraceFormat::Sctf) => sctf::from_sctf_bytes(bytes),
            Some(TraceFormat::Csv) => {
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| TraceError::Invalid("csv trace is not utf-8".into()))?;
                TraceLog::from_csv_str(s)
            }
            None => Err(TraceError::BadMagic),
        }
    }

    /// Write `log` to `path` in `format`.
    pub fn save_as(
        log: &TraceLog,
        path: impl AsRef<Path>,
        format: TraceFormat,
    ) -> Result<(), TraceError> {
        std::fs::write(path, Self::encode(log, format)).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Read a trace from `path`, autodetecting the format by magic (the
    /// extension is irrelevant on load).
    pub fn load(path: impl AsRef<Path>) -> Result<TraceLog, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::decode(&bytes)
    }
}

impl TraceLog {
    /// Serialise to the CSV trace format — the *export* half of the
    /// interchange pair. For storage (files, caches, wire frames),
    /// prefer [`TraceLog::save`] / [`TraceStore::encode`], which pick
    /// the compact sctf container.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 64);
        out.push_str(&format!(
            "{MAGIC},{},{}\n",
            self.capture_net,
            self.capture_exec_time.as_ps()
        ));
        out.push_str("id,src,dst,class,bytes,t_inject_ps,t_deliver_ps,prev,deps,kind\n");
        for r in &self.records {
            let class = match r.msg.class {
                MsgClass::Control => "C",
                MsgClass::Data => "D",
            };
            let prev = r.prev_same_src.map(|p| p.0.to_string()).unwrap_or_default();
            let deps = r
                .deps
                .iter()
                .map(|d| d.0.to_string())
                .collect::<Vec<_>>()
                .join(";");
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.msg.id.0,
                r.msg.src.0,
                r.msg.dst.0,
                class,
                r.msg.bytes,
                r.t_inject.as_ps(),
                r.t_deliver.as_ps(),
                prev,
                deps,
                r.kind,
            ));
        }
        out
    }

    /// Parse the CSV trace format — the *import* half of the
    /// interchange pair (loads from disk should go through
    /// [`TraceLog::load`], which autodetects the format). Malformed
    /// input of any shape — bad magic, truncated lines, non-numeric or
    /// out-of-range fields — returns the matching [`TraceError`]
    /// variant; parsing never panics.
    pub fn from_csv_str(s: &str) -> Result<TraceLog, TraceError> {
        let mut lines = s.lines();
        let meta = lines.next().ok_or(TraceError::Truncated { line: 1 })?;
        let mut mp = meta.split(',');
        if mp.next() != Some(MAGIC) {
            return Err(TraceError::BadMagic);
        }
        let capture_net: &str = mp.next().ok_or(TraceError::Truncated { line: 1 })?;
        let capture_net: &'static str = match capture_net {
            "analytic" => "analytic",
            "emesh" => "emesh",
            "omesh" => "omesh",
            "oxbar" => "oxbar",
            "hybrid" => "hybrid",
            _ => "unknown",
        };
        let exec_ps: u64 = mp
            .next()
            .ok_or(TraceError::Truncated { line: 1 })?
            .parse()
            .map_err(|_| TraceError::NonNumeric {
                line: 1,
                field: "exec_time",
            })?;
        let header = lines.next().ok_or(TraceError::Truncated { line: 2 })?;
        if !header.starts_with("id,") {
            return Err(TraceError::Truncated { line: 2 });
        }
        let mut records = Vec::new();
        for (ln, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let lineno = ln + 3;
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 10 {
                return Err(TraceError::Truncated { line: lineno });
            }
            let parse_u64 = |s: &str, field: &'static str| -> Result<u64, TraceError> {
                s.parse().map_err(|_| TraceError::NonNumeric {
                    line: lineno,
                    field,
                })
            };
            let parse_u32 = |s: &str, field: &'static str| -> Result<u32, TraceError> {
                let v = parse_u64(s, field)?;
                u32::try_from(v).map_err(|_| TraceError::OutOfRange {
                    line: lineno,
                    field,
                })
            };
            let class = match f[3] {
                "C" => MsgClass::Control,
                "D" => MsgClass::Data,
                _ => return Err(TraceError::BadClass { line: lineno }),
            };
            let prev = if f[7].is_empty() {
                None
            } else {
                Some(MsgId(parse_u64(f[7], "prev")?))
            };
            let deps = if f[8].is_empty() {
                Vec::new()
            } else {
                f[8].split(';')
                    .map(|d| parse_u64(d, "dep").map(MsgId))
                    .collect::<Result<Vec<_>, _>>()?
            };
            // `kind` is diagnostic only; intern the common ones.
            let kind: &'static str = match f[9] {
                "GetS" => "GetS",
                "GetX" => "GetX",
                "Data" => "Data",
                "UpgAck" => "UpgAck",
                "Fetch" => "Fetch",
                "FetchMiss" => "FetchMiss",
                "Inv" => "Inv",
                "InvAck" => "InvAck",
                "WbData" => "WbData",
                "MemReq" => "MemReq",
                "MemResp" => "MemResp",
                "WbMem" => "WbMem",
                "BarArrive" => "BarArrive",
                "BarRelease" => "BarRelease",
                _ => "other",
            };
            records.push(TraceRecord {
                msg: Message {
                    id: MsgId(parse_u64(f[0], "id")?),
                    src: NodeId(parse_u32(f[1], "src")?),
                    dst: NodeId(parse_u32(f[2], "dst")?),
                    class,
                    bytes: parse_u32(f[4], "bytes")?,
                },
                t_inject: SimTime::from_ps(parse_u64(f[5], "t_inject")?),
                t_deliver: SimTime::from_ps(parse_u64(f[6], "t_deliver")?),
                deps,
                prev_same_src: prev,
                kind,
            });
        }
        let log = TraceLog {
            records,
            capture_net,
            capture_exec_time: SimTime::from_ps(exec_ps),
        };
        log.validate().map_err(TraceError::Invalid)?;
        Ok(log)
    }

    /// Write to a file; the format follows the extension (`.sctf` →
    /// binary container, anything else → CSV).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let format = TraceFormat::from_path(&path);
        TraceStore::save_as(self, path, format)
    }

    /// Write to a file in an explicit [`TraceFormat`].
    pub fn save_as(&self, path: impl AsRef<Path>, format: TraceFormat) -> Result<(), TraceError> {
        TraceStore::save_as(self, path, format)
    }

    /// Read from a file, autodetecting the format by magic bytes. I/O
    /// failures and parse failures share one error type
    /// ([`TraceError`], with [`TraceError::Io`] for the former), so
    /// callers match on a single result.
    pub fn load(path: impl AsRef<Path>) -> Result<TraceLog, TraceError> {
        TraceStore::load(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Capture;
    use sctm_cmp::protocol::{InjectRecord, TraceHook};

    fn tiny() -> TraceLog {
        let mut cap = Capture::new();
        let mk = |id: u64, src: u32, dst: u32, class: MsgClass| Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class,
            bytes: if class == MsgClass::Data { 72 } else { 8 },
        };
        cap.on_inject(InjectRecord {
            msg: mk(0, 0, 3, MsgClass::Control),
            at: SimTime::from_ps(100),
            deps: vec![],
            prev_same_src: None,
            kind: "GetS",
        });
        cap.on_deliver(MsgId(0), SimTime::from_ps(900));
        cap.on_inject(InjectRecord {
            msg: mk(1, 3, 0, MsgClass::Data),
            at: SimTime::from_ps(1100),
            deps: vec![MsgId(0)],
            prev_same_src: None,
            kind: "Data",
        });
        cap.on_deliver(MsgId(1), SimTime::from_ps(2400));
        cap.finish("analytic", SimTime::from_ps(3000))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let log = tiny();
        let csv = log.to_csv_string();
        let back = TraceLog::from_csv_str(&csv).unwrap();
        assert_eq!(back.len(), log.len());
        assert_eq!(back.capture_net, "analytic");
        assert_eq!(back.capture_exec_time, log.capture_exec_time);
        for (a, b) in log.records.iter().zip(&back.records) {
            assert_eq!(a.msg.id, b.msg.id);
            assert_eq!(a.msg.src, b.msg.src);
            assert_eq!(a.msg.dst, b.msg.dst);
            assert_eq!(a.msg.class, b.msg.class);
            assert_eq!(a.msg.bytes, b.msg.bytes);
            assert_eq!(a.t_inject, b.t_inject);
            assert_eq!(a.t_deliver, b.t_deliver);
            assert_eq!(a.deps, b.deps);
            assert_eq!(a.prev_same_src, b.prev_same_src);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn file_roundtrip() {
        let log = tiny();
        let path = std::env::temp_dir().join("sctm_trace_roundtrip_test.csv");
        log.save(&path).unwrap();
        let back = TraceLog::load(&path).unwrap();
        assert_eq!(back.len(), log.len());
        let _ = std::fs::remove_file(path);
    }

    /// A syntactically valid one-record trace with `line` substituted
    /// for the record line, for error-variant tests.
    fn with_record(record: &str) -> String {
        format!(
            "{MAGIC},analytic,5000\nid,src,dst,class,bytes,t_inject_ps,t_deliver_ps,prev,deps,kind\n{record}\n"
        )
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            TraceLog::from_csv_str("").err(),
            Some(TraceError::Truncated { line: 1 })
        );
        assert_eq!(
            TraceLog::from_csv_str("nonsense,analytic,5\nid,...\n").err(),
            Some(TraceError::BadMagic)
        );
        // metadata line missing the exec-time field
        assert_eq!(
            TraceLog::from_csv_str(&format!("{MAGIC},analytic\nid,\n")).err(),
            Some(TraceError::Truncated { line: 1 })
        );
        // no column header at all
        assert_eq!(
            TraceLog::from_csv_str(&format!("{MAGIC},analytic,5\n")).err(),
            Some(TraceError::Truncated { line: 2 })
        );
    }

    #[test]
    fn rejects_truncated_record() {
        assert_eq!(
            TraceLog::from_csv_str(&with_record("1,2,3")).err(),
            Some(TraceError::Truncated { line: 3 })
        );
    }

    #[test]
    fn rejects_non_numeric_fields() {
        let cases = [
            ("x,0,1,C,8,100,900,,,GetS", "id"),
            ("0,x,1,C,8,100,900,,,GetS", "src"),
            ("0,0,x,C,8,100,900,,,GetS", "dst"),
            ("0,0,1,C,x,100,900,,,GetS", "bytes"),
            ("0,0,1,C,8,x,900,,,GetS", "t_inject"),
            ("0,0,1,C,8,100,x,,,GetS", "t_deliver"),
            ("0,0,1,C,8,100,900,x,,GetS", "prev"),
            ("0,0,1,C,8,100,900,,0;x,GetS", "dep"),
        ];
        for (record, field) in cases {
            assert_eq!(
                TraceLog::from_csv_str(&with_record(record)).err(),
                Some(TraceError::NonNumeric { line: 3, field }),
                "record {record:?}"
            );
        }
        assert_eq!(
            TraceLog::from_csv_str(&format!("{MAGIC},analytic,zzz\nid,\n")).err(),
            Some(TraceError::NonNumeric {
                line: 1,
                field: "exec_time"
            })
        );
    }

    #[test]
    fn rejects_out_of_range_ids() {
        // node ids and byte counts are u32; values that parse as u64
        // but overflow u32 must be flagged, not silently truncated.
        let cases = [
            ("0,4294967296,1,C,8,100,900,,,GetS", "src"),
            ("0,0,4294967296,C,8,100,900,,,GetS", "dst"),
            ("0,0,1,C,4294967296,100,900,,,GetS", "bytes"),
        ];
        for (record, field) in cases {
            assert_eq!(
                TraceLog::from_csv_str(&with_record(record)).err(),
                Some(TraceError::OutOfRange { line: 3, field }),
                "record {record:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_class() {
        assert_eq!(
            TraceLog::from_csv_str(&with_record("0,0,1,Q,8,100,900,,,GetS")).err(),
            Some(TraceError::BadClass { line: 3 })
        );
    }

    #[test]
    fn rejects_invariant_violations() {
        // delivered before injected — caught by validate(), surfaced
        // as Invalid rather than a panic.
        assert!(matches!(
            TraceLog::from_csv_str(&with_record("0,0,1,C,8,100,50,,,GetS")),
            Err(TraceError::Invalid(_))
        ));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let path = std::env::temp_dir().join("sctm_no_such_trace_file.csv");
        assert!(matches!(TraceLog::load(&path), Err(TraceError::Io(_))));
    }

    #[test]
    fn save_missing_dir_is_io_error() {
        let path = std::env::temp_dir().join("sctm_no_such_dir").join("t.sctf");
        assert!(matches!(tiny().save(&path), Err(TraceError::Io(_))));
    }

    #[test]
    fn extension_selects_format_and_magic_detects_it_back() {
        let log = tiny();
        let dir = std::env::temp_dir();
        let as_sctf = dir.join("sctm_store_roundtrip.sctf");
        let as_csv = dir.join("sctm_store_roundtrip.trace.csv");
        log.save(&as_sctf).unwrap();
        log.save(&as_csv).unwrap();
        // The sctf file is binary, the CSV one is text, and both load
        // back through the same magic-sniffing entry point.
        let sctf_bytes = std::fs::read(&as_sctf).unwrap();
        assert_eq!(TraceFormat::sniff(&sctf_bytes), Some(TraceFormat::Sctf));
        let csv_bytes = std::fs::read(&as_csv).unwrap();
        assert_eq!(TraceFormat::sniff(&csv_bytes), Some(TraceFormat::Csv));
        for p in [&as_sctf, &as_csv] {
            let back = TraceLog::load(p).unwrap();
            assert_eq!(back.len(), log.len());
            assert_eq!(back.capture_exec_time, log.capture_exec_time);
        }
        // Autodetection reads magic, not extensions: an sctf container
        // behind a .csv name still loads as sctf.
        let disguised = dir.join("sctm_store_disguised.csv");
        log.save_as(&disguised, TraceFormat::Sctf).unwrap();
        assert_eq!(TraceLog::load(&disguised).unwrap().len(), log.len());
        for p in [as_sctf, as_csv, disguised] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn decode_rejects_unknown_magic() {
        assert_eq!(
            TraceStore::decode(b"PK\x03\x04zip?").err(),
            Some(TraceError::BadMagic)
        );
        assert_eq!(TraceStore::decode(b"").err(), Some(TraceError::BadMagic));
    }

    #[test]
    fn real_capture_roundtrips_and_replays_identically() {
        use crate::replay::replay_sctm_pass;
        use sctm_cmp::{CmpConfig, CmpSim};
        use sctm_engine::net::AnalyticNetwork;
        use sctm_workloads::{build, Kernel, WorkloadParams};

        let w = build(Kernel::Lu, WorkloadParams::new(16, 200, 5));
        let net = AnalyticNetwork::new(16, SimTime::from_ns(8), SimTime::from_ns(2), 40);
        let mut sim = CmpSim::new(CmpConfig::tiled(4), Box::new(net), Box::new(w));
        let mut cap = Capture::new();
        let res = sim.run(&mut cap);
        let log = cap.finish("analytic", res.exec_time);

        let back = TraceLog::from_csv_str(&log.to_csv_string()).unwrap();
        let mk = || {
            Box::new(AnalyticNetwork::new(
                16,
                SimTime::from_ns(8),
                SimTime::from_ns(6),
                40,
            ))
        };
        let mut n1 = mk();
        let mut n2 = mk();
        let r1 = replay_sctm_pass(&log, n1.as_mut());
        let r2 = replay_sctm_pass(&back, n2.as_mut());
        assert_eq!(
            r1.deliver, r2.deliver,
            "roundtripped trace replays differently"
        );
    }
}
