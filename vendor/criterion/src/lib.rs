//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) with real
//! wall-clock measurement: each benchmark is calibrated during a short
//! warm-up, then timed for `sample_size` samples, and the min / median /
//! max per-iteration times are printed in criterion's familiar
//! `time: [low mid high]` shape. No plots, no statistics beyond the
//! order statistics, no baseline persistence.

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Order statistics collected for one benchmark, for `--bench-json`.
#[derive(Clone, Debug)]
struct Record {
    id: String,
    samples: u64,
    min_ns: f64,
    p25_ns: f64,
    median_ns: f64,
    p75_ns: f64,
    max_ns: f64,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Interpolated quantile of an already-sorted sample vector.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serialise all records collected so far as an `sctm-bench-v1`
/// document. The writer is duplicated from `sctm-prof` on purpose: the
/// vendored shim must not depend on workspace crates.
fn records_to_json() -> String {
    use std::fmt::Write as _;
    let recs = RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n  \"schema\": \"sctm-bench-v1\",\n");
    let _ = writeln!(
        out,
        "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"threads\": {}}},",
        json_escape(std::env::consts::OS),
        json_escape(std::env::consts::ARCH),
        threads
    );
    out.push_str("  \"benches\": [");
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p25_ns\": {}, \"median_ns\": {}, \"p75_ns\": {}, \"max_ns\": {}}}",
            json_escape(&r.id),
            r.samples,
            json_num(r.min_ns),
            json_num(r.p25_ns),
            json_num(r.median_ns),
            json_num(r.p75_ns),
            json_num(r.max_ns),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Called by the `main` that `criterion_main!` generates, after all
/// groups have run: honours `--bench-json PATH` from the command line.
/// (Cargo's bench harness passes extra flags like `--bench`; anything
/// unrecognised is ignored, as real criterion does.)
#[doc(hidden)]
pub fn finish_from_args() {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--bench-json") else {
        return;
    };
    let Some(path) = args.get(pos + 1) else {
        eprintln!("criterion shim: --bench-json needs a path");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::write(path, records_to_json()) {
        eprintln!("criterion shim: cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("criterion shim: wrote bench JSON to {path}");
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, p: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{p}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Calibrate, sample, and report one benchmark.
fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Calibration / warm-up: run until ~80 ms of work has executed,
    // tracking the cheapest observed per-iteration cost.
    f(&mut b);
    let mut per_iter_ns = (b.elapsed.as_nanos().max(1)) as f64;
    let mut warmed = b.elapsed;
    while warmed < Duration::from_millis(80) {
        let want = (20_000_000.0 / per_iter_ns).clamp(1.0, 4_000_000.0) as u64;
        b.iters = want;
        f(&mut b);
        warmed += b.elapsed;
        per_iter_ns = per_iter_ns.min(b.elapsed.as_nanos() as f64 / want as f64);
    }

    // Aim for ~25 ms per sample so cheap benchmarks average over many
    // iterations while expensive ones still run at least once.
    let iters = (25_000_000.0 / per_iter_ns).clamp(1.0, 16_000_000.0) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
    };
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Record {
            id: id.to_string(),
            samples: samples.len() as u64,
            min_ns: min,
            p25_ns: quantile(&samples, 0.25),
            median_ns: median,
            p75_ns: quantile(&samples, 0.75),
            max_ns: max,
        });
    println!(
        "{:<40} time: [{} {} {}]  ({} samples x {} iters)",
        id,
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        sample_size,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }`
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finish_from_args();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64 + 2));
        });
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            ran += 1;
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert!(ran > 0);
        let recs = RECORDS.lock().unwrap();
        assert!(recs.iter().any(|r| r.id == "smoke/add"));
        assert!(recs.iter().any(|r| r.id == "grp/7"));
        for r in recs.iter() {
            assert!(r.min_ns <= r.p25_ns && r.p25_ns <= r.median_ns);
            assert!(r.median_ns <= r.p75_ns && r.p75_ns <= r.max_ns);
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let s = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&s, 0.0), 10.0);
        assert_eq!(quantile(&s, 0.25), 20.0);
        assert_eq!(quantile(&s, 0.5), 30.0);
        assert_eq!(quantile(&s, 1.0), 50.0);
        assert_eq!(quantile(&[7.0, 9.0], 0.25), 7.5);
    }

    #[test]
    fn records_render_as_schema_json() {
        RECORDS.lock().unwrap().push(Record {
            id: "json/probe".into(),
            samples: 3,
            min_ns: 1.0,
            p25_ns: 1.5,
            median_ns: 2.0,
            p75_ns: 2.5,
            max_ns: 3.0,
        });
        let doc = records_to_json();
        assert!(doc.contains("\"schema\": \"sctm-bench-v1\""));
        assert!(doc.contains("\"id\": \"json/probe\""));
        assert!(doc.contains("\"p25_ns\": 1.5"));
    }
}
