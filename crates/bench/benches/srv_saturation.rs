//! Saturation throughput of the staged work-stealing scheduler: the
//! §P5 warm sweep — 50 network configs over one already-captured
//! workload — driven end-to-end through the pooled `sctm-client`
//! crate over real TCP, against the serial batch scheduler and the
//! steal scheduler at 1, 4 and 8 workers.
//!
//! The sweep is warm (one shared capture, 50 replays), so the bench
//! measures exactly what the scheduler changes: how many independent
//! replay+render stages the daemon can keep in flight while the
//! connection thread streams responses. On a multicore host steal_w8
//! versus steal_w1 is the scaling headline; on a single-core runner
//! the curve is honest and flat (see EXPERIMENTS.md §P9).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_client::{Client, ClientOptions};
use sctm_srv::{serve_tcp, SchedMode, Server, ServerConfig};

const NETS: [&str; 5] = ["emesh", "omesh", "oxbar", "hybrid", "obus"];
const DAMPINGS: [&str; 5] = ["0.4", "0.6", "0.8", "0.9", "1.0"];

/// The 50-config warm sweep: every detailed network crossed with loop
/// knobs, one workload, one seed — one capture serves all of it.
fn sweep_lines() -> Vec<String> {
    let mut lines = Vec::with_capacity(50);
    for (i, net) in NETS.iter().cycle().take(50).enumerate() {
        let damping = DAMPINGS[(i / 5) % 5];
        lines.push(format!(
            "run kernel=fft net={net} side=2 ops=150 mode=sctm iters=2 \
             damping={damping} replay=1 id=b{i}"
        ));
    }
    lines
}

struct Daemon {
    client: Client,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn boot(sched: SchedMode, workers: usize) -> Daemon {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = Server::start(ServerConfig {
            sched,
            workers,
            queue_cap: 64,
            ..ServerConfig::default()
        });
        let handle = std::thread::spawn(move || serve_tcp(listener, server));
        let client = Client::connect_with(
            &addr,
            ClientOptions {
                pool_cap: 2,
                ..ClientOptions::default()
            },
        )
        .expect("dial");
        Daemon {
            client,
            handle: Some(handle),
        }
    }

    /// One pipelined warm sweep; returns the number of ok responses.
    fn sweep(&self, lines: &[String]) -> usize {
        let replies = self.client.pipeline(lines).expect("pipeline");
        let ok = replies
            .iter()
            .filter(|r| matches!(r, sctm_client::Response::Ok { line } if line.contains(r#""status":"ok""#)))
            .count();
        assert_eq!(ok, lines.len(), "sweep had non-ok responses");
        ok
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.client.shutdown();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn bench_saturation(c: &mut Criterion) {
    let lines = sweep_lines();
    let mut g = c.benchmark_group("srv_saturation_warm50");
    let mut cases: Vec<(String, SchedMode, usize)> = vec![("batch".into(), SchedMode::Batch, 0)];
    for workers in [1usize, 4, 8] {
        cases.push((format!("steal_w{workers}"), SchedMode::WorkSteal, workers));
    }
    for (label, sched, workers) in cases {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let daemon = Daemon::boot(sched, workers);
            daemon.sweep(&lines); // prime the capture cache
            b.iter(|| black_box(daemon.sweep(&lines)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_saturation
}
criterion_main!(benches);
