//! Bench-JSON comparator and merger — the CI perf gate.
//!
//! ```text
//! benchcmp diff OLD.json NEW.json [--threshold 0.15] [--warn-only]
//! benchcmp merge OUT.json IN.json [IN2.json ...]
//! benchcmp ratio FILE.json NUM_ID DEN_ID --max 1.02
//! ```
//!
//! `diff` exits 0 when no benchmark's median regressed beyond the
//! threshold (default 15%), 1 on regression (downgraded to a warning
//! with `--warn-only`, for noisy shared runners), 2 on usage or parse
//! errors. A machine-fingerprint mismatch between the two files is
//! always warn-only: numbers from different hardware cannot gate.
//!
//! `ratio` gates two medians from the *same* file (so no fingerprint
//! escape hatch): exits 0 when `NUM_ID / DEN_ID <= max`, 1 otherwise.
//! CI uses it to hold the telemetry-polling overhead of the service
//! under its 2% budget.

use sctm_prof::benchjson::{compare, ratio_check, BenchFile};
use std::process::ExitCode;

fn load(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchFile::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("merge") => {
            let out = args.get(1).ok_or("merge: missing OUT path")?;
            if args.len() < 3 {
                return Err("merge: need at least one input".into());
            }
            let inputs: Result<Vec<_>, _> = args[2..].iter().map(|p| load(p)).collect();
            let merged = BenchFile::merge(inputs?)?;
            std::fs::write(out, merged.to_json()).map_err(|e| format!("{out}: {e}"))?;
            eprintln!(
                "benchcmp: merged {} benchmarks into {out}",
                merged.benches.len()
            );
            Ok(true)
        }
        Some("diff") => {
            let old_path = args.get(1).ok_or("diff: missing OLD path")?;
            let new_path = args.get(2).ok_or("diff: missing NEW path")?;
            let mut threshold = 0.15f64;
            let mut warn_only = false;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--threshold" => {
                        threshold = args
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--threshold needs a number")?;
                        i += 2;
                    }
                    "--warn-only" => {
                        warn_only = true;
                        i += 1;
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let old = load(old_path)?;
            let new = load(new_path)?;
            let cmp = compare(&old, &new, threshold);
            println!(
                "benchcmp: {} common, {} added, {} removed (threshold {:.0}%)",
                cmp.common,
                cmp.added.len(),
                cmp.removed.len(),
                threshold * 100.0
            );
            if cmp.machine_mismatch {
                println!("warning: machine fingerprints differ — treating as warn-only");
            }
            if cmp.common == 0 {
                // Disjoint bench sets: the geo-mean trajectory is
                // undefined and a "no regressions" verdict would be
                // vacuous — almost always a wrong file or a renamed
                // suite. Fail loudly (downgradable like a regression).
                println!(
                    "warning: no common benches between {old_path} and {new_path} — \
                     geo-mean trajectory unavailable"
                );
                if warn_only || cmp.machine_mismatch {
                    println!("benchcmp: empty comparison — warn-only, not failing");
                    return Ok(true);
                }
                println!("benchcmp: empty comparison");
                return Ok(false);
            }
            if let Some(g) = cmp.geo_mean_ratio {
                // Over every common bench, not just the over-threshold
                // ones: the suite-wide direction of the change.
                println!(
                    "benchcmp: geo-mean ratio {:.4} across {} common benches ({}{:.1}% {})",
                    g,
                    cmp.common,
                    if g >= 1.0 { "+" } else { "-" },
                    (g - 1.0).abs() * 100.0,
                    if g >= 1.0 { "slower" } else { "faster" },
                );
            }
            for d in &cmp.improvements {
                println!(
                    "  improved  {:<40} {:>12.1} ns -> {:>12.1} ns  ({:+.1}%)",
                    d.id,
                    d.old_ns,
                    d.new_ns,
                    (d.ratio - 1.0) * 100.0
                );
            }
            for d in &cmp.regressions {
                println!(
                    "  REGRESSED {:<40} {:>12.1} ns -> {:>12.1} ns  ({:+.1}%)",
                    d.id,
                    d.old_ns,
                    d.new_ns,
                    (d.ratio - 1.0) * 100.0
                );
            }
            if cmp.regressions.is_empty() {
                println!("benchcmp: no regressions");
                Ok(true)
            } else if warn_only || cmp.machine_mismatch {
                println!(
                    "benchcmp: {} regression(s) — warn-only, not failing",
                    cmp.regressions.len()
                );
                Ok(true)
            } else {
                println!("benchcmp: {} regression(s)", cmp.regressions.len());
                Ok(false)
            }
        }
        Some("ratio") => {
            let path = args.get(1).ok_or("ratio: missing FILE path")?;
            let num_id = args.get(2).ok_or("ratio: missing NUM_ID")?;
            let den_id = args.get(3).ok_or("ratio: missing DEN_ID")?;
            let mut max = None;
            let mut i = 4;
            while i < args.len() {
                match args[i].as_str() {
                    "--max" => {
                        max = Some(
                            args.get(i + 1)
                                .and_then(|v| v.parse().ok())
                                .ok_or("--max needs a number")?,
                        );
                        i += 2;
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let max: f64 = max.ok_or("ratio: --max is required")?;
            let file = load(path)?;
            let r = ratio_check(&file, num_id, den_id, max)?;
            println!(
                "benchcmp: {num_id} / {den_id} = {:.1} ns / {:.1} ns = {:.4} (max {:.4})",
                r.num_ns, r.den_ns, r.ratio, r.max
            );
            if r.passed() {
                println!("benchcmp: ratio within budget");
                Ok(true)
            } else {
                println!(
                    "benchcmp: ratio EXCEEDS budget by {:.1}%",
                    (r.ratio - r.max) * 100.0
                );
                Ok(false)
            }
        }
        _ => Err(
            "usage: benchcmp diff OLD NEW [--threshold F] [--warn-only] | benchcmp merge OUT IN... | benchcmp ratio FILE NUM_ID DEN_ID --max F"
                .into(),
        ),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("benchcmp: {e}");
            ExitCode::from(2)
        }
    }
}
