//! Wavelength-routed optical crossbar with token arbitration
//! (Corona-style MWSR — multiple writers, single reader).
//!
//! Every destination owns a *home channel*: a DWDM waveguide bundle
//! snaking past every tile. Any source may modulate onto the channel,
//! but only after grabbing the channel's circulating optical token,
//! which serialises writers. The token travels the serpentine at the
//! speed of light in silicon; a sender holds it for exactly its burst
//! and releases it in place, so arbitration fairness is positional
//! round-robin — the canonical MWSR behaviour whose hot-spot saturation
//! experiment E6 looks for.
//!
//! Everything is event-driven and closed-form between events: token
//! motion is not simulated tick by tick, only evaluated at request and
//! release instants.

use crate::layout::Floorplan;
use sctm_engine::event::EventQueue;
use sctm_engine::msgtable::MsgTable;
use sctm_engine::net::{
    Delivery, LatencyBreakdown, Message, MsgLifecycle, NetStats, NetworkModel, NodeObs,
};
use sctm_engine::time::{Freq, SimTime};
use sctm_obs as obs;
use sctm_photonic::{ChannelPlan, DeviceKit, LinkBudget, PowerBreakdown};

/// Configuration of the MWSR crossbar.
#[derive(Clone, Copy, Debug)]
pub struct OxbarConfig {
    pub floorplan: Floorplan,
    pub kit: DeviceKit,
    pub plan: ChannelPlan,
    /// NI clock for serialisation of the electrical side.
    pub ni_freq: Freq,
    /// NI latency each end, NI cycles.
    pub ni_cycles: u64,
}

impl OxbarConfig {
    pub fn new(side: usize) -> Self {
        OxbarConfig {
            floorplan: Floorplan::new(side, 2.5),
            kit: DeviceKit::default(),
            plan: ChannelPlan::default(),
            ni_freq: Freq::from_ghz(2),
            ni_cycles: 2,
        }
    }

    pub fn budget(&self) -> LinkBudget {
        self.floorplan.oxbar_budget(self.kit, self.plan)
    }

    /// Token segment time: light covering one tile pitch.
    pub fn seg_time(&self) -> SimTime {
        SimTime::from_ps(self.kit.waveguide.tof_ps(self.floorplan.tile_pitch_mm))
    }
}

#[derive(Clone, Debug)]
struct MsgState {
    msg: Message,
    injected_at: SimTime,
    bd: LatencyBreakdown,
}

/// Home-channel arbitration state.
#[derive(Clone, Debug)]
struct Channel {
    /// When the token was/will be released.
    free_at: SimTime,
    /// Serpentine position where it is released.
    free_pos: u64,
    /// Message ids waiting for this channel, in arrival order.
    waiting: Vec<u64>,
    /// A writer the token is currently travelling toward: `(id, grab
    /// time)`. A later request that the token physically reaches first
    /// preempts this (the token does not know who asked first).
    pending: Option<(u64, SimTime)>,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Message reaches its NI and requests the home channel of its dst.
    Request(u64),
    /// The circulating token reaches the pending writer.
    Grant(u64),
    /// Optical burst has fully left the source; token released.
    BurstEnd(u64),
    /// Last bit arrives at the destination NI.
    Deliver(u64),
}

/// MWSR crossbar simulator.
#[derive(Clone, Debug)]
pub struct OxbarSim {
    cfg: OxbarConfig,
    q: EventQueue<Ev>,
    msgs: MsgTable<MsgState>,
    channels: Vec<Channel>,
    /// Cumulative burst (channel-busy) time per home channel, for
    /// observability; indexed by the owning destination node.
    ch_busy_ps: Vec<u64>,
    stats: NetStats,
    optical_bits: u64,
    nodes: u64,
    capture: bool,
    lifecycles: Vec<MsgLifecycle>,
}

impl OxbarSim {
    pub fn new(cfg: OxbarConfig) -> Self {
        let n = cfg.floorplan.num_nodes();
        OxbarSim {
            cfg,
            q: EventQueue::new(),
            msgs: MsgTable::new(),
            channels: (0..n)
                .map(|i| Channel {
                    free_at: SimTime::ZERO,
                    // Tokens start spread around the ring.
                    free_pos: i as u64,
                    waiting: Vec::new(),
                    pending: None,
                })
                .collect(),
            ch_busy_ps: vec![0; n],
            stats: NetStats::default(),
            optical_bits: 0,
            nodes: n as u64,
            capture: false,
            lifecycles: Vec::new(),
        }
    }

    pub fn config(&self) -> &OxbarConfig {
        &self.cfg
    }

    pub fn power_report(&self, elapsed: SimTime) -> PowerBreakdown {
        let budget = self.cfg.budget();
        let ns = elapsed.as_ns_f64().max(1e-9);
        let gbps = self.optical_bits as f64 / ns;
        let util = (gbps / budget.peak_gbps()).clamp(0.0, 1.0);
        budget.power(util)
    }

    fn ni_delay(&self) -> SimTime {
        self.cfg.ni_freq.cycles(self.cfg.ni_cycles)
    }

    /// When the circulating token next passes serpentine position `pos`,
    /// at or after `now`. The token has been circling freely since
    /// `(free_at, free_pos)`.
    fn token_arrival(&self, ch: &Channel, pos: u64, now: SimTime) -> SimTime {
        let seg = self.cfg.seg_time().as_ps().max(1);
        let n = self.nodes;
        let dist = (pos + n - ch.free_pos % n) % n;
        let mut t = ch.free_at + SimTime::from_ps(dist * seg);
        if t < now {
            let lap = SimTime::from_ps(n * seg);
            let behind = now.saturating_since(t).as_ps();
            let laps = behind.div_ceil(lap.as_ps());
            t += lap.scaled(laps);
        }
        t
    }

    /// If the channel is idle with waiters and no pending grant, aim the
    /// token at the waiter it reaches first.
    fn arbitrate(&mut self, ch_idx: usize, now: SimTime) {
        let ch = &self.channels[ch_idx];
        if ch.pending.is_some() || ch.waiting.is_empty() || ch.free_at > now {
            return;
        }
        let (best_i, best_t) = ch
            .waiting
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let pos = self.msgs[*id].msg.src.0 as u64;
                (i, self.token_arrival(ch, pos, now))
            })
            .min_by_key(|&(i, t)| (t, i))
            .unwrap();
        let ch = &mut self.channels[ch_idx];
        let id = ch.waiting.remove(best_i);
        ch.pending = Some((id, best_t));
        self.q.schedule(best_t.max(now), Ev::Grant(id));
    }

    fn handle(&mut self, at: SimTime, ev: Ev, out: &mut Vec<Delivery>) {
        match ev {
            Ev::Request(id) => {
                let (dst, src) = {
                    let st = &self.msgs[id];
                    (st.msg.dst, st.msg.src)
                };
                if dst == src {
                    // Loopback stays in the NI.
                    if self.capture {
                        let ni = self.ni_delay().as_ps();
                        self.msgs
                            .get_mut(id)
                            .expect("unknown message")
                            .bd
                            .overhead_ps += ni;
                    }
                    self.q.schedule(at + self.ni_delay(), Ev::Deliver(id));
                    return;
                }
                let ch_idx = dst.idx();
                self.channels[ch_idx].waiting.push(id);
                match self.channels[ch_idx].pending {
                    None => self.arbitrate(ch_idx, at),
                    Some((pid, pt)) => {
                        // The token may physically reach the newcomer
                        // before the writer it is aimed at — preempt.
                        let pos = src.0 as u64;
                        let t_new = self.token_arrival(&self.channels[ch_idx], pos, at);
                        if t_new < pt {
                            let ch = &mut self.channels[ch_idx];
                            ch.waiting.retain(|&w| w != id);
                            ch.waiting.push(pid);
                            ch.pending = Some((id, t_new));
                            self.q.schedule(t_new.max(at), Ev::Grant(id));
                        }
                    }
                }
            }
            Ev::Grant(id) => {
                // Validate against preemption: only the live pending
                // grant commits; stale Grant events are ignored.
                let Some(st) = self.msgs.get(id) else { return };
                let ch_idx = st.msg.dst.idx();
                if self.channels[ch_idx].pending != Some((id, at)) {
                    return;
                }
                let burst = self.cfg.plan.burst_time(st.msg.bytes.max(1));
                let src_pos = st.msg.src.0 as u64;
                self.optical_bits += st.msg.bytes.max(1) as u64 * 8;
                self.ch_busy_ps[ch_idx] += burst.as_ps();
                obs::sim_event("oxbar", "arbitrate", ch_idx as u32, at);
                if self.capture {
                    // Token wait: from the request hitting the channel
                    // (NI traversal after injection) to this grant.
                    let ni = self.ni_delay();
                    let st = self.msgs.get_mut(id).expect("unknown message");
                    let requested = st.injected_at + ni;
                    st.bd.arbitration_ps += at.saturating_since(requested).as_ps();
                    st.bd.serialization_ps += burst.as_ps();
                }
                let end = at + burst;
                let ch = &mut self.channels[ch_idx];
                ch.pending = None;
                ch.free_at = end;
                ch.free_pos = src_pos;
                self.q.schedule(end, Ev::BurstEnd(id));
            }
            Ev::BurstEnd(id) => {
                let (src, dst) = {
                    let st = &self.msgs[id];
                    (st.msg.src, st.msg.dst)
                };
                // Propagation from source to reader along the serpentine.
                let dist_mm = self.cfg.floorplan.serpentine_distance_mm(src, dst);
                let tof = SimTime::from_ps(self.cfg.kit.waveguide.tof_ps(dist_mm));
                if self.capture {
                    let ni = self.ni_delay().as_ps();
                    let bd = &mut self.msgs.get_mut(id).expect("unknown message").bd;
                    bd.propagation_ps += tof.as_ps();
                    bd.overhead_ps += ni;
                }
                self.q.schedule(at + tof + self.ni_delay(), Ev::Deliver(id));
                self.arbitrate(dst.idx(), at);
            }
            Ev::Deliver(id) => {
                let st = self.msgs.remove(id).expect("deliver for unknown msg");
                obs::sim_event("oxbar", "deliver", st.msg.dst.0, at);
                let d = Delivery {
                    msg: st.msg,
                    injected_at: st.injected_at,
                    delivered_at: at,
                };
                self.stats.record_delivery(&d);
                if self.capture {
                    self.lifecycles.push(MsgLifecycle {
                        msg: st.msg,
                        injected_at: st.injected_at,
                        delivered_at: at,
                        breakdown: st.bd,
                    });
                }
                out.push(d);
            }
        }
    }
}

impl NetworkModel for OxbarSim {
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        Some(Box::new(self.clone()))
    }

    fn num_nodes(&self) -> usize {
        self.nodes as usize
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        let at = at.max(self.q.now());
        self.stats.injected += 1;
        obs::sim_event("oxbar", "inject", msg.src.0, at);
        let id = msg.id.0;
        let mut bd = LatencyBreakdown::default();
        if self.capture {
            bd.overhead_ps = self.ni_delay().as_ps();
        }
        let prev = self.msgs.insert(
            id,
            MsgState {
                msg,
                injected_at: at,
                bd,
            },
        );
        debug_assert!(prev.is_none(), "duplicate message id {id}");
        self.q.schedule(at + self.ni_delay(), Ev::Request(id));
    }

    fn next_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        while let Some(ev) = self.q.pop_before(t) {
            self.handle(ev.at, ev.payload, out);
        }
        self.q.advance_to(t);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    fn label(&self) -> &'static str {
        "oxbar"
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.capture = on;
    }

    fn lifecycle_capture(&self) -> bool {
        self.capture
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        out.append(&mut self.lifecycles);
    }

    fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
        for (i, ch) in self.channels.iter().enumerate() {
            out.push(NodeObs {
                node: i as u32,
                queue_depth: ch.waiting.len() as u64 + ch.pending.is_some() as u64,
                link_busy_ps: self.ch_busy_ps[i],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgClass, MsgId, NodeId};

    fn sim() -> OxbarSim {
        OxbarSim::new(OxbarConfig::new(4))
    }

    fn msg(id: u64, src: u32, dst: u32, bytes: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if bytes > 16 {
                MsgClass::Data
            } else {
                MsgClass::Control
            },
            bytes,
        }
    }

    fn drain(s: &mut OxbarSim) -> Vec<Delivery> {
        let mut out = Vec::new();
        s.drain(&mut out);
        out
    }

    #[test]
    fn single_message_delivers() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 0, 5, 64));
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        assert!(out[0].latency() > SimTime::ZERO);
    }

    #[test]
    fn all_pairs_deliver() {
        let mut s = sim();
        let mut id = 0;
        for a in 0..16 {
            for b in 0..16 {
                s.inject(SimTime::ZERO, msg(id, a, b, 64));
                id += 1;
            }
        }
        let out = drain(&mut s);
        assert_eq!(out.len(), 256);
        assert!(s.channels.iter().all(|c| c.waiting.is_empty()));
    }

    #[test]
    fn hotspot_serialises_on_home_channel() {
        // Everyone writes to node 0: the single reader's token is the
        // bottleneck, so makespan ≈ sum of bursts, not max.
        let mut s = sim();
        let burst = s.cfg.plan.burst_time(512);
        let n = 15u64;
        for i in 0..n {
            s.inject(SimTime::ZERO, msg(i, (i + 1) as u32, 0, 512));
        }
        let out = drain(&mut s);
        let makespan = out.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(
            makespan.as_ps() >= burst.as_ps() * (n - 1),
            "hotspot did not serialise: makespan {makespan}, burst {burst}"
        );
    }

    #[test]
    fn distinct_destinations_proceed_in_parallel() {
        let mut s = sim();
        let burst = s.cfg.plan.burst_time(512);
        for i in 0..15u64 {
            s.inject(SimTime::ZERO, msg(i, 0, (i + 1) as u32, 512));
        }
        let out = drain(&mut s);
        let makespan = out.iter().map(|d| d.delivered_at).max().unwrap();
        // Different home channels — near-parallel, far below serial sum.
        assert!(
            makespan.as_ps() < burst.as_ps() * 8,
            "independent channels serialised: {makespan}"
        );
    }

    #[test]
    fn token_distance_affects_grant_order() {
        let mut s = sim_no_ni();
        // Token for channel 5 starts at position 5. Writers at 6 and 4:
        // forward distances are 1 and 15 — node 6 must win even though
        // node 4's request was posted first.
        s.inject(SimTime::ZERO, msg(1, 4, 5, 256));
        s.inject(SimTime::ZERO, msg(2, 6, 5, 256));
        let out = drain(&mut s);
        assert_eq!(out.len(), 2);
        let t1 = out
            .iter()
            .find(|d| d.msg.id == MsgId(1))
            .unwrap()
            .delivered_at;
        let t2 = out
            .iter()
            .find(|d| d.msg.id == MsgId(2))
            .unwrap()
            .delivered_at;
        assert!(t2 < t1, "positional round-robin violated: {t2} !< {t1}");
    }

    #[test]
    fn self_send_loopback() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 7, 7, 64));
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        assert_eq!(s.optical_bits, 0, "loopback must not use the channel");
    }

    /// Config with zero NI delay so requests land while the token is
    /// still at its initial position — lets tests reason about token
    /// distances exactly.
    fn sim_no_ni() -> OxbarSim {
        let mut cfg = OxbarConfig::new(4);
        cfg.ni_cycles = 0;
        OxbarSim::new(cfg)
    }

    #[test]
    fn first_message_latency_is_distance_invariant() {
        // In a fresh network the token starts at the destination, so
        // token wait (dst→src) plus flight (src→dst) is one full lap
        // regardless of the pair — a geometric invariant (modulo
        // per-segment picosecond rounding) worth pinning.
        let mut a = sim_no_ni();
        a.inject(SimTime::ZERO, msg(1, 2, 3, 64));
        let la = drain(&mut a)[0].latency();
        let mut b = sim_no_ni();
        b.inject(SimTime::ZERO, msg(1, 3, 2, 64));
        let lb = drain(&mut b)[0].latency();
        assert!(
            la.abs_diff(lb).as_ps() <= 20,
            "lap invariant broken: {la} vs {lb}"
        );
    }

    #[test]
    fn latency_scales_with_serpentine_distance() {
        // Decouple token wait from flight: prime each channel with a
        // first burst so the token sits at a known position, then send
        // a follow-up whose token distance is identical (1 segment) but
        // whose flight distance differs.
        let run = |s1: u32, s2: u32, dst: u32| {
            let mut s = sim();
            s.inject(SimTime::ZERO, msg(1, s1, dst, 64));
            s.inject(SimTime::ZERO, msg(2, s2, dst, 64));
            let out = drain(&mut s);
            out.iter()
                .find(|d| d.msg.id == MsgId(2))
                .unwrap()
                .delivered_at
        };
        // A: token released at 5, second writer at 6 (dist 1), flight 6→9 = 3 segs.
        let near = run(5, 6, 9);
        // B: token released at 12, second writer at 13 (dist 1), flight 13→9 = 12 segs.
        let far = run(12, 13, 9);
        assert!(far > near, "serpentine distance invisible: {far} !> {near}");
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut s = sim();
            for i in 0..300u64 {
                s.inject(
                    SimTime::from_ns(i % 50),
                    msg(i, (i % 16) as u32, ((i * 11 + 1) % 16) as u32, 64),
                );
            }
            drain(&mut s)
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lifecycle_components_sum_exactly() {
        let mut s = sim();
        s.set_lifecycle_capture(true);
        s.inject(SimTime::ZERO, msg(0, 7, 7, 64)); // loopback
        for i in 1..16u64 {
            // Hotspot: everyone to node 0 — long token waits.
            s.inject(SimTime::ZERO, msg(i, i as u32, 0, 256));
        }
        drain(&mut s);
        let mut lc = Vec::new();
        s.take_lifecycles(&mut lc);
        assert_eq!(lc.len(), 16);
        for l in &lc {
            assert_eq!(l.breakdown.total_ps(), l.latency_ps(), "{:?}", l.msg.id);
        }
        assert!(lc.iter().any(|l| l.breakdown.arbitration_ps > 0));
    }

    #[test]
    fn energy_accounting() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 0, 5, 64));
        let mut out = Vec::new();
        let end = s.drain(&mut out);
        assert_eq!(s.optical_bits, 512);
        let p = s.power_report(end);
        assert!(p.total_mw() > 0.0);
    }

    #[test]
    fn conservation_under_random_load() {
        use sctm_engine::rng::StreamRng;
        let mut rng = StreamRng::new(11);
        let mut s = sim();
        let n = 1500u64;
        for i in 0..n {
            let src = rng.below(16) as u32;
            let dst = rng.below(16) as u32;
            s.inject(SimTime::from_ns(rng.below(3000)), msg(i, src, dst, 64));
        }
        let out = drain(&mut s);
        assert_eq!(out.len(), n as usize);
        assert_eq!(s.stats().in_flight(), 0);
    }
}
