//! Cycle-accurate wormhole virtual-channel NoC simulator.
//!
//! Classic canonical microarchitecture (Dally & Towles): per-input-port
//! virtual channels with credit-based flow control and a four-phase
//! router loop per network cycle — injection, route computation, VC
//! allocation, switch allocation + traversal. Pipeline depth and link
//! latency are modelled by stamping each forwarded flit with the first
//! cycle at which it may compete downstream (`ready_cycle`), which
//! reproduces zero-load per-hop latency `router_stages + link_cycles`
//! while keeping contention exact.
//!
//! Two virtual networks (control / data) prevent protocol deadlock for
//! request–reply traffic; on a torus each vnet is further split into two
//! dateline classes to break the ring cycles.
//!
//! The simulator skips idle time: with no flit in flight it jumps
//! straight to the next scheduled injection, so lightly loaded
//! full-system phases cost nothing.

use crate::packet::{Flit, PacketizeConfig, Reassembly};
use crate::topology::{Port, Routing, Topology, DIRS, NUM_PORTS};
use sctm_engine::msgtable::MsgTable;
use sctm_engine::net::{
    Delivery, LatencyBreakdown, Message, MsgLifecycle, NetStats, NetworkModel, NodeObs,
};
use sctm_engine::time::{Freq, SimTime};
use sctm_obs as obs;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Electrical NoC configuration.
#[derive(Clone, Copy, Debug)]
pub struct NocConfig {
    pub topology: Topology,
    pub routing: Routing,
    /// Virtual channels per virtual network (≥2 required for torus).
    pub vcs_per_vnet: usize,
    /// Buffer depth per VC, in flits.
    pub buf_depth: usize,
    /// Router pipeline depth in cycles (head flit, uncontended).
    pub router_stages: u64,
    /// Link traversal cycles.
    pub link_cycles: u64,
    /// Network clock.
    pub freq: Freq,
    pub pkt: PacketizeConfig,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            topology: Topology::mesh(8, 8),
            routing: Routing::XY,
            vcs_per_vnet: 2,
            buf_depth: 4,
            router_stages: 2,
            link_cycles: 1,
            freq: Freq::from_ghz(2),
            pkt: PacketizeConfig::default(),
        }
    }
}

impl NocConfig {
    /// Total VCs per port (two vnets).
    #[inline]
    pub fn total_vcs(&self) -> usize {
        2 * self.vcs_per_vnet
    }

    /// Zero-load latency estimate in cycles for a packet of `flits`
    /// flits over `hops` hops (used by tests and the analytic model).
    pub fn zero_load_cycles(&self, hops: u64, flits: u64) -> u64 {
        let per_hop = self.router_stages + self.link_cycles;
        // +router_stages: source router pipeline; flits-1: serialization.
        per_hop * hops + self.router_stages + (flits - 1)
    }
}

/// State of one input virtual channel.
#[derive(Clone, Debug, Default)]
struct InVc {
    buf: VecDeque<Flit>,
    /// Route of the packet currently occupying this VC.
    out_port: Option<Port>,
    /// Downstream VC granted to that packet (None for Local routes).
    out_vc: Option<usize>,
}

#[derive(Clone, Debug)]
struct Router {
    /// Input VCs, indexed `port * V + vc`.
    invc: Vec<InVc>,
    /// Free downstream buffer slots, indexed `out_port * V + vc`.
    credits: Vec<usize>,
    /// Whether the downstream VC is currently held by a packet.
    out_alloc: Vec<bool>,
    /// Round-robin pointer per output port for switch allocation.
    sa_rr: [usize; NUM_PORTS],
    /// Flits resident in this router's input buffers.
    occupancy: usize,
}

/// Per-node network interface: packet source queue and reassembly sink.
#[derive(Clone, Debug, Default)]
struct Ni {
    q: VecDeque<Flit>,
    /// VC currently carrying the packet at the front of `q`.
    cur_vc: Option<usize>,
}

/// The electrical NoC simulator.
#[derive(Clone, Debug)]
pub struct NocSim {
    cfg: NocConfig,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    sink: Vec<Reassembly>,
    /// Future injections not yet due, ordered by time then id.
    pending: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending_msgs: MsgTable<Message>,
    cycle: u64,
    /// Flits anywhere inside routers or NI queues.
    active_flits: usize,
    stats: NetStats,
    /// Cycles since a flit last moved, for deadlock detection.
    stall_cycles: u64,
    /// Cumulative outbound-link occupancy per node, in flit-cycles.
    link_busy_cycles: Vec<u64>,
    capture: bool,
    lifecycles: Vec<MsgLifecycle>,
}

/// A full network that has made no forward progress for this many cycles
/// is declared deadlocked (a model bug, not a workload property).
const DEADLOCK_CYCLES: u64 = 100_000;

impl NocSim {
    pub fn new(cfg: NocConfig) -> Self {
        assert!(cfg.vcs_per_vnet >= 1);
        assert!(
            !cfg.topology.torus || cfg.vcs_per_vnet >= 2,
            "torus needs ≥2 VCs per vnet for dateline deadlock avoidance"
        );
        assert!(cfg.buf_depth >= 1);
        if cfg.routing == Routing::OddEven {
            assert!(!cfg.topology.torus, "odd-even routing is mesh-only");
        }
        let n = cfg.topology.num_nodes();
        let v = cfg.total_vcs();
        let routers = (0..n)
            .map(|i| {
                let node = sctm_engine::net::NodeId(i as u32);
                let mut credits = vec![0usize; NUM_PORTS * v];
                for p in DIRS {
                    if cfg.topology.neighbor(node, p).is_some() {
                        for vc in 0..v {
                            credits[p.idx() * v + vc] = cfg.buf_depth;
                        }
                    }
                }
                // Local output (ejection) has no downstream buffer limit.
                for vc in 0..v {
                    credits[Port::Local.idx() * v + vc] = usize::MAX / 2;
                }
                Router {
                    invc: (0..NUM_PORTS * v).map(|_| InVc::default()).collect(),
                    credits,
                    out_alloc: vec![false; NUM_PORTS * v],
                    sa_rr: [0; NUM_PORTS],
                    occupancy: 0,
                }
            })
            .collect();
        NocSim {
            cfg,
            routers,
            nis: (0..n).map(|_| Ni::default()).collect(),
            sink: (0..n).map(|_| Reassembly::new()).collect(),
            pending: BinaryHeap::new(),
            pending_msgs: MsgTable::new(),
            cycle: 0,
            active_flits: 0,
            stats: NetStats::default(),
            stall_cycles: 0,
            link_busy_cycles: vec![0; n],
            capture: false,
            lifecycles: Vec::new(),
        }
    }

    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current network cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    #[inline]
    fn time_of(&self, cycle: u64) -> SimTime {
        self.cfg.freq.cycles(cycle)
    }

    /// First cycle whose edge is at or after `t`.
    #[inline]
    fn cycle_at(&self, t: SimTime) -> u64 {
        let p = self.cfg.freq.period().as_ps();
        t.as_ps().div_ceil(p)
    }

    /// Sub-range of VC indices a head flit may claim downstream.
    fn allowed_vcs(&self, vnet: usize, dateline: bool) -> std::ops::Range<usize> {
        let k = self.cfg.vcs_per_vnet;
        let base = vnet * k;
        if self.cfg.topology.torus {
            // Split each vnet into dateline classes 0 / 1.
            let half = (k / 2).max(1);
            if dateline {
                base + half..base + k
            } else {
                base..base + half
            }
        } else {
            base..base + k
        }
    }

    /// Move a due pending message into its source NI queue.
    fn release_pending(&mut self, until: SimTime) {
        while let Some(&Reverse((t, id))) = self.pending.peek() {
            if t > until {
                break;
            }
            self.pending.pop();
            let msg = self.pending_msgs.remove(id).expect("pending msg vanished");
            let flits = self.cfg.pkt.packetize(&msg);
            self.active_flits += flits.len();
            self.sink[msg.dst.idx()].begin(msg, t);
            let ni = &mut self.nis[msg.src.idx()];
            ni.q.extend(flits);
        }
    }

    /// Phase A: each NI tries to place one flit into the router's local
    /// input port.
    fn phase_inject(&mut self) {
        let v = self.cfg.total_vcs();
        let k = self.cfg.vcs_per_vnet;
        for node in 0..self.nis.len() {
            let Some(&front) = self.nis[node].q.front() else {
                continue;
            };
            let router = &mut self.routers[node];
            let lp = Port::Local.idx();
            let chosen = if front.kind.is_head() {
                // Head claims a fully idle local VC in its vnet
                // (dateline class 0 on torus — source is pre-dateline).
                let base = front.vnet as usize * k;
                let end = if self.cfg.topology.torus {
                    base + (k / 2).max(1)
                } else {
                    base + k
                };
                (base..end).find(|&vc| {
                    let ivc = &router.invc[lp * v + vc];
                    ivc.buf.is_empty() && ivc.out_port.is_none()
                })
            } else {
                // Body/tail follow the head's VC if there is space.
                self.nis[node]
                    .cur_vc
                    .filter(|&vc| router.invc[lp * v + vc].buf.len() < self.cfg.buf_depth)
            };
            if let Some(vc) = chosen {
                let mut f = self.nis[node].q.pop_front().unwrap();
                f.ready_cycle = self.cycle + self.cfg.router_stages;
                router.invc[lp * v + vc].buf.push_back(f);
                router.occupancy += 1;
                self.nis[node].cur_vc = if f.kind.is_tail() { None } else { Some(vc) };
                self.stall_cycles = 0;
            }
        }
    }

    /// Phase B: route computation + VC allocation for head flits.
    fn phase_rc_va(&mut self) {
        let v = self.cfg.total_vcs();
        let topo = self.cfg.topology;
        for node in 0..self.routers.len() {
            if self.routers[node].occupancy == 0 {
                continue;
            }
            let here = sctm_engine::net::NodeId(node as u32);
            for pv in 0..NUM_PORTS * v {
                // RC: head flit at front, not yet routed.
                let (needs_rc, needs_va, head) = {
                    let ivc = &self.routers[node].invc[pv];
                    match ivc.buf.front() {
                        Some(f) if f.ready_cycle <= self.cycle && f.kind.is_head() => {
                            (ivc.out_port.is_none(), ivc.out_vc.is_none(), *f)
                        }
                        _ => continue,
                    }
                };
                if needs_rc {
                    let out = self.compute_route(here, &head, pv / v);
                    self.routers[node].invc[pv].out_port = Some(out);
                }
                let out = self.routers[node].invc[pv].out_port.unwrap();
                if out == Port::Local {
                    continue; // ejection needs no VC
                }
                if needs_va {
                    // Allocate a free VC on this router's output side
                    // (mirrors the downstream input VC).
                    let crossing = topo.dateline_crossed(here, out);
                    let dl = head.dateline || crossing;
                    let range = self.allowed_vcs(head.vnet as usize, dl);
                    let router = &mut self.routers[node];
                    let grant = range
                        .clone()
                        .find(|&vc| !router.out_alloc[out.idx() * v + vc]);
                    if let Some(vc) = grant {
                        router.out_alloc[out.idx() * v + vc] = true;
                        router.invc[pv].out_vc = Some(vc);
                    }
                }
            }
        }
    }

    fn compute_route(&self, here: sctm_engine::net::NodeId, head: &Flit, in_port: usize) -> Port {
        let topo = self.cfg.topology;
        match self.cfg.routing {
            Routing::XY => topo.route_dor(here, head.dst, false),
            Routing::YX => topo.route_dor(here, head.dst, true),
            Routing::OddEven => {
                // src approximated by the input direction: packets from
                // Local use `here` as src, which is exact.
                let src = if in_port == Port::Local.idx() {
                    here
                } else {
                    head.src_hint
                };
                let cands = topo.route_odd_even(here, src, head.dst);
                let v = self.cfg.total_vcs();
                // Pick the candidate with most free credits downstream.
                *cands
                    .iter()
                    .max_by_key(|p| {
                        if **p == Port::Local {
                            return usize::MAX;
                        }
                        let r = &self.routers[here.idx()];
                        (0..v).map(|vc| r.credits[p.idx() * v + vc]).sum::<usize>()
                    })
                    .unwrap()
            }
        }
    }

    /// Phase C: switch allocation + traversal. At most one grant per
    /// output port and one read per input port per cycle.
    fn phase_sa_st(&mut self, out: &mut Vec<Delivery>) {
        let v = self.cfg.total_vcs();
        let topo = self.cfg.topology;
        for node in 0..self.routers.len() {
            if self.routers[node].occupancy == 0 {
                continue;
            }
            let here = sctm_engine::net::NodeId(node as u32);
            let mut input_port_used = [false; NUM_PORTS];
            for out_port in [
                Port::Local,
                Port::North,
                Port::East,
                Port::South,
                Port::West,
            ] {
                let op = out_port.idx();
                // Round-robin over all input VCs for this output port.
                let start = self.routers[node].sa_rr[op];
                let total = NUM_PORTS * v;
                let mut grant: Option<usize> = None;
                for off in 0..total {
                    let pv = (start + off) % total;
                    let in_port = pv / v;
                    if input_port_used[in_port] {
                        continue;
                    }
                    let r = &self.routers[node];
                    let ivc = &r.invc[pv];
                    if ivc.out_port != Some(out_port) {
                        continue;
                    }
                    let Some(f) = ivc.buf.front() else { continue };
                    if f.ready_cycle > self.cycle {
                        continue;
                    }
                    if out_port != Port::Local {
                        let Some(ovc) = ivc.out_vc else { continue };
                        if r.credits[op * v + ovc] == 0 {
                            continue;
                        }
                    }
                    grant = Some(pv);
                    break;
                }
                let Some(pv) = grant else { continue };
                let in_port = pv / v;
                input_port_used[in_port] = true;
                self.routers[node].sa_rr[op] = (pv + 1) % total;
                self.stall_cycles = 0;
                obs::sim_event("emesh", "arbitrate", node as u32, self.time_of(self.cycle));

                // Traversal: pop the flit and move it.
                let (mut flit, freed_tail, ovc) = {
                    let ivc = &mut self.routers[node].invc[pv];
                    let f = ivc.buf.pop_front().unwrap();
                    let tail = f.kind.is_tail();
                    let ovc = ivc.out_vc;
                    if tail {
                        ivc.out_port = None;
                        ivc.out_vc = None;
                    }
                    (f, tail, ovc)
                };
                self.routers[node].occupancy -= 1;

                // Return a credit to whoever feeds this input VC.
                if in_port != Port::Local.idx() {
                    let in_p = Port::from_idx(in_port);
                    let up = topo
                        .neighbor(here, in_p)
                        .expect("flit arrived through a dead port");
                    let up_out = in_p.opposite().idx();
                    self.routers[up.idx()].credits[up_out * v + (pv % v)] += 1;
                }

                if out_port == Port::Local {
                    // Ejection completes at the end of this cycle —
                    // which is also the earliest instant the owning
                    // co-simulation can observe it (its `next_time`
                    // horizon is the next cycle edge), so stamping the
                    // start of the cycle would deliver into the past.
                    self.active_flits -= 1;
                    if let Some((msg, injected_at)) = self.sink[node].eject(&flit) {
                        let delivered_at = self.time_of(self.cycle + 1);
                        obs::sim_event("emesh", "deliver", node as u32, delivered_at);
                        if self.capture {
                            let bd = self.breakdown(&msg, injected_at, delivered_at);
                            self.lifecycles.push(MsgLifecycle {
                                msg,
                                injected_at,
                                delivered_at,
                                breakdown: bd,
                            });
                        }
                        let d = Delivery {
                            msg,
                            injected_at,
                            delivered_at,
                        };
                        self.stats.record_delivery(&d);
                        out.push(d);
                    }
                } else {
                    let ovc = ovc.expect("direction route without VC");
                    self.routers[node].credits[op * v + ovc] -= 1;
                    if freed_tail {
                        self.routers[node].out_alloc[op * v + ovc] = false;
                    }
                    if topo.dateline_crossed(here, out_port) {
                        flit.dateline = true;
                    }
                    flit.ready_cycle = self.cycle + self.cfg.link_cycles + self.cfg.router_stages;
                    self.link_busy_cycles[node] += self.cfg.link_cycles;
                    let down = topo.neighbor(here, out_port).expect("route into a wall");
                    let dpv = out_port.opposite().idx() * v + ovc;
                    self.routers[down.idx()].invc[dpv].buf.push_back(flit);
                    self.routers[down.idx()].occupancy += 1;
                }
            }
        }
    }

    fn step_cycle(&mut self, out: &mut Vec<Delivery>) {
        self.stall_cycles += 1;
        self.phase_inject();
        self.phase_rc_va();
        self.phase_sa_st(out);
        assert!(
            self.stall_cycles < DEADLOCK_CYCLES,
            "NoC deadlock: {} flits frozen for {} cycles at cycle {} ({:?} routing)",
            self.active_flits,
            DEADLOCK_CYCLES,
            self.cycle,
            self.cfg.routing
        );
        self.cycle += 1;
    }

    fn idle(&self) -> bool {
        self.active_flits == 0
    }

    /// Latency decomposition for a delivered message. The pipeline terms
    /// (routing/arbitration stages, link traversal, serialization) are
    /// analytic — the wormhole router is a fixed pipeline, so their
    /// zero-load shares are exact — and everything above zero-load is
    /// contention, booked as queueing. On the rare boundary where the
    /// measured latency undercuts the zero-load model (injection-edge
    /// rounding, or adaptive routes shorter than the minimal-path
    /// estimate never happen but misalignment can shave a cycle), the
    /// fixed terms are trimmed so the five bins always sum exactly.
    fn breakdown(
        &self,
        msg: &Message,
        injected_at: SimTime,
        delivered_at: SimTime,
    ) -> LatencyBreakdown {
        let p = self.cfg.freq.period().as_ps();
        let hops = self.cfg.topology.hops(msg.src, msg.dst) as u64;
        let flits = self.cfg.pkt.flit_count(msg.bytes) as u64;
        let mut bd = LatencyBreakdown {
            propagation_ps: self.cfg.link_cycles * hops * p,
            arbitration_ps: self.cfg.router_stages * (hops + 1) * p,
            serialization_ps: (flits - 1) * p,
            ..LatencyBreakdown::default()
        };
        let lat = delivered_at.saturating_since(injected_at).as_ps();
        let fixed = bd.total_ps();
        if fixed <= lat {
            bd.queue_ps = lat - fixed;
        } else {
            let mut over = fixed - lat;
            for slot in [
                &mut bd.serialization_ps,
                &mut bd.arbitration_ps,
                &mut bd.propagation_ps,
            ] {
                let cut = over.min(*slot);
                *slot -= cut;
                over -= cut;
            }
            debug_assert_eq!(over, 0);
        }
        bd
    }
}

impl NetworkModel for NocSim {
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        Some(Box::new(self.clone()))
    }

    fn num_nodes(&self) -> usize {
        self.cfg.topology.num_nodes()
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        debug_assert!(msg.dst.idx() < self.num_nodes() && msg.src.idx() < self.num_nodes());
        let at = at.max(self.time_of(self.cycle));
        self.stats.injected += 1;
        obs::sim_event("emesh", "inject", msg.src.0, at);
        self.pending.push(Reverse((at, msg.id.0)));
        let prev = self.pending_msgs.insert(msg.id.0, msg);
        debug_assert!(prev.is_none(), "duplicate message id {:?}", msg.id);
    }

    fn next_time(&self) -> Option<SimTime> {
        if !self.idle() {
            return Some(self.time_of(self.cycle + 1));
        }
        self.pending
            .peek()
            .map(|Reverse((t, _))| self.time_of(self.cycle_at(*t).max(self.cycle + 1)))
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        loop {
            let now = self.time_of(self.cycle);
            self.release_pending(now);
            if self.idle() {
                // Jump to the next injection, or stop at the deadline.
                match self.pending.peek() {
                    Some(&Reverse((pt, _))) if pt <= t => {
                        self.cycle = self.cycle.max(self.cycle_at(pt));
                        self.release_pending(self.time_of(self.cycle));
                    }
                    _ => {
                        self.cycle = self.cycle.max(self.cycle_at(t));
                        return;
                    }
                }
            }
            if self.time_of(self.cycle + 1) > t {
                return;
            }
            self.step_cycle(out);
        }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    fn label(&self) -> &'static str {
        "emesh"
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.capture = on;
    }

    fn lifecycle_capture(&self) -> bool {
        self.capture
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        out.append(&mut self.lifecycles);
    }

    fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
        let cycle_ps = self.cfg.freq.period().as_ps();
        for node in 0..self.num_nodes() {
            out.push(NodeObs {
                node: node as u32,
                queue_depth: (self.nis[node].q.len() + self.routers[node].occupancy) as u64,
                link_busy_ps: self.link_busy_cycles[node] * cycle_ps,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgClass, MsgId, NodeId};

    fn cfg4() -> NocConfig {
        NocConfig {
            topology: Topology::mesh(4, 4),
            ..NocConfig::default()
        }
    }

    fn msg(id: u64, src: u32, dst: u32, class: MsgClass, bytes: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class,
            bytes,
        }
    }

    fn drain_all(sim: &mut NocSim) -> Vec<Delivery> {
        let mut out = Vec::new();
        sim.drain(&mut out);
        out
    }

    #[test]
    fn single_message_delivers() {
        let mut sim = NocSim::new(cfg4());
        sim.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.id, MsgId(1));
        assert!(out[0].delivered_at > SimTime::ZERO);
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().in_flight(), 0);
    }

    #[test]
    fn zero_load_latency_matches_model() {
        let cfg = cfg4();
        let mut sim = NocSim::new(cfg);
        // 0 -> 3: 3 hops, control message, 1 flit.
        sim.inject(SimTime::ZERO, msg(1, 0, 3, MsgClass::Control, 8));
        let out = drain_all(&mut sim);
        let cycles = out[0].latency().as_ps() / cfg.freq.period().as_ps();
        let expect = cfg.zero_load_cycles(3, 1);
        // Allow ±2 cycles for injection/ejection boundary effects.
        assert!(
            cycles.abs_diff(expect) <= 2,
            "zero-load {cycles} cycles, model {expect}"
        );
    }

    #[test]
    fn longer_paths_take_longer() {
        let cfg = cfg4();
        let mut a = NocSim::new(cfg);
        a.inject(SimTime::ZERO, msg(1, 0, 1, MsgClass::Control, 8));
        let la = drain_all(&mut a)[0].latency();
        let mut b = NocSim::new(cfg);
        b.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Control, 8));
        let lb = drain_all(&mut b)[0].latency();
        assert!(lb > la, "6 hops ({lb}) not slower than 1 hop ({la})");
    }

    #[test]
    fn data_packets_slower_than_control() {
        let cfg = cfg4();
        let mut a = NocSim::new(cfg);
        a.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Control, 8));
        let la = drain_all(&mut a)[0].latency();
        let mut b = NocSim::new(cfg);
        b.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let lb = drain_all(&mut b)[0].latency();
        assert!(
            lb > la,
            "5-flit data ({lb}) not slower than 1-flit ctrl ({la})"
        );
    }

    #[test]
    fn all_pairs_deliver_mesh_xy() {
        let mut sim = NocSim::new(cfg4());
        let mut id = 0;
        for s in 0..16 {
            for d in 0..16 {
                id += 1;
                sim.inject(SimTime::ZERO, msg(id, s, d, MsgClass::Control, 8));
            }
        }
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), 256);
        assert_eq!(sim.stats().in_flight(), 0);
    }

    #[test]
    fn all_pairs_deliver_torus_with_dateline() {
        let cfg = NocConfig {
            topology: Topology::torus(4, 4),
            ..NocConfig::default()
        };
        let mut sim = NocSim::new(cfg);
        let mut id = 0;
        for s in 0..16 {
            for d in 0..16 {
                id += 1;
                sim.inject(SimTime::ZERO, msg(id, s, d, MsgClass::Data, 64));
            }
        }
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn all_pairs_deliver_odd_even() {
        let cfg = NocConfig {
            routing: Routing::OddEven,
            ..cfg4()
        };
        let mut sim = NocSim::new(cfg);
        let mut id = 0;
        for s in 0..16 {
            for d in 0..16 {
                id += 1;
                sim.inject(SimTime::ZERO, msg(id, s, d, MsgClass::Control, 8));
            }
        }
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn heavy_random_load_conserves_messages() {
        use sctm_engine::rng::StreamRng;
        let mut rng = StreamRng::new(42);
        let mut sim = NocSim::new(cfg4());
        let n = 2000;
        for i in 0..n {
            let s = rng.below(16) as u32;
            let mut d = rng.below(16) as u32;
            if d == s {
                d = (d + 1) % 16;
            }
            let class = if rng.chance(0.5) {
                MsgClass::Control
            } else {
                MsgClass::Data
            };
            let bytes = if class == MsgClass::Control { 8 } else { 64 };
            sim.inject(
                SimTime::from_ns(rng.below(2000)),
                msg(i, s, d, class, bytes),
            );
        }
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), n as usize);
        let mut ids: Vec<u64> = out.iter().map(|d| d.msg.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n as usize, "duplicate or lost messages");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            use sctm_engine::rng::StreamRng;
            let mut rng = StreamRng::new(7);
            let mut sim = NocSim::new(cfg4());
            for i in 0..500 {
                let s = rng.below(16) as u32;
                let d = (s + 1 + rng.below(15) as u32) % 16;
                sim.inject(
                    SimTime::from_ns(rng.below(500)),
                    msg(i, s, d, MsgClass::Data, 64),
                );
            }
            let mut out = Vec::new();
            sim.drain(&mut out);
            out.iter()
                .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn advance_until_does_not_overshoot() {
        let mut sim = NocSim::new(cfg4());
        sim.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let mut out = Vec::new();
        sim.advance_until(SimTime::from_ps(200), &mut out);
        assert!(out.is_empty(), "message cannot cross the chip in one cycle");
        // finish
        sim.drain(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn idle_network_skips_time_cheaply() {
        let mut sim = NocSim::new(cfg4());
        sim.inject(SimTime::from_us(100), msg(1, 0, 5, MsgClass::Control, 8));
        let mut out = Vec::new();
        sim.advance_until(SimTime::from_us(99), &mut out);
        // Should not have simulated ~200k idle cycles one by one:
        // cycle jumped straight to the deadline.
        assert!(out.is_empty());
        assert!(sim.cycle() >= 197_000, "cycle={}", sim.cycle());
        sim.drain(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn self_send_delivers() {
        let mut sim = NocSim::new(cfg4());
        sim.inject(SimTime::ZERO, msg(1, 3, 3, MsgClass::Control, 8));
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn next_time_none_when_quiescent() {
        let mut sim = NocSim::new(cfg4());
        assert!(sim.next_time().is_none());
        sim.inject(SimTime::ZERO, msg(1, 0, 1, MsgClass::Control, 8));
        assert!(sim.next_time().is_some());
        let mut out = Vec::new();
        sim.drain(&mut out);
        assert!(sim.next_time().is_none());
    }

    #[test]
    fn lifecycle_components_sum_exactly() {
        use sctm_engine::rng::StreamRng;
        let mut rng = StreamRng::new(11);
        let mut sim = NocSim::new(cfg4());
        sim.set_lifecycle_capture(true);
        let n = 500u64;
        for i in 0..n {
            let s = rng.below(16) as u32;
            let d = rng.below(16) as u32; // self-sends included
            let class = if rng.chance(0.5) {
                MsgClass::Control
            } else {
                MsgClass::Data
            };
            let bytes = if class == MsgClass::Control { 8 } else { 64 };
            sim.inject(
                SimTime::from_ns(rng.below(1000)),
                msg(i, s, d, class, bytes),
            );
        }
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), n as usize);
        let mut lcs = Vec::new();
        sim.take_lifecycles(&mut lcs);
        assert_eq!(lcs.len(), n as usize);
        for lc in &lcs {
            assert_eq!(
                lc.breakdown.total_ps(),
                lc.latency_ps(),
                "components of {:?} do not sum to latency",
                lc.msg.id
            );
        }
        // Under contention, at least some messages see queueing.
        assert!(lcs.iter().any(|l| l.breakdown.queue_ps > 0));
    }

    #[test]
    fn wormhole_keeps_packets_contiguous() {
        // Two long data packets from different sources to the same
        // destination must both arrive complete (reassembly panics on
        // interleaving errors).
        let mut sim = NocSim::new(cfg4());
        sim.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 256));
        sim.inject(SimTime::ZERO, msg(2, 3, 15, MsgClass::Data, 256));
        sim.inject(SimTime::ZERO, msg(3, 12, 15, MsgClass::Data, 256));
        let out = drain_all(&mut sim);
        assert_eq!(out.len(), 3);
    }
}
