//! The metric namespace is a contract: DESIGN.md §12.4 holds the only
//! table of names any SCTM component may publish, and this test fails
//! the build if a SelfCorrection run or the `sctmd` service publishes
//! a name (or kind) the table does not document — the drift that let
//! `sctm.incr.frontier` ship as a counter of messages.

use sctm::obs::{self, MetricValue};
use sctm::prelude::*;
use sctm_srv::{parse_request, Request, Server, ServerConfig};

const DESIGN: &str = include_str!("../DESIGN.md");

/// `(name pattern, kind)` rows between the namespace table markers.
fn table_rows() -> Vec<(String, String)> {
    let begin = DESIGN
        .find("<!-- metric-namespace:begin -->")
        .expect("namespace table begin marker missing from DESIGN.md");
    let end = DESIGN
        .find("<!-- metric-namespace:end -->")
        .expect("namespace table end marker missing from DESIGN.md");
    let mut rows = Vec::new();
    for line in DESIGN[begin..end].lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('`') else {
            continue;
        };
        let kind = rest
            .split('|')
            .nth(1)
            .map(str::trim)
            .unwrap_or_default()
            .to_string();
        assert!(
            ["counter", "gauge", "hist"].contains(&kind.as_str()),
            "bad kind column for {name}: {kind:?}"
        );
        rows.push((name.to_string(), kind));
    }
    assert!(rows.len() >= 40, "suspiciously small table: {}", rows.len());
    rows
}

/// Match one dot-segment against a pattern segment: literal, or a
/// `<placeholder>` with optional literal prefix/suffix (`iter<NN>`,
/// `node<NNN>`, `<net>`), where the placeholder consumes one or more
/// characters.
fn seg_matches(pat: &str, seg: &str) -> bool {
    match (pat.find('<'), pat.find('>')) {
        (Some(open), Some(close)) if open < close => {
            let prefix = &pat[..open];
            let suffix = &pat[close + 1..];
            seg.len() > prefix.len() + suffix.len()
                && seg.starts_with(prefix)
                && seg.ends_with(suffix)
        }
        _ => pat == seg,
    }
}

fn name_matches(pat: &str, name: &str) -> bool {
    let pats: Vec<&str> = pat.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    pats.len() == segs.len() && pats.iter().zip(&segs).all(|(p, s)| seg_matches(p, s))
}

fn kind_of(v: &MetricValue) -> &'static str {
    match v {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Hist(_) => "hist",
    }
}

fn assert_all_documented<'a>(
    rows: &[(String, String)],
    published: impl Iterator<Item = (&'a str, &'a MetricValue)>,
    source: &str,
) {
    let mut checked = 0usize;
    for (name, value) in published {
        let row = rows.iter().find(|(pat, _)| name_matches(pat, name));
        let Some((pat, kind)) = row else {
            panic!("{source} published undocumented metric {name} — add it to DESIGN.md §12.4");
        };
        assert_eq!(
            kind,
            kind_of(value),
            "{source}: {name} is a {} but the table row `{pat}` says {kind}",
            kind_of(value)
        );
        checked += 1;
    }
    assert!(checked > 0, "{source} published nothing — dead test");
}

#[test]
fn every_published_metric_appears_in_the_design_table() {
    let rows = table_rows();

    // 1. An obs-enabled SelfCorrection run: exercises publish_network
    //    (net.*), record_iteration (sctm.<net>.<wl>.iterNN.*) and the
    //    incremental-replay counters (sctm.incr.*).
    obs::reset_global();
    obs::reset_iterations();
    obs::set_enabled(true);
    let exp = Experiment::new(SystemConfig::new(2, NetworkKind::Omesh), Kernel::Fft).with_ops(150);
    exp.execute(&RunSpec::self_correction(3))
        .expect("self-correction run");
    obs::set_enabled(false);
    obs::drain(); // leave no trace-event residue behind
    let global = obs::global_snapshot();
    assert_all_documented(&rows, global.iter(), "obs-enabled SelfCorrection");

    // 2. The service: the full srv.* namespace from the stats manifest,
    //    plus the `run.*` metrics embedded in a real run response.
    let server = Server::start(ServerConfig::default());
    let req = match parse_request("run kernel=fft net=omesh side=2 ops=150 mode=sctm iters=2 id=n1")
        .expect("parse")
    {
        Request::Run(r) => *r,
        other => panic!("expected run, got {other:?}"),
    };
    let response = server.submit_blocking(req);
    assert!(
        response.contains(r#""status":"ok""#),
        "run failed: {response}"
    );
    let stats = server.stats_manifest();
    assert_all_documented(&rows, stats.metrics.iter(), "sctmd stats manifest");

    // Scrape `"name": {"kind": "…"` pairs out of the compact result
    // JSON so the check runs against what the wire actually carries.
    let mut scraped = 0usize;
    let mut rest = response.as_str();
    while let Some(pos) = rest.find(r#": {"kind": ""#) {
        let name = rest[..pos]
            .rsplit('"')
            .nth(1)
            .unwrap_or_default()
            .to_string();
        let kind = rest[pos + r#": {"kind": ""#.len()..]
            .split('"')
            .next()
            .unwrap_or_default();
        let row = rows.iter().find(|(pat, _)| name_matches(pat, &name));
        let Some((_, doc_kind)) = row else {
            panic!("run response carried undocumented metric {name} — add it to DESIGN.md §12.4");
        };
        assert_eq!(doc_kind, kind, "run response: {name} kind drifted");
        scraped += 1;
        rest = &rest[pos + 1..];
    }
    assert!(scraped >= 4, "run response carried no metrics — dead check");

    // The incremental counters really were exercised (the naming-drift
    // fix this test guards: dirty accumulation is `dirty_messages`).
    assert!(
        global.get("sctm.incr.passes_full").is_some(),
        "SelfCorrection run published no incremental telemetry"
    );
    assert!(
        global.get("sctm.incr.frontier").is_none(),
        "the misnamed sctm.incr.frontier counter is back"
    );
}

#[test]
fn pattern_matcher_is_exact_where_it_should_be() {
    assert!(name_matches("srv.cache.hits", "srv.cache.hits"));
    assert!(!name_matches("srv.cache.hits", "srv.cache.hit"));
    assert!(!name_matches("srv.cache.hits", "srv.cache.hits.extra"));
    assert!(name_matches("net.<net>.injected", "net.omesh.injected"));
    assert!(!name_matches("net.<net>.injected", "net..injected"));
    assert!(name_matches(
        "net.<net>.node<NNN>.link_util",
        "net.hybrid.node007.link_util"
    ));
    assert!(!name_matches(
        "net.<net>.node<NNN>.link_util",
        "net.hybrid.node.link_util"
    ));
    assert!(name_matches(
        "sctm.<net>.<wl>.iter<NN>.drift_ps",
        "sctm.omesh.fft.iter02.drift_ps"
    ));
    assert!(!name_matches(
        "sctm.<net>.<wl>.iter<NN>.drift_ps",
        "sctm.omesh.fft.iter02.est_ps"
    ));
}
