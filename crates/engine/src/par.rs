//! Deterministic parallel sweep executor.
//!
//! Replaces the old thread-per-job harness: a fixed pool of scoped
//! workers pulls job indices off a shared atomic counter, runs each
//! closure exactly once, and writes its result into a slot keyed by the
//! job's input position. Because every job builds its own simulators and
//! seeds its own [`crate::rng::StreamRng`] streams, and because results
//! are collected strictly in index order, the output is **bit-identical
//! to serial execution** regardless of thread count or OS scheduling —
//! parallelism only changes *when* a job runs, never *what* it computes
//! or *where* its result lands.
//!
//! The pool honours `RAYON_NUM_THREADS` (the conventional knob) and
//! `SCTM_NUM_THREADS` (ours, takes precedence) so sweeps can be pinned
//! for reproducible timing experiments; otherwise it uses every
//! available core. Pools are scoped per call: nested `par_map` calls
//! cannot deadlock, they just briefly oversubscribe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Worker-thread count for [`par_map`]: `SCTM_NUM_THREADS` or
/// `RAYON_NUM_THREADS` if set to a positive integer, else the number of
/// available cores.
pub fn num_threads() -> usize {
    let env = |k: &str| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    };
    env("SCTM_NUM_THREADS")
        .or_else(|| env("RAYON_NUM_THREADS"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Shard-worker count for parallel CMP capture: `SCTM_THREADS` if set to
/// a positive integer, else 1 (sequential capture — the default keeps
/// the classic single-threaded path untouched unless the user opts in).
///
/// Distinct from [`num_threads`] on purpose: sweep parallelism
/// (`SCTM_NUM_THREADS`) fans out independent experiments, while capture
/// parallelism shards *one* simulation and changes its execution
/// schedule (though never its results — see `sctm-cmp`'s `par` module).
pub fn capture_threads() -> usize {
    std::env::var("SCTM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A sense-reversing spin barrier for tightly-coupled epoch loops.
///
/// `std::sync::Barrier` parks threads on a mutex/condvar, which costs
/// microseconds per crossing — ruinous when a parallel capture crosses
/// two barriers per epoch and runs tens of thousands of epochs. This
/// barrier spins (with a `yield_now` backoff so oversubscribed hosts
/// still make progress), reducing a crossing to a handful of atomic
/// operations when all participants are running.
///
/// Memory ordering: the generation bump is a release store observed with
/// acquire loads, so writes made by any participant before `wait()` are
/// visible to every participant after it — the property the epoch
/// runner's mailbox exchange relies on.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all `n` participants have called `wait`. Returns
    /// `true` on exactly one participant per crossing (the last to
    /// arrive), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            // Last arrival: reset the counter for the next crossing,
            // then release the generation bump that frees the spinners.
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        false
    }
}

/// Worker count for a long-lived service scheduler (`sctmd`'s
/// work-stealing pool): `SCTM_THREADS` if set to a positive integer,
/// else every available core.
///
/// Distinct from [`capture_threads`]'s default on purpose: a *daemon*
/// exists to saturate the host, so opting out (pinning to 1) is the
/// explicit act, whereas in-process library captures default to the
/// classic sequential path.
pub fn service_threads() -> usize {
    std::env::var("SCTM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A task on the [`WorkStealPool`]: runs once on some worker and may
/// push follow-up tasks onto that worker's own deque via the handle.
pub type StealTask = Box<dyn FnOnce(&WorkerHandle<'_>) + Send + 'static>;

/// Point-in-time occupancy/steal counters of a [`WorkStealPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fixed worker count the pool was built with.
    pub workers: u64,
    /// Workers currently executing a task.
    pub busy: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Tasks executed to completion.
    pub executed: u64,
}

struct PoolShared {
    /// Per-worker deques: the owner pushes/pops the back (LIFO keeps a
    /// request's next stage hot), thieves and the injector drain take
    /// the front (FIFO keeps stolen work the *oldest*, maximising
    /// pipeline overlap between requests).
    queues: Vec<Mutex<std::collections::VecDeque<StealTask>>>,
    /// Tasks submitted from outside any worker.
    injector: Mutex<std::collections::VecDeque<StealTask>>,
    /// Tasks anywhere in the pool (injector + all deques). Workers only
    /// sleep when this is zero, so a push after the check cannot be
    /// missed: push increments *before* notify.
    pending: AtomicUsize,
    sleep: Mutex<()>,
    wake: std::sync::Condvar,
    shutdown: std::sync::atomic::AtomicBool,
    busy: AtomicUsize,
    steals: std::sync::atomic::AtomicU64,
    executed: std::sync::atomic::AtomicU64,
}

/// Handed to every running task: identifies the worker and lets the
/// task schedule follow-up stages on its own deque.
pub struct WorkerHandle<'a> {
    shared: &'a PoolShared,
    index: usize,
}

impl WorkerHandle<'_> {
    /// This worker's index in `0..workers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Push a follow-up task onto this worker's own deque (LIFO end).
    /// The worker will usually run it next; an idle peer may steal it.
    pub fn push_local<F: FnOnce(&WorkerHandle<'_>) + Send + 'static>(&self, task: F) {
        {
            let mut q = lock_queue(&self.shared.queues[self.index]);
            q.push_back(Box::new(task));
        }
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.wake.notify_one();
    }
}

fn lock_queue<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed pool of workers pulling tasks from per-worker deques with
/// work stealing, fed by a shared injector queue.
///
/// Built for `sctmd`'s stage-pipelined scheduler: each request is a
/// chain of stage tasks (probe → capture → replay → render); a worker
/// finishing one stage pushes the next onto its own deque, and idle
/// workers steal the *oldest* queued stage from a peer — so the
/// capture of one request overlaps the replay of another and the
/// response rendering of a third. Scheduling order is arbitrary by
/// design; anything that must be deterministic (simulation results)
/// must not depend on execution order, which the byte-identity suite
/// in `tests/srv_sched.rs` pins for the service.
///
/// Tasks may block (e.g. on the capture cache's single-flight
/// condvar); that parks one worker, never the pool. A `Pending`
/// single-flight slot is only ever owned by a *running* task, so a
/// blocked waiter always waits on live progress, not on queued work.
pub struct WorkStealPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkStealPool {
    /// Spawn `workers` (clamped to ≥1) named worker threads.
    pub fn new(workers: usize) -> WorkStealPool {
        let n = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..n)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            injector: Mutex::new(std::collections::VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: std::sync::Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            steals: std::sync::atomic::AtomicU64::new(0),
            executed: std::sync::atomic::AtomicU64::new(0),
        });
        let workers = (0..n)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sctm-steal-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn work-steal worker")
            })
            .collect();
        WorkStealPool { shared, workers }
    }

    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submit a task from outside the pool (goes to the injector).
    pub fn submit<F: FnOnce(&WorkerHandle<'_>) + Send + 'static>(&self, task: F) {
        {
            let mut q = lock_queue(&self.shared.injector);
            q.push_back(Box::new(task));
        }
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.wake.notify_one();
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers() as u64,
            busy: self.shared.busy.load(Ordering::Relaxed) as u64,
            steals: self.shared.steals.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
        }
    }

    /// Tasks queued anywhere in the pool (injector + deques), not
    /// counting the ones currently executing.
    pub fn queued(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }
}

impl Drop for WorkStealPool {
    /// Finish everything queued, then stop the workers. Callers that
    /// need request-level drain semantics (answer every accepted
    /// request before refusing new ones) wait for their own completion
    /// counters first; this drop only guarantees no task is abandoned.
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let handle = WorkerHandle { shared, index };
    let n = shared.queues.len();
    loop {
        // Own deque back → steal a peer's front → injector front.
        let task = {
            let own = lock_queue(&shared.queues[index]).pop_back();
            own.or_else(|| {
                (1..n)
                    .map(|d| (index + d) % n)
                    .find_map(|victim| {
                        let t = lock_queue(&shared.queues[victim]).pop_front();
                        if t.is_some() {
                            shared.steals.fetch_add(1, Ordering::Relaxed);
                        }
                        t
                    })
                    .or_else(|| lock_queue(&shared.injector).pop_front())
            })
        };
        match task {
            Some(task) => {
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                shared.busy.fetch_add(1, Ordering::Relaxed);
                task(&handle);
                shared.busy.fetch_sub(1, Ordering::Relaxed);
                shared.executed.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                if shared.shutdown.load(std::sync::atomic::Ordering::SeqCst) {
                    if shared.pending.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    continue; // shutting down, but tasks remain: drain them
                }
                let guard = shared.sleep.lock().unwrap_or_else(|e| e.into_inner());
                if shared.pending.load(Ordering::SeqCst) == 0
                    && !shared.shutdown.load(std::sync::atomic::Ordering::SeqCst)
                {
                    // Timed wait: a task pushed between our queue scans
                    // and this wait is caught by `pending` above; the
                    // timeout is only a belt for exotic lost-wakeup
                    // interleavings across the three queue mutexes.
                    let _ = shared
                        .wake
                        .wait_timeout(guard, std::time::Duration::from_millis(10));
                }
            }
        }
    }
}

/// Run `jobs` on a scoped worker pool and return their results in input
/// order. Bit-identical to [`serial_map`] (see module docs). Panics in a
/// job propagate once the pool has been joined.
pub fn par_map<T: Send, F: FnOnce() -> T + Send>(jobs: Vec<F>) -> Vec<T> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(n);
    if workers <= 1 {
        return serial_map(jobs);
    }

    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job taken twice");
                let result = job();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("experiment worker panicked")
        })
        .collect()
}

/// Serial reference executor with the same contract as [`par_map`]; used
/// by the determinism test and as the 1-thread fast path.
pub fn serial_map<T, F: FnOnce() -> T>(jobs: Vec<F>) -> Vec<T> {
    jobs.into_iter().map(|j| j()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let jobs: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
        let got = par_map(jobs);
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(par_map(empty).is_empty());
        assert_eq!(par_map(vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn nested_calls_complete() {
        let jobs: Vec<_> = (0..4u64)
            .map(|i| move || par_map((0..8u64).map(|j| move || i * 100 + j).collect::<Vec<_>>()))
            .collect();
        let got = par_map(jobs);
        for (i, inner) in got.iter().enumerate() {
            let want: Vec<u64> = (0..8).map(|j| i as u64 * 100 + j).collect();
            assert_eq!(inner, &want);
        }
    }

    #[test]
    fn spin_barrier_synchronises_counters() {
        use std::sync::atomic::AtomicU64;
        let threads = 4;
        let rounds = 200;
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between crossings every thread must observe the
                        // full round's increments.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (r + 1) * threads as u64, "seen={seen} round={r}");
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * threads as u64);
    }

    #[test]
    fn spin_barrier_leader_is_unique() {
        let threads = 3;
        let barrier = SpinBarrier::new(threads);
        use std::sync::atomic::AtomicU64;
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn capture_threads_defaults_to_one() {
        // The env var is unset in the test harness; the default must be
        // the sequential path.
        if std::env::var("SCTM_THREADS").is_err() {
            assert_eq!(capture_threads(), 1);
        } else {
            assert!(capture_threads() >= 1);
        }
    }

    #[test]
    fn matches_serial_reference() {
        let mk = || {
            (0..32u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9))
                .collect::<Vec<_>>()
        };
        assert_eq!(par_map(mk()), serial_map(mk()));
    }

    #[test]
    fn steal_pool_runs_every_submitted_task_once() {
        let pool = WorkStealPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..256 {
            let hits = Arc::clone(&hits);
            pool.submit(move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains everything before joining
        assert_eq!(hits.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn steal_pool_chained_stages_complete() {
        // Each submitted task pushes a follow-up stage locally; both
        // halves of the chain must run exactly once.
        let pool = WorkStealPool::new(3);
        let stage1 = Arc::new(AtomicUsize::new(0));
        let stage2 = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let s1 = Arc::clone(&stage1);
            let s2 = Arc::clone(&stage2);
            pool.submit(move |h| {
                s1.fetch_add(1, Ordering::SeqCst);
                pool_push_second(h, s2);
            });
        }
        drop(pool);
        assert_eq!(stage1.load(Ordering::SeqCst), 64);
        assert_eq!(stage2.load(Ordering::SeqCst), 64);
    }

    fn pool_push_second(h: &WorkerHandle<'_>, s2: Arc<AtomicUsize>) {
        h.push_local(move |_| {
            s2.fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn steal_pool_stats_account_for_executed_tasks() {
        let pool = WorkStealPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        while done.load(Ordering::SeqCst) < 32 {
            std::thread::yield_now();
        }
        // `executed` may trail `done` by the in-flight increment window;
        // poll until it settles rather than racing the counter.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.stats().executed < 32 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.executed, 32);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn steal_pool_blocked_worker_does_not_stall_peers() {
        // One task parks on a channel; the remaining worker must still
        // drain the rest of the queue.
        let pool = WorkStealPool::new(2);
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(move |_| {
            let _ = release_rx.recv();
        });
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.submit(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 16 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(done.load(Ordering::SeqCst), 16);
        release_tx.send(()).unwrap();
        drop(pool);
    }

    #[test]
    fn service_threads_is_positive() {
        assert!(service_threads() >= 1);
    }
}
