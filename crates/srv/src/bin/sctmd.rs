//! `sctmd` — the SCTM batch simulation daemon.
//!
//! ```text
//! sctmd --stdin                      # serve requests from stdin (CI mode)
//! sctmd --listen 127.0.0.1:4710     # serve the line protocol over TCP
//! sctmd --stdin --cache-mb 64 --queue 32 --timeout-ms 10000
//! sctmd --listen 127.0.0.1:4710 --log-dir /var/log/sctmd
//! sctmd --listen 127.0.0.1:4710 --workers 8 --sched steal
//! sctmd --listen 127.0.0.1:4711 \
//!       --peers 127.0.0.1:4710,127.0.0.1:4711   # shard the capture cache
//! ```
//!
//! Scheduling: `--sched steal` (default) pipelines each request's
//! probe → capture → replay → render stages across a work-stealing
//! pool of `--workers` threads (default `SCTM_THREADS`, else all
//! cores); `--sched batch` restores the original serial batch cycle.
//! Shard mode: `--peers` lists every instance's *listen* address
//! (comma-separated, including this one — matched against `--listen`,
//! or set explicitly with `--shard-self`); capture misses on keys
//! owned by a peer are forwarded over the `fwd` verb.
//!
//! One request per line, one JSON response line per request; see
//! `DESIGN.md` §10–12 and the README quickstart for the protocol.
//!
//! Diagnostics are structured: every daemon-level event is one JSON
//! line on stderr (`{"ts_ms":…,"event":…}`), and with `--log-dir DIR`
//! (or the `SCTM_LOG` environment variable, mirroring `SCTM_OBS`
//! conventions) per-request lifecycle records are appended to
//! `DIR/sctmd.log.jsonl` with size-based rotation.

use sctm_obs::json_escape;
use sctm_obs::reqlog::{json_line, RequestLog};
use sctm_srv::shard::ShardRing;
use sctm_srv::{serve_lines, serve_tcp, SchedMode, Server, ServerConfig, Shard};
use std::sync::Arc;

/// One structured daemon event on stderr: `{"ts_ms":…,"event":"…",…}`.
fn log_stderr(event: &str, extra: &[(&str, String)]) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut fields: Vec<(&str, String)> = vec![
        ("ts_ms", ts.to_string()),
        ("event", format!("\"{}\"", json_escape(event))),
    ];
    fields.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    eprintln!("{}", json_line(&fields));
}

fn quoted(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn usage() -> ! {
    log_stderr(
        "usage",
        &[(
            "message",
            quoted(
                "sctmd (--stdin | --listen ADDR) [--cache-mb N] [--queue N] \
                 [--timeout-ms N] [--log-dir DIR] [--workers N] \
                 [--sched steal|batch] [--read-timeout-ms N] \
                 [--peers A,B,...] [--shard-self ADDR]",
            ),
        )],
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdin_mode = false;
    let mut listen: Option<String> = None;
    let mut log_dir: Option<String> = std::env::var("SCTM_LOG")
        .ok()
        .filter(|v| !matches!(v.as_str(), "" | "0" | "false" | "off"));
    let mut peers: Vec<String> = Vec::new();
    let mut shard_self: Option<String> = None;
    let mut cfg = ServerConfig::default();
    if let Some(ms) = std::env::var("SCTM_READ_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        cfg.read_timeout_ms = ms;
    }

    let mut i = 0;
    let num = |args: &[String], i: &mut usize| -> u64 {
        *i += 1;
        args.get(*i)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--stdin" => stdin_mode = true,
            "--listen" => {
                i += 1;
                listen = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--cache-mb" => cfg.cache_bytes = (num(&args, &mut i) as usize) << 20,
            "--queue" => cfg.queue_cap = num(&args, &mut i) as usize,
            "--timeout-ms" => cfg.default_timeout_ms = num(&args, &mut i),
            "--read-timeout-ms" => cfg.read_timeout_ms = num(&args, &mut i),
            "--workers" => cfg.workers = num(&args, &mut i) as usize,
            "--sched" => {
                i += 1;
                cfg.sched = match args.get(i).map(String::as_str) {
                    Some("steal") => SchedMode::WorkSteal,
                    Some("batch") => SchedMode::Batch,
                    _ => usage(),
                };
            }
            "--peers" => {
                i += 1;
                peers = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect();
            }
            "--shard-self" => {
                i += 1;
                shard_self = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--log-dir" => {
                i += 1;
                log_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if stdin_mode == listen.is_some() {
        usage(); // exactly one front-end
    }

    let log = log_dir.map(|dir| match RequestLog::create(std::path::Path::new(&dir)) {
        Ok(log) => {
            log_stderr(
                "request-log",
                &[("path", quoted(&log.path().display().to_string()))],
            );
            Arc::new(log)
        }
        Err(e) => {
            log_stderr(
                "error",
                &[
                    ("message", quoted(&format!("cannot open request log: {e}"))),
                    ("dir", quoted(&dir)),
                ],
            );
            std::process::exit(1);
        }
    });

    let shard = if peers.is_empty() {
        None
    } else {
        // The self address defaults to the listen address; stdin mode
        // has no listen address, so sharded stdin requires --shard-self.
        let self_addr = shard_self.or_else(|| listen.clone()).unwrap_or_else(|| {
            log_stderr(
                "error",
                &[(
                    "message",
                    quoted("--peers with --stdin requires --shard-self"),
                )],
            );
            std::process::exit(2);
        });
        match ShardRing::new(peers, &self_addr) {
            Ok(ring) => {
                log_stderr(
                    "shard",
                    &[
                        ("peers", ring.peers().len().to_string()),
                        ("self", quoted(ring.self_addr())),
                    ],
                );
                Some(Shard::new(ring))
            }
            Err(e) => {
                log_stderr("error", &[("message", quoted(&e.to_string()))]);
                std::process::exit(2);
            }
        }
    };

    let server = Server::start_sharded(cfg, shard, log);
    if stdin_mode {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout().lock();
        let res = serve_lines(stdin.lock(), &mut stdout, &server);
        server.drain();
        if let Err(e) = res {
            log_stderr("error", &[("message", quoted(&e.to_string()))]);
            std::process::exit(1);
        }
    } else if let Some(addr) = listen {
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                log_stderr(
                    "error",
                    &[
                        ("message", quoted(&format!("cannot bind: {e}"))),
                        ("addr", quoted(&addr)),
                    ],
                );
                std::process::exit(1);
            }
        };
        log_stderr("listening", &[("addr", quoted(&addr))]);
        if let Err(e) = serve_tcp(listener, server) {
            log_stderr("error", &[("message", quoted(&e.to_string()))]);
            std::process::exit(1);
        }
    }
}
