//! Deterministic pending-event set.
//!
//! [`EventQueue`] delivers events in `(timestamp, insertion sequence)`
//! order. The sequence tiebreak is what makes whole-simulation
//! determinism possible: a bare priority structure is not stable, so two
//! events scheduled for the same picosecond could pop in either order
//! depending on internal shape, and any RNG draw or stats update
//! downstream of that order would diverge between runs.
//!
//! Two backends implement the same contract:
//!
//! * a binary heap (`BinaryHeap<QueuedEvent>`), O(log n) push/pop — the
//!   original implementation, still available for comparison;
//! * a calendar queue (time wheel), O(1) amortised push/pop on the
//!   dense, near-monotone schedules discrete-event network models
//!   produce. Buckets self-resize (count and width) as the schedule
//!   density changes, and events beyond the wheel horizon spill to a
//!   fallback overflow heap, so pathological schedules degrade to heap
//!   behaviour instead of breaking.
//!
//! The calendar queue is the default: on the workspace benches
//! (`bench --bench engine`, capture-shaped and replay-shaped schedules)
//! it matches the heap on tiny queues and wins on dense ones. Both
//! backends pop in exactly the same order — property-tested in this
//! module — so the choice is invisible to every model.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at a point in simulated time.
#[derive(Debug, Clone)]
pub struct QueuedEvent<E> {
    pub at: SimTime,
    pub seq: u64,
    pub payload: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

// Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Which pending-set implementation an [`EventQueue`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueBackend {
    /// Binary min-heap: O(log n), fully general.
    Heap,
    /// Calendar queue (time wheel) with overflow heap: O(1) amortised
    /// on dense schedules.
    Calendar,
}

/// The calendar-queue wheel: `buckets.len()` (a power of two) buckets of
/// `1 << shift` picoseconds each, covering absolute bucket numbers
/// `[cursor_ab, cursor_ab + buckets.len())`. Because only that window
/// maps into the wheel, each bucket holds events of exactly one absolute
/// bucket — no epoch/year filtering is needed on pop. Events beyond the
/// horizon wait in `overflow` (a plain heap) and migrate in as the
/// cursor advances.
#[derive(Debug, Clone)]
struct Wheel<E> {
    buckets: Vec<Vec<QueuedEvent<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty. Lets the
    /// min rebuild skip runs of empty buckets a word at a time instead
    /// of probing each `Vec` — on replay-shaped schedules the next
    /// event is typically several empty buckets ahead, and this scan
    /// runs once per pop.
    occ: Vec<u64>,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// Absolute bucket number (`at >> shift`) of the wheel cursor. Only
    /// advanced by `pop` (to the popped event's bucket), so it never
    /// outruns `now` and late `schedule` calls always land in-window.
    cursor_ab: u64,
    /// Events currently stored in the wheel (not counting overflow).
    count: usize,
    overflow: BinaryHeap<QueuedEvent<E>>,
    /// Eagerly-maintained minimum of the *wheel* events (not overflow):
    /// (at, seq, absolute bucket, index in bucket). Invariant: `Some`
    /// exactly when `count > 0`, kept correct by every mutation — so
    /// peeking is a read-only O(1) lookup.
    cached_min: Option<(SimTime, u64, u64, usize)>,
}

const WHEEL_MIN_BUCKETS: usize = 16;
const WHEEL_MAX_BUCKETS: usize = 1 << 16;

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            buckets: (0..WHEEL_MIN_BUCKETS).map(|_| Vec::new()).collect(),
            occ: vec![0; WHEEL_MIN_BUCKETS.div_ceil(64)],
            // 1024 ps buckets to start with; resize adapts.
            shift: 10,
            cursor_ab: 0,
            count: 0,
            overflow: BinaryHeap::new(),
            cached_min: None,
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    #[inline]
    fn occ_set(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn occ_clear(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// First non-empty bucket index at or after `start` in ring order
    /// (wrapping once past the end). `None` iff every bucket is empty.
    fn occ_next(&self, start: usize) -> Option<usize> {
        let nb = self.buckets.len();
        let words = self.occ.len();
        let (w0, b0) = (start >> 6, start & 63);
        // Tail of the starting word, then whole words to the end.
        let first = self.occ[w0] & (!0u64 << b0);
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize);
        }
        for w in w0 + 1..words {
            if self.occ[w] != 0 {
                return Some((w << 6) + self.occ[w].trailing_zeros() as usize);
            }
        }
        // Wrap: words before the start, then the head of the start word.
        for w in 0..w0 {
            if self.occ[w] != 0 {
                let i = (w << 6) + self.occ[w].trailing_zeros() as usize;
                if i < nb {
                    return Some(i);
                }
            }
        }
        let head = self.occ[w0] & !(!0u64 << b0);
        if head != 0 {
            return Some((w0 << 6) + head.trailing_zeros() as usize);
        }
        None
    }

    #[inline]
    fn horizon_ab(&self) -> u64 {
        self.cursor_ab + self.buckets.len() as u64
    }

    fn len(&self) -> usize {
        self.count + self.overflow.len()
    }

    fn push(&mut self, ev: QueuedEvent<E>, now: SimTime) {
        if self.count > self.buckets.len() * 2
            || (self.overflow.len() > 64 && self.overflow.len() > self.count)
        {
            self.resize(now);
        }
        let ab = ev.at.as_ps() >> self.shift;
        debug_assert!(ab >= self.cursor_ab, "wheel push into the past");
        if ab >= self.horizon_ab() {
            self.overflow.push(ev);
            return;
        }
        // Keep the eager minimum current.
        match self.cached_min {
            Some((cat, cseq, _, _)) if (ev.at, ev.seq) < (cat, cseq) => {
                let idx = self.buckets[(ab & self.mask()) as usize].len();
                self.cached_min = Some((ev.at, ev.seq, ab, idx));
            }
            None => {
                debug_assert_eq!(self.count, 0);
                self.cached_min = Some((ev.at, ev.seq, ab, 0));
            }
            _ => {}
        }
        {
            let m = self.mask();
            let i = (ab & m) as usize;
            self.buckets[i].push(ev);
            self.occ_set(i);
        }
        self.count += 1;
    }

    /// The minimum pending event, read-only. The wheel min (eagerly
    /// maintained) always beats the overflow min when both exist: every
    /// overflow event sits in a bucket at or past the horizon, strictly
    /// later than any wheel bucket.
    fn peek(&self) -> Option<SimTime> {
        match self.cached_min {
            Some((at, _, _, _)) => Some(at),
            None => self.overflow.peek().map(|e| e.at),
        }
    }

    /// Recompute `cached_min` by scanning buckets from the cursor.
    /// O(buckets) worst case, but the scan starts at the cursor (the
    /// last popped bucket) so on dense schedules it terminates within a
    /// bucket or two.
    fn rebuild_min(&mut self) {
        self.cached_min = None;
        if self.count == 0 {
            return;
        }
        let mask = self.mask();
        let start = (self.cursor_ab & mask) as usize;
        let i = self
            .occ_next(start)
            .expect("wheel count positive but no bucket occupied");
        // Ring index back to the absolute bucket inside the window.
        let nb = self.buckets.len();
        let ab = if i >= start {
            self.cursor_ab + (i - start) as u64
        } else {
            self.cursor_ab + (nb - start + i) as u64
        };
        let b = &self.buckets[i];
        let (mut idx, mut best) = (0usize, (b[0].at, b[0].seq));
        for (i, e) in b.iter().enumerate().skip(1) {
            if (e.at, e.seq) < best {
                best = (e.at, e.seq);
                idx = i;
            }
        }
        self.cached_min = Some((best.0, best.1, ab, idx));
    }

    fn pop(&mut self) -> Option<QueuedEvent<E>> {
        match self.cached_min.take() {
            None => {
                // Wheel empty: serve straight from the overflow heap,
                // then advance the cursor to the served bucket and pull
                // newly in-horizon events forward.
                let ev = self.overflow.pop()?;
                self.cursor_ab = ev.at.as_ps() >> self.shift;
                self.migrate_due();
                self.rebuild_min();
                Some(ev)
            }
            Some((_, _, ab, idx)) => {
                let mask = self.mask();
                let i = (ab & mask) as usize;
                let ev = self.buckets[i].swap_remove(idx);
                if self.buckets[i].is_empty() {
                    self.occ_clear(i);
                }
                self.count -= 1;
                // Overflow events become due only when the horizon
                // (cursor + window) advances; a pop within the cursor
                // bucket cannot uncover any.
                if ab != self.cursor_ab {
                    self.cursor_ab = ab;
                    self.migrate_due();
                }
                self.rebuild_min();
                Some(ev)
            }
        }
    }

    /// Pull overflow events that the advancing horizon now covers.
    fn migrate_due(&mut self) {
        let mask = self.mask();
        while let Some(e) = self.overflow.peek() {
            let ab = e.at.as_ps() >> self.shift;
            if ab >= self.horizon_ab() {
                break;
            }
            let ev = self.overflow.pop().expect("peeked");
            let i = (ab & mask) as usize;
            self.buckets[i].push(ev);
            self.occ_set(i);
            self.count += 1;
        }
    }

    /// Rebuild the wheel around the current schedule: bucket count from
    /// the population, bucket width from the mean event spacing. The
    /// cursor is re-anchored at `now` (not the earliest pending event)
    /// because future pushes may still land anywhere at or after `now`.
    fn resize(&mut self, now: SimTime) {
        let mut all: Vec<QueuedEvent<E>> = Vec::with_capacity(self.len());
        for b in &mut self.buckets {
            all.append(b);
        }
        all.extend(std::mem::take(&mut self.overflow).into_vec());
        self.count = 0;
        self.cached_min = None;
        let n = all.len().max(1);
        let hi = all.iter().map(|e| e.at).max().unwrap_or(now).max(now);
        let span = hi.as_ps().saturating_sub(now.as_ps()).max(1);
        // Aim for ~1 event per bucket across the observed span.
        let width = (span / n as u64).max(1);
        self.shift = 63 - width.leading_zeros();
        let want = (n * 2)
            .next_power_of_two()
            .clamp(WHEEL_MIN_BUCKETS, WHEEL_MAX_BUCKETS);
        self.buckets = (0..want).map(|_| Vec::new()).collect();
        self.occ = vec![0; want.div_ceil(64)];
        self.cursor_ab = now.as_ps() >> self.shift;
        for ev in all {
            let ab = ev.at.as_ps() >> self.shift;
            if ab >= self.horizon_ab() {
                self.overflow.push(ev);
            } else {
                {
                    let m = self.mask();
                    let i = (ab & m) as usize;
                    self.buckets[i].push(ev);
                    self.occ_set(i);
                }
                self.count += 1;
            }
        }
        self.rebuild_min();
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occ.iter_mut().for_each(|w| *w = 0);
        self.overflow.clear();
        self.count = 0;
        self.cursor_ab = 0;
        self.cached_min = None;
    }
}

#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(BinaryHeap<QueuedEvent<E>>),
    Calendar(Wheel<E>),
}

/// Min-queue of timestamped events with FIFO tiebreak.
///
/// Also tracks the current simulation time (`now`), which advances
/// monotonically as events are popped. Scheduling into the past is a
/// model bug and panics in debug builds; in release it is clamped to
/// `now` (the least-wrong recovery, and cheaper than a branch miss on a
/// cold error path).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Default backend: the calendar queue (see module docs).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Calendar)
    }

    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
                QueueBackend::Calendar => Backend::Calendar(Wheel::new()),
            },
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        if let Backend::Heap(h) = &mut q.backend {
            h.reserve(cap);
        }
        q
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Heap(_) => QueueBackend::Heap,
            Backend::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(w) => w.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = QueuedEvent { at, seq, payload };
        match &mut self.backend {
            Backend::Heap(h) => h.push(ev),
            Backend::Calendar(w) => w.push(ev, self.now),
        }
    }

    /// Schedule `payload` at `now + delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| e.at),
            Backend::Calendar(w) => w.peek(),
        }
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        let ev = match &mut self.backend {
            Backend::Heap(h) => h.pop()?,
            Backend::Calendar(w) => w.pop()?,
        };
        debug_assert!(ev.at >= self.now, "event queue time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the earliest event only if it is due at or before `deadline`.
    /// Used for epoch-bounded simulation (the online correction loop).
    #[inline]
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<QueuedEvent<E>> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Advance `now` directly (e.g. to a barrier or epoch boundary with
    /// no event exactly on it). Never moves time backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Drop all pending events and reset the clock. Sequence numbers are
    /// *not* reset, so replaying after a drain still has unique seqs.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(w) => w.clear(),
        }
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StreamRng;

    fn both() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_backend(QueueBackend::Heap),
            EventQueue::with_backend(QueueBackend::Calendar),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::with_backend(QueueBackend::Heap),
            EventQueue::with_backend(QueueBackend::Calendar),
        ] {
            q.schedule(SimTime::from_ps(30), "c");
            q.schedule(SimTime::from_ps(10), "a");
            q.schedule(SimTime::from_ps(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn ties_break_fifo() {
        for mut q in both() {
            for i in 0..100 {
                q.schedule(SimTime::from_ps(5), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        for mut q in both() {
            q.schedule(SimTime::from_ps(42), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_ps(42));
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        for mut q in both() {
            q.schedule(SimTime::from_ps(10), 1);
            q.pop();
            q.schedule_in(SimTime::from_ps(5), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_ps(15)));
        }
    }

    #[test]
    fn pop_before_respects_deadline() {
        for mut q in both() {
            q.schedule(SimTime::from_ps(10), 1);
            q.schedule(SimTime::from_ps(20), 2);
            assert_eq!(
                q.pop_before(SimTime::from_ps(15)).map(|e| e.payload),
                Some(1)
            );
            assert!(q.pop_before(SimTime::from_ps(15)).is_none());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn advance_to_is_monotone() {
        for mut q in both() {
            q.advance_to(SimTime::from_ps(100));
            assert_eq!(q.now(), SimTime::from_ps(100));
            q.advance_to(SimTime::from_ps(50));
            assert_eq!(q.now(), SimTime::from_ps(100));
        }
    }

    #[test]
    fn clear_resets_clock_but_not_seq() {
        for mut q in both() {
            q.schedule(SimTime::from_ps(10), 1);
            q.pop();
            q.clear();
            assert_eq!(q.now(), SimTime::ZERO);
            assert!(q.is_empty());
            q.schedule(SimTime::from_ps(1), 2);
            let e = q.pop().unwrap();
            assert!(e.seq >= 1, "sequence numbers must stay unique across clear");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), ());
        q.pop();
        q.schedule(SimTime::from_ps(5), ());
    }

    /// Drive both backends through an identical randomized schedule of
    /// interleaved pushes and pops and require byte-identical pop
    /// sequences — including `(at, seq)` of every event. Heavy bursts of
    /// same-timestamp events exercise the FIFO tiebreak; occasional
    /// far-future times exercise the overflow heap; tight loops around
    /// `now` exercise cursor advancement.
    #[test]
    fn calendar_matches_heap_order_under_random_bursts() {
        for round in 0..20u64 {
            let mut rng = StreamRng::new(0xE7E_u64 ^ round);
            let mut heap = EventQueue::with_backend(QueueBackend::Heap);
            let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
            let mut payload = 0u64;
            for _ in 0..400 {
                match rng.next_u64() % 4 {
                    // Burst of same-timestamp events.
                    0 => {
                        let t = heap.now().as_ps() + rng.next_u64() % 5_000;
                        let burst = 1 + rng.next_u64() % 12;
                        for _ in 0..burst {
                            let at = SimTime::from_ps(t);
                            heap.schedule(at, payload);
                            cal.schedule(at, payload);
                            payload += 1;
                        }
                    }
                    // Far-future event (overflow path).
                    1 => {
                        let at = SimTime::from_ps(
                            heap.now().as_ps() + 1_000_000 + rng.next_u64() % 1_000_000,
                        );
                        heap.schedule(at, payload);
                        cal.schedule(at, payload);
                        payload += 1;
                    }
                    // Near-term event.
                    2 => {
                        let at = SimTime::from_ps(heap.now().as_ps() + rng.next_u64() % 200);
                        heap.schedule(at, payload);
                        cal.schedule(at, payload);
                        payload += 1;
                    }
                    // Pop a few.
                    _ => {
                        for _ in 0..(1 + rng.next_u64() % 6) {
                            let a = heap.pop();
                            let b = cal.pop();
                            match (a, b) {
                                (None, None) => {}
                                (Some(x), Some(y)) => {
                                    assert_eq!((x.at, x.seq, x.payload), (y.at, y.seq, y.payload));
                                    assert_eq!(heap.now(), cal.now());
                                }
                                (x, y) => panic!("backends disagree on emptiness: {x:?} vs {y:?}"),
                            }
                        }
                    }
                }
                assert_eq!(heap.len(), cal.len());
                assert_eq!(heap.peek_time(), cal.peek_time());
            }
            // Drain fully: remaining order must match exactly.
            loop {
                match (heap.pop(), cal.pop()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at, x.seq, x.payload), (y.at, y.seq, y.payload))
                    }
                    (x, y) => panic!("drain length mismatch: {x:?} vs {y:?}"),
                }
            }
        }
    }
}
