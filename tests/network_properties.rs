//! Property-based tests of the interconnect simulators: conservation,
//! causality, determinism and routing sanity under random traffic.

use proptest::prelude::*;
use sctm::{NetworkKind, SystemConfig};
use sctm_engine::net::{Message, MsgClass, MsgId, NetworkModel, NodeId};
use sctm_engine::rng::StreamRng;
use sctm_engine::time::SimTime;
use sctm_enoc::{NocConfig, NocSim, Routing, Topology};

fn random_traffic(nodes: usize, count: usize, seed: u64) -> Vec<(SimTime, Message)> {
    let mut rng = StreamRng::new(seed);
    (0..count as u64)
        .map(|i| {
            let src = rng.below(nodes as u64) as u32;
            let dst = rng.below(nodes as u64) as u32;
            let data = rng.chance(0.5);
            (
                SimTime::from_ns(rng.below(2_000)),
                Message {
                    id: MsgId(i),
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: if data {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    },
                    bytes: if data { 72 } else { 8 },
                },
            )
        })
        .collect()
}

fn run(net: &mut dyn NetworkModel, msgs: &[(SimTime, Message)]) -> Vec<(u64, u64)> {
    for &(t, m) in msgs {
        net.inject(t, m);
    }
    let mut out = Vec::new();
    net.drain(&mut out);
    out.iter()
        .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Every injected message is delivered exactly once, with positive
    /// latency, on every interconnect.
    #[test]
    fn conservation_and_causality(
        seed in 1u64..10_000,
        count in 100usize..600,
    ) {
        let msgs = random_traffic(16, count, seed);
        for kind in [NetworkKind::Emesh, NetworkKind::Omesh, NetworkKind::Oxbar, NetworkKind::Analytic] {
            let mut net = SystemConfig::make_network_kind(4, kind);
            for &(t, m) in &msgs {
                net.inject(t, m);
            }
            let mut out = Vec::new();
            net.drain(&mut out);
            prop_assert_eq!(out.len(), msgs.len(), "{} lost messages", kind.label());
            let mut ids: Vec<u64> = out.iter().map(|d| d.msg.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), msgs.len(), "{} duplicated messages", kind.label());
            for d in &out {
                prop_assert!(
                    d.delivered_at > d.injected_at,
                    "{}: msg {:?} delivered instantaneously",
                    kind.label(), d.msg.id
                );
            }
            prop_assert_eq!(net.stats().in_flight(), 0);
        }
    }

    /// Bit-identical behaviour across repeated runs (the determinism
    /// contract that makes A/B simulator comparisons meaningful).
    #[test]
    fn networks_are_deterministic(seed in 1u64..10_000) {
        let msgs = random_traffic(16, 300, seed);
        for kind in [NetworkKind::Emesh, NetworkKind::Omesh, NetworkKind::Oxbar] {
            let mut a = SystemConfig::make_network_kind(4, kind);
            let mut b = SystemConfig::make_network_kind(4, kind);
            prop_assert_eq!(run(a.as_mut(), &msgs), run(b.as_mut(), &msgs), "{}", kind.label());
        }
    }

    /// On the electrical mesh, every routing algorithm delivers all
    /// traffic (deadlock freedom smoke) and XY is deterministic-minimal:
    /// zero-load latency grows with hop distance.
    #[test]
    fn emesh_routing_algorithms_deliver(
        seed in 1u64..10_000,
        routing in prop_oneof![Just(Routing::XY), Just(Routing::YX), Just(Routing::OddEven)],
    ) {
        let msgs = random_traffic(16, 300, seed);
        let mut net = NocSim::new(NocConfig {
            topology: Topology::mesh(4, 4),
            routing,
            ..NocConfig::default()
        });
        let delivered = run(&mut net, &msgs);
        prop_assert_eq!(delivered.len(), msgs.len(), "{:?} lost traffic", routing);
    }

    /// Torus wraparound must never be slower than the mesh for
    /// edge-to-edge traffic (it has strictly more paths).
    #[test]
    fn torus_not_slower_than_mesh_for_ring_traffic(seed in 1u64..1000) {
        let mut rng = StreamRng::new(seed);
        let row = rng.below(4) as u32 * 4;
        let msg = Message {
            id: MsgId(0),
            src: NodeId(row),
            dst: NodeId(row + 3),
            class: MsgClass::Control,
            bytes: 8,
        };
        let lat = |topology: Topology| {
            let mut net = NocSim::new(NocConfig { topology, ..NocConfig::default() });
            net.inject(SimTime::ZERO, msg);
            let mut out = Vec::new();
            net.drain(&mut out);
            out[0].latency()
        };
        let mesh = lat(Topology::mesh(4, 4));
        let torus = lat(Topology::torus(4, 4));
        prop_assert!(torus <= mesh, "torus {torus} slower than mesh {mesh}");
    }
}

#[test]
fn saturation_behaviour_is_sane_on_all_networks() {
    // Slam each network with far more traffic than it can drain at
    // once; nothing may be lost, and the makespan must exceed the
    // serialisation bound.
    for kind in NetworkKind::DETAILED {
        let msgs: Vec<(SimTime, Message)> = (0..1000u64)
            .map(|i| {
                (
                    SimTime::ZERO,
                    Message {
                        id: MsgId(i),
                        src: NodeId((i % 15 + 1) as u32),
                        dst: NodeId(0), // hotspot
                        class: MsgClass::Data,
                        bytes: 72,
                    },
                )
            })
            .collect();
        let mut net = SystemConfig::make_network_kind(4, kind);
        let delivered = run(net.as_mut(), &msgs);
        assert_eq!(delivered.len(), 1000, "{}", kind.label());
        let makespan = delivered.iter().map(|&(_, t)| t).max().unwrap();
        // Serialisation bound at the single reader: even the fastest
        // architecture (the crossbar at 640 Gb/s) needs ≥ 900 ps per
        // 72-byte message ⇒ ≥ 0.9 µs for 1000 of them.
        assert!(
            makespan > SimTime::from_ns(850).as_ps(),
            "{}: 1000 hotspot cache lines drained implausibly fast ({makespan} ps)",
            kind.label()
        );
    }
}
