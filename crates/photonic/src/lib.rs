//! # sctm-photonic — photonic device substrate (DSENT-lite)
//!
//! Device-level models for the optical networks in `sctm-onoc`:
//! waveguides, microring resonators, photodetectors and lasers, composed
//! into per-path insertion-loss budgets, laser-power requirements and
//! energy-per-bit breakdowns. This is the stand-in for the DSENT-class
//! photonic power/timing tool the original evaluation flow would have
//! used (see DESIGN.md §5).
//!
//! * [`devices`] — component parameter sets and unit conversions.
//! * [`link`] — path inventories, insertion loss, laser solver, power
//!   breakdown (experiment E7).
//! * [`wdm`] — DWDM channel plans and burst serialisation timing used by
//!   the network simulators.

pub mod devices;
pub mod link;
pub mod wdm;

pub use devices::{dbm_to_mw, mw_to_dbm, DeviceKit, Laser, Microring, Photodetector, Waveguide};
pub use link::{LinkBudget, OpticalPath, PowerBreakdown};
pub use wdm::ChannelPlan;
