//! Deterministic pending-event set.
//!
//! A thin wrapper around `BinaryHeap` that delivers events in
//! `(timestamp, insertion sequence)` order. The sequence tiebreak is what
//! makes whole-simulation determinism possible: `BinaryHeap` alone is
//! not stable, so two events scheduled for the same picosecond could pop
//! in either order depending on heap shape, and any RNG draw or stats
//! update downstream of that order would diverge between runs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at a point in simulated time.
#[derive(Debug, Clone)]
pub struct QueuedEvent<E> {
    pub at: SimTime,
    pub seq: u64,
    pub payload: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

// Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue of timestamped events with FIFO tiebreak.
///
/// Also tracks the current simulation time (`now`), which advances
/// monotonically as events are popped. Scheduling into the past is a
/// model bug and panics in debug builds; in release it is clamped to
/// `now` (the least-wrong recovery, and cheaper than a branch miss on a
/// cold error path).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, payload });
    }

    /// Schedule `payload` at `now + delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "event queue time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the earliest event only if it is due at or before `deadline`.
    /// Used for epoch-bounded simulation (the online correction loop).
    #[inline]
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<QueuedEvent<E>> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Advance `now` directly (e.g. to a barrier or epoch boundary with
    /// no event exactly on it). Never moves time backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Drop all pending events and reset the clock. Sequence numbers are
    /// *not* reset, so replaying after a drain still has unique seqs.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(30), "c");
        q.schedule(SimTime::from_ps(10), "a");
        q.schedule(SimTime::from_ps(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ps(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ps(42));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), 1);
        q.pop();
        q.schedule_in(SimTime::from_ps(5), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(15)));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), 1);
        q.schedule(SimTime::from_ps(20), 2);
        assert_eq!(
            q.pop_before(SimTime::from_ps(15)).map(|e| e.payload),
            Some(1)
        );
        assert_eq!(q.pop_before(SimTime::from_ps(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_ps(100));
        assert_eq!(q.now(), SimTime::from_ps(100));
        q.advance_to(SimTime::from_ps(50));
        assert_eq!(q.now(), SimTime::from_ps(100));
    }

    #[test]
    fn clear_resets_clock_but_not_seq() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), 1);
        q.pop();
        q.clear();
        assert_eq!(q.now(), SimTime::ZERO);
        assert!(q.is_empty());
        q.schedule(SimTime::from_ps(1), 2);
        let e = q.pop().unwrap();
        assert!(e.seq >= 1, "sequence numbers must stay unique across clear");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), ());
        q.pop();
        q.schedule(SimTime::from_ps(5), ());
    }
}
