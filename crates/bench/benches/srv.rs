//! Wall-time value of the `sctmd` capture cache: a network-config
//! sweep over one workload served cold (capture per request, cache
//! disabled by distinct seeds) vs warm (one shared capture), plus the
//! protocol overhead floor (parse + respond on a cached run).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_srv::{parse_request, Request, RunRequest, Server, ServerConfig};

const NETS: [&str; 5] = ["emesh", "omesh", "oxbar", "hybrid", "obus"];

fn run_req(line: &str) -> RunRequest {
    match parse_request(line).expect("parse") {
        Request::Run(r) => *r,
        other => panic!("expected run, got {other:?}"),
    }
}

fn sweep(server: &Server, seed_per_request: bool) -> usize {
    let mut ok = 0;
    for (i, net) in NETS.iter().cycle().take(10).enumerate() {
        // Distinct seeds defeat the content addressing, forcing the
        // cold path; a fixed seed shares one capture across the sweep.
        let seed = if seed_per_request { i as u64 + 1 } else { 1 };
        let req = run_req(&format!(
            "run kernel=fft net={net} side=4 ops=300 seed={seed} mode=sctm iters=2 replay=1 id=b{i}"
        ));
        let line = server.submit_blocking(req);
        assert!(line.contains(r#""status":"ok""#), "{line}");
        ok += 1;
    }
    ok
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("srv_sweep_fft16_10req");
    g.bench_function(BenchmarkId::from_parameter("cold_capture_each"), |b| {
        b.iter(|| {
            let server = Server::start(ServerConfig::default());
            black_box(sweep(&server, true))
        })
    });
    g.bench_function(BenchmarkId::from_parameter("warm_shared_capture"), |b| {
        // One capture outside the timed region; every request hits.
        let server = Server::start(ServerConfig::default());
        sweep(&server, false);
        b.iter(|| black_box(sweep(&server, false)))
    });
    g.finish();
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("srv_overhead");
    g.bench_function(BenchmarkId::from_parameter("parse_request"), |b| {
        b.iter(|| {
            black_box(parse_request(
                "run kernel=fft net=oxbar side=4 ops=600 seed=3 mode=sctm iters=4 \
                 damping=0.5 epsilon=0.05 replay=1 id=r1 timeout_ms=5000",
            ))
        })
    });
    g.bench_function(
        BenchmarkId::from_parameter("cached_replay_roundtrip"),
        |b| {
            let server = Server::start(ServerConfig::default());
            let req = run_req("run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=o");
            server.submit_blocking(req.clone()); // prime the cache
            b.iter(|| black_box(server.submit_blocking(req.clone())))
        },
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep, bench_overhead
}
criterion_main!(benches);
