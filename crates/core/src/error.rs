//! The workspace-level error type.
//!
//! Everything a caller can get wrong when *describing* a simulation —
//! an unknown kernel name, a system size outside the simulable
//! envelope, a malformed trace file, a contradictory [`crate::RunSpec`]
//! — surfaces as one [`SctmError`] instead of a panic, so long-running
//! callers (`sctmd`, sweep harnesses) can reject one bad request and
//! keep serving the rest. Logic errors *inside* an accepted simulation
//! still panic: those are bugs, not inputs.

use sctm_trace::persist::TraceError;

/// Why a simulation request could not be run.
#[derive(Clone, Debug, PartialEq)]
pub enum SctmError {
    /// A [`crate::RunSpec`] field combination `execute` cannot honour
    /// (zero iteration cap, damping outside `[0, 1]`, profiling a mode
    /// that produces no trace, seeding a mode that consumes none...).
    InvalidSpec(String),
    /// System parameters outside the simulable envelope (zero-sized
    /// mesh, more cores than the renumbering tables can index).
    InvalidConfig(String),
    /// No workload kernel with this label ([`crate::kernel_from_label`]).
    UnknownKernel(String),
    /// No interconnect with this label
    /// ([`crate::NetworkKind::from_label`]).
    UnknownNetwork(String),
    /// Trace ingestion failed (absorbs [`TraceError`] from the CSV
    /// round-trip, file I/O included).
    Trace(TraceError),
    /// A budgeted replay exhausted its batch budget before every
    /// message was delivered — the congestion-collapse guard for
    /// open-loop (classic) replay of a saturated network
    /// ([`crate::RunSpec::with_replay_budget`]). Carries the budget
    /// that was spent.
    BudgetExhausted { batches: u64 },
    /// A host I/O failure around the simulation proper (request log,
    /// socket plumbing in `sctmd`). Carries the OS error text —
    /// `std::io::Error` itself is neither `Clone` nor `PartialEq`,
    /// which this enum is.
    Io(String),
}

impl std::fmt::Display for SctmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SctmError::InvalidSpec(e) => write!(f, "invalid run spec: {e}"),
            SctmError::InvalidConfig(e) => write!(f, "invalid system config: {e}"),
            SctmError::UnknownKernel(k) => write!(f, "unknown kernel {k:?}"),
            SctmError::UnknownNetwork(n) => write!(f, "unknown network {n:?}"),
            SctmError::Trace(e) => write!(f, "trace ingestion: {e}"),
            SctmError::BudgetExhausted { batches } => write!(
                f,
                "replay exhausted its batch budget ({batches} batches) before all \
                 messages delivered — the network is past its saturation point"
            ),
            SctmError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for SctmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SctmError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SctmError {
    fn from(e: TraceError) -> Self {
        SctmError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let cases: [(SctmError, &str); 7] = [
            (SctmError::InvalidSpec("x".into()), "invalid run spec"),
            (
                SctmError::InvalidConfig("y".into()),
                "invalid system config",
            ),
            (SctmError::UnknownKernel("fft9".into()), "unknown kernel"),
            (SctmError::UnknownNetwork("warp".into()), "unknown network"),
            (SctmError::Trace(TraceError::BadMagic), "trace ingestion"),
            (
                SctmError::BudgetExhausted { batches: 10_000 },
                "batch budget",
            ),
            (SctmError::Io("disk full".into()), "i/o"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn trace_errors_absorb_with_source() {
        use std::error::Error as _;
        let e: SctmError = TraceError::Truncated { line: 7 }.into();
        assert_eq!(e, SctmError::Trace(TraceError::Truncated { line: 7 }));
        assert!(e.source().is_some(), "wrapped trace error keeps its source");
    }
}
