//! The nine reconstructed experiments (DESIGN.md §4).

use crate::{par_map, Scale};
use sctm_core::trace::TraceLog;
use sctm_core::{accuracy, Experiment, NetworkKind, RunReport, RunSpec, SystemConfig};
use sctm_engine::net::AnalyticNetwork;
use sctm_engine::table::{fnum, Table};
use sctm_engine::time::SimTime;
use sctm_enoc::{NocConfig, NocSim, Pattern, Routing, Topology, TrafficConfig, TrafficRunner};
use sctm_onoc::{
    HybridConfig, HybridSim, ObusConfig, ObusSim, OmeshConfig, OmeshSim, OxbarConfig, OxbarSim,
};
use sctm_workloads::Kernel;

fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

fn go(e: &Experiment, spec: &RunSpec) -> RunReport {
    e.execute(spec).expect("valid spec").report
}

/// Replay `log` once in the given mode; with `wall0`, fold the shared
/// capture's wall time into the report (the old `run_with_trace`
/// contract the tables were written against).
fn replay(
    e: &Experiment,
    log: &TraceLog,
    spec: RunSpec,
    wall0: Option<std::time::Instant>,
) -> RunReport {
    let mut r = e
        .execute_seeded(&spec.replay_only(), Some(log))
        .expect("valid spec")
        .report;
    if let Some(w) = wall0 {
        r.wall = w.elapsed();
    }
    r
}

fn flagship(scale: Scale, kind: NetworkKind) -> Experiment {
    Experiment::new(SystemConfig::new(scale.side(), kind), Kernel::Fft).with_ops(scale.ops())
}

/// E1 — simulated system configuration (paper's Table 1 analogue).
pub fn e1_configuration(scale: Scale) -> Table {
    SystemConfig::new(scale.side(), NetworkKind::Omesh).config_table()
}

/// E2 — the headline case study: a real application on the ONoC,
/// simulated execution-driven vs with the self-correction trace model,
/// against the baseline electrical NoC simulator.
pub fn e2_case_study(scale: Scale) -> Table {
    let omesh = flagship(scale, NetworkKind::Omesh);
    let emesh = flagship(scale, NetworkKind::Emesh);

    // Independent runs in parallel; trace modes share one capture.
    let mut results = par_map::<(&'static str, RunReport), _>(vec![
        {
            let e = omesh.clone();
            Box::new(move || ("exec-driven (reference)", go(&e, &RunSpec::exec_driven())))
                as Box<dyn FnOnce() -> (&'static str, RunReport) + Send>
        },
        {
            let e = omesh.clone();
            Box::new(move || {
                (
                    "self-correction trace",
                    go(&e, &RunSpec::self_correction(4)),
                )
            })
        },
        {
            let e = omesh.clone();
            Box::new(move || {
                let wall0 = std::time::Instant::now();
                let log = e.capture();
                let classic = replay(&e, &log, RunSpec::classic(), Some(wall0));
                ("classic trace", classic)
            })
        },
        {
            let e = omesh.clone();
            Box::new(move || {
                let wall0 = std::time::Instant::now();
                let log = e.capture();
                (
                    "oracle trace",
                    replay(&e, &log, RunSpec::oracle(), Some(wall0)),
                )
            })
        },
        {
            let e = emesh;
            Box::new(move || {
                (
                    "baseline NoC simulator (emesh)",
                    go(&e, &RunSpec::exec_driven()),
                )
            })
        },
    ]);
    let reference = results[0].1.clone();

    let mut t = Table::new(
        format!(
            "E2 — Case study: fft on {}-core photonic mesh (precision & simulation time)",
            scale.side() * scale.side()
        ),
        &[
            "simulator",
            "network",
            "exec time",
            "data lat (ns)",
            "exec err %",
            "wall (ms)",
            "wall vs ref",
        ],
    );
    for (name, r) in results.drain(..) {
        let a = accuracy(&r, &reference);
        let err = if r.network == reference.network {
            format!("{:.1}", a.exec_time_err_pct)
        } else {
            "n/a (different network)".into()
        };
        t.row(&[
            name.to_string(),
            r.network.to_string(),
            r.exec_time.to_string(),
            fnum(r.mean_lat_data_ns),
            err,
            ms(r.wall),
            format!("{:.2}x", a.wall_ratio),
        ]);
    }
    t
}

/// E3 — accuracy per application and optical architecture.
pub fn e3_accuracy_per_application(scale: Scale) -> Table {
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for kernel in Kernel::ALL {
        for kind in [NetworkKind::Omesh, NetworkKind::Oxbar] {
            jobs.push(Box::new(move || {
                let e = Experiment::new(SystemConfig::new(scale.side(), kind), kernel)
                    .with_ops(scale.ops());
                let reference = go(&e, &RunSpec::exec_driven());
                let log = e.capture();
                let classic = replay(&e, &log, RunSpec::classic(), None);
                let oracle = replay(&e, &log, RunSpec::oracle(), None);
                let sctm = go(&e, &RunSpec::self_correction(4));
                let iters = sctm.iterations.as_ref().map(|v| v.len()).unwrap_or(0);
                vec![
                    kernel.label().to_string(),
                    kind.label().to_string(),
                    fnum(accuracy(&classic, &reference).exec_time_err_pct),
                    fnum(accuracy(&sctm, &reference).exec_time_err_pct),
                    fnum(accuracy(&oracle, &reference).exec_time_err_pct),
                    iters.to_string(),
                ]
            }));
        }
    }
    let rows = par_map(jobs);
    let mut t = Table::new(
        "E3 — Execution-time error vs execution-driven reference (%)",
        &[
            "application",
            "network",
            "classic trace",
            "self-correction",
            "oracle",
            "sctm iters",
        ],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// E4 — convergence of the self-correction loop.
pub fn e4_convergence(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4 — Self-correction convergence (fft)",
        &[
            "network",
            "iteration",
            "est exec time",
            "drift",
            "err vs exec-driven %",
        ],
    );
    let rows = par_map::<Vec<Vec<String>>, _>(
        [NetworkKind::Omesh, NetworkKind::Oxbar]
            .into_iter()
            .map(|kind| {
                Box::new(move || {
                    let e = flagship(scale, kind);
                    let reference = go(&e, &RunSpec::exec_driven());
                    let sctm = go(&e, &RunSpec::self_correction(6));
                    sctm.iterations
                        .as_ref()
                        .unwrap()
                        .iter()
                        .map(|it| {
                            let err = sctm_engine::stats::rel_err_pct(
                                it.est_exec_time.as_ps() as f64,
                                reference.exec_time.as_ps() as f64,
                            );
                            vec![
                                kind.label().to_string(),
                                it.iteration.to_string(),
                                it.est_exec_time.to_string(),
                                it.drift.to_string(),
                                fnum(err),
                            ]
                        })
                        .collect()
                }) as Box<dyn FnOnce() -> Vec<Vec<String>> + Send>
            })
            .collect(),
    );
    for group in rows {
        for r in group {
            t.row(&r);
        }
    }
    t
}

/// E5 — simulation wall time vs core count, per simulation mode.
pub fn e5_simulation_time_scaling(scale: Scale) -> Table {
    let sides: &[usize] = match scale {
        Scale::Quick => &[2, 4],
        Scale::Full => &[4, 8, 16],
    };
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for &side in sides {
        for kind in [NetworkKind::Omesh, NetworkKind::Emesh] {
            jobs.push(Box::new(move || {
                let ops = scale.ops();
                let e = Experiment::new(SystemConfig::new(side, kind), Kernel::Fft).with_ops(ops);
                let exec = go(&e, &RunSpec::exec_driven());
                let sctm = go(&e, &RunSpec::self_correction(3));
                let wall0 = std::time::Instant::now();
                let log = e.capture();
                let classic = replay(&e, &log, RunSpec::classic(), Some(wall0));
                vec![
                    format!("{}", side * side),
                    kind.label().to_string(),
                    ms(exec.wall),
                    ms(sctm.wall),
                    ms(classic.wall),
                    format!("{:.2}x", sctm.wall.as_secs_f64() / exec.wall.as_secs_f64()),
                ]
            }));
        }
    }
    let rows = par_map(jobs);
    let mut t = Table::new(
        "E5 — Simulation wall time vs core count and target network (fft, ms)",
        &[
            "cores",
            "target",
            "exec-driven",
            "sctm loop",
            "classic trace",
            "sctm/exec ratio",
        ],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// E6 — open-loop load-latency curves for all three networks.
pub fn e6_load_latency(scale: Scale) -> Table {
    let side = scale.side();
    let rates: &[f64] = match scale {
        Scale::Quick => &[0.01, 0.04],
        Scale::Full => &[0.005, 0.01, 0.02, 0.04, 0.08],
    };
    let patterns = [
        Pattern::Uniform,
        Pattern::Hotspot { node: 0, frac: 0.3 },
        Pattern::Transpose,
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for kind in NetworkKind::DETAILED {
        for pattern in patterns {
            for &rate in rates {
                jobs.push(Box::new(move || {
                    let mut net = SystemConfig::make_network_kind(side, kind);
                    let cfg = TrafficConfig {
                        pattern,
                        msg_rate: rate,
                        warmup: SimTime::from_us(2),
                        measure: SimTime::from_us(8),
                        ..TrafficConfig::default()
                    };
                    let p = TrafficRunner::new(cfg).run(net.as_mut(), side);
                    vec![
                        kind.label().to_string(),
                        pattern.label().to_string(),
                        fnum(rate),
                        fnum(p.avg_latency_ns),
                        fnum(p.p99_latency_ns),
                        fnum(p.delivered_frac),
                        fnum(p.throughput),
                    ]
                }));
            }
        }
    }
    let rows = par_map(jobs);
    let mut t = Table::new(
        format!("E6 — Load-latency, {side}x{side} networks (synthetic traffic)"),
        &[
            "network",
            "pattern",
            "rate (msg/node/cyc)",
            "avg lat (ns)",
            "p99 (ns)",
            "delivered",
            "throughput",
        ],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// E7 — optical loss budget and power breakdown (DSENT-style table).
pub fn e7_power_budget(scale: Scale) -> Table {
    let side = scale.side();
    let omesh = OmeshConfig::new(side).budget();
    let oxbar = OxbarConfig::new(side).budget();
    let util = 0.1;
    let mut t = Table::new(
        format!(
            "E7 — Optical power at {}-core scale (10% utilisation)",
            side * side
        ),
        &[
            "architecture",
            "worst loss (dB)",
            "laser (mW)",
            "trim (mW)",
            "modulate (mW)",
            "receive (mW)",
            "total (mW)",
            "pJ/bit",
            "peak Gb/s",
        ],
    );
    let obus = ObusConfig::new(side).budget();
    for (name, b) in [
        ("photonic mesh", omesh),
        ("MWSR crossbar", oxbar),
        ("SWMR broadcast bus", obus),
    ] {
        let p = b.power(util);
        t.row(&[
            name.to_string(),
            fnum(b.worst_loss_db()),
            fnum(p.laser_mw),
            fnum(p.trimming_mw),
            fnum(p.modulation_mw),
            fnum(p.receiver_mw),
            fnum(p.total_mw()),
            fnum(p.pj_per_bit(b.peak_gbps() * util)),
            fnum(b.peak_gbps()),
        ]);
    }
    t
}

/// E8 — sensitivity to the fidelity of the capture model: scale the
/// analytic model's per-hop latency away from truth and watch the
/// classic trace break while self-correction holds.
pub fn e8_capture_model_sensitivity(scale: Scale) -> Table {
    let factors: &[f64] = match scale {
        Scale::Quick => &[0.25, 1.0, 4.0],
        Scale::Full => &[0.25, 0.5, 1.0, 2.0, 4.0],
    };
    let side = scale.side();
    let e = flagship(scale, NetworkKind::Omesh);
    let reference = go(&e, &RunSpec::exec_driven());
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for &f in factors {
        let e = e.clone();
        let reference = reference.clone();
        jobs.push(Box::new(move || {
            let nodes = side * side;
            let model = AnalyticNetwork::new(
                nodes,
                SimTime::from_ns(8),
                SimTime::from_ps((1_500.0 * f) as u64),
                (60.0 * f) as u64,
            );
            let log = e.capture_on(model);
            let classic = replay(&e, &log, RunSpec::classic(), None);
            let pass = replay(&e, &log, RunSpec::self_correction(1), None);
            vec![
                format!("{f}x"),
                fnum(accuracy(&classic, &reference).exec_time_err_pct),
                fnum(accuracy(&pass, &reference).exec_time_err_pct),
            ]
        }));
    }
    let rows = par_map(jobs);
    let mut t = Table::new(
        "E8 — Error vs capture-model fidelity (fft on photonic mesh, %)",
        &[
            "capture model speed error",
            "classic trace err %",
            "sctm single-pass err %",
        ],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// E9 — online epoch-based correction: error and cost vs epoch length.
pub fn e9_online_correction(scale: Scale) -> Table {
    let epochs_us: &[u64] = match scale {
        Scale::Quick => &[2, 10],
        Scale::Full => &[1, 2, 5, 10, 20],
    };
    let e = flagship(scale, NetworkKind::Omesh);
    let reference = go(&e, &RunSpec::exec_driven());
    let offline = go(&e, &RunSpec::self_correction(4));
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for &us in epochs_us {
        let e = e.clone();
        let reference = reference.clone();
        jobs.push(Box::new(move || {
            let r = go(&e, &RunSpec::online(SimTime::from_us(us)));
            vec![
                format!("online, {us} us epochs"),
                fnum(accuracy(&r, &reference).exec_time_err_pct),
                ms(r.wall),
            ]
        }));
    }
    let mut rows = par_map(jobs);
    rows.push(vec![
        "offline self-correction".into(),
        fnum(accuracy(&offline, &reference).exec_time_err_pct),
        ms(offline.wall),
    ]);
    rows.push(vec![
        "exec-driven (reference)".into(),
        "0".into(),
        ms(reference.wall),
    ]);
    let mut t = Table::new(
        "E9 — Online epoch correction vs offline SCTM (fft on photonic mesh)",
        &["mode", "exec err %", "wall (ms)"],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// E10 — message-latency distributions per interconnect under the case
/// study workload (extension figure: the *shape* of latency, not just
/// its mean, plus where each core's time actually goes).
pub fn e10_latency_distribution(scale: Scale) -> Table {
    use sctm_cmp::{CmpConfig, CmpSim, NullHook};
    use sctm_workloads::{build, WorkloadParams};
    let side = scale.side();
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for kind in NetworkKind::DETAILED {
        jobs.push(Box::new(move || {
            let w = build(
                Kernel::Fft,
                WorkloadParams::new(side * side, scale.ops(), 1),
            );
            let cfg = CmpConfig::tiled(side);
            let net = SystemConfig::make_network_kind(side, kind);
            let mut sim = CmpSim::new(cfg, net, Box::new(w));
            let r = sim.run(&mut NullHook);
            let s = sim.network().stats();
            vec![
                kind.label().to_string(),
                format!("{:.1}", s.ctrl_latency_ps.p50() as f64 / 1000.0),
                format!("{:.1}", s.ctrl_latency_ps.p99() as f64 / 1000.0),
                format!("{:.1}", s.data_latency_ps.p50() as f64 / 1000.0),
                format!("{:.1}", s.data_latency_ps.p99() as f64 / 1000.0),
                r.exec_time.to_string(),
                format!("{:.0}%", r.wait_fill_frac * 100.0),
                format!("{:.0}%", r.wait_barrier_frac * 100.0),
            ]
        }));
    }
    let rows = par_map(jobs);
    let mut t = Table::new(
        format!(
            "E10 — Latency distribution & core-time breakdown (fft, {} cores)",
            side * side
        ),
        &[
            "network",
            "ctrl p50 (ns)",
            "ctrl p99 (ns)",
            "data p50 (ns)",
            "data p99 (ns)",
            "exec time",
            "fill wait",
            "barrier wait",
        ],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// Knobs of the self-correction loop exercised by the A1 ablation.
#[derive(Clone, Copy, Debug)]
pub struct LoopOptions {
    /// Enforce per-source capture order on gated departures.
    pub ordered: bool,
    /// Correct control and data flows separately.
    pub class_aware: bool,
    /// Damp correction updates (EWMA 0.5) across iterations.
    pub damped: bool,
    /// Learn per-destination ejection serialisation.
    pub learn_service: bool,
}

impl LoopOptions {
    /// The production loop's choices (as in `Mode::SelfCorrection`).
    pub const FULL: LoopOptions = LoopOptions {
        ordered: false,
        class_aware: true,
        damped: true,
        learn_service: false,
    };
}

/// Re-implementation of the self-correction loop with policy switches,
/// over the public API (the production loop lives in `sctm-core`; this
/// exists so the ablation can turn individual choices off).
pub fn sctm_loop_with(e: &Experiment, opts: LoopOptions, iters: usize) -> SimTime {
    use sctm_engine::net::{MsgClass, NodeId};
    use sctm_trace::replay::{
        dst_service_estimates, pair_corrections, replay_sctm_pass, replay_sctm_pass_ordered,
    };
    let side = e.system.side;
    let kind = e.system.network;
    let mut model = SystemConfig::analytic(side * side);
    let mut est = SimTime::ZERO;
    for _ in 0..iters {
        let log = e.capture_on(model.clone());
        let mut net = SystemConfig::make_network_kind(side, kind);
        let result = if opts.ordered {
            replay_sctm_pass_ordered(&log, net.as_mut())
        } else {
            replay_sctm_pass(&log, net.as_mut())
        };
        est = result.est_exec_time;
        let corr = pair_corrections(&log, &result, |m| model.base_latency(m));
        if opts.class_aware {
            for &((s, d, class), f, _) in &corr {
                let old = model.correction(NodeId(s), NodeId(d), class);
                let f = if opts.damped { 0.5 * old + 0.5 * f } else { f };
                model.set_correction(NodeId(s), NodeId(d), class, f);
            }
        } else {
            // Merge the two classes into one per-pair factor.
            let mut merged: std::collections::HashMap<(u32, u32), (f64, u32)> =
                std::collections::HashMap::new();
            for &((s, d, _), f, _) in &corr {
                let e = merged.entry((s, d)).or_insert((0.0, 0));
                e.0 += f;
                e.1 += 1;
            }
            for ((s, d), (sum, n)) in merged {
                let f = sum / n as f64;
                for class in [MsgClass::Control, MsgClass::Data] {
                    let old = model.correction(NodeId(s), NodeId(d), class);
                    let f = if opts.damped { 0.5 * old + 0.5 * f } else { f };
                    model.set_correction(NodeId(s), NodeId(d), class, f);
                }
            }
        }
        if opts.learn_service {
            for &(dst, ps) in &dst_service_estimates(&log, &result) {
                let old = model.dst_service(NodeId(dst));
                model.set_dst_service(NodeId(dst), (old + ps).div_ceil(2));
            }
        }
    }
    est
}

/// A1 — ablation of the self-correction loop's design choices.
pub fn a1_ablation(scale: Scale) -> Table {
    let variants: [(&str, LoopOptions); 5] = [
        ("full model", LoopOptions::FULL),
        (
            "+ enforce source order",
            LoopOptions {
                ordered: true,
                ..LoopOptions::FULL
            },
        ),
        (
            "- class-aware corrections",
            LoopOptions {
                class_aware: false,
                ..LoopOptions::FULL
            },
        ),
        (
            "- damping",
            LoopOptions {
                damped: false,
                ..LoopOptions::FULL
            },
        ),
        (
            "+ service learning",
            LoopOptions {
                learn_service: true,
                ..LoopOptions::FULL
            },
        ),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for kind in [NetworkKind::Omesh, NetworkKind::Oxbar] {
        let reference = go(&flagship(scale, kind), &RunSpec::exec_driven());
        for (name, opts) in variants {
            let reference = reference.clone();
            jobs.push(Box::new(move || {
                let e = flagship(scale, kind);
                let est = sctm_loop_with(&e, opts, 4);
                let err = sctm_engine::stats::rel_err_pct(
                    est.as_ps() as f64,
                    reference.exec_time.as_ps() as f64,
                );
                vec![kind.label().to_string(), name.to_string(), fnum(err)]
            }));
        }
    }
    let rows = par_map(jobs);
    let mut t = Table::new(
        "A1 — Ablation of self-correction design choices (fft, exec err %)",
        &["network", "variant", "exec err %"],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// §P10 — trace-container economics as the mesh scales. One row per
/// system size: bytes per message and cold-load time for the CSV text
/// versus the sctf binary container, plus the container's resident
/// bytes against the parsed row-struct log (the capture cache's new
/// budget currency). Each row then replays the *decoded* container
/// through the full-causality oracle on the detailed mesh, so the
/// larger configurations (256 and 1024 cores at full scale) exercise
/// the whole capture → freeze → thaw → replay path end-to-end.
pub fn p10_trace_format(scale: Scale) -> Table {
    use sctm_trace::sctf::{from_sctf_bytes, to_sctf_bytes};
    let sides: &[usize] = match scale {
        Scale::Quick => &[4, 8],
        Scale::Full => &[8, 16, 32],
    };
    // Captures fan out; the timed loads below run serially so no row's
    // clock fights another capture for cores.
    let jobs: Vec<Box<dyn FnOnce() -> (usize, TraceLog) + Send>> = sides
        .iter()
        .map(|&side| {
            Box::new(move || {
                // Records scale with cores, so shrink the per-core
                // script as meshes grow to keep row cost bounded.
                let ops = (2400 / side).max(60);
                let log = Experiment::new(SystemConfig::new(side, NetworkKind::Omesh), Kernel::Fft)
                    .with_ops(ops)
                    .capture();
                (side, log)
            }) as Box<dyn FnOnce() -> (usize, TraceLog) + Send>
        })
        .collect();
    let captures = par_map(jobs);

    // Cold loads are one-shot by nature; best-of-3 keeps a stray
    // scheduler hiccup out of the row.
    fn best_of_3<T>(mut f: impl FnMut() -> T) -> (std::time::Duration, T) {
        let mut best = None::<std::time::Duration>;
        let mut out = None;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let v = f();
            let dt = t0.elapsed();
            if best.is_none_or(|b| dt < b) {
                best = Some(dt);
                out = Some(v);
            }
        }
        (best.unwrap(), out.unwrap())
    }

    let rows: Vec<Vec<String>> = captures
        .into_iter()
        .map(|(side, log)| {
            let csv = log.to_csv_string();
            let sctf = to_sctf_bytes(&log);
            let n = log.len().max(1) as f64;

            let (csv_load, parsed) = best_of_3(|| TraceLog::from_csv_str(&csv).expect("csv parse"));
            let (sctf_load, decoded) = best_of_3(|| from_sctf_bytes(&sctf).expect("sctf decode"));
            assert_eq!(parsed.len(), decoded.len());

            let t0 = std::time::Instant::now();
            let mut net = SystemConfig::make_network_kind(side, NetworkKind::Omesh);
            let r = sctm_trace::replay_oracle(&decoded, net.as_mut());
            let replay = t0.elapsed();

            let speedup = csv_load.as_secs_f64() / sctf_load.as_secs_f64().max(1e-9);
            vec![
                format!("{}", side * side),
                format!("{}", log.len()),
                fnum(csv.len() as f64 / n),
                fnum(sctf.len() as f64 / n),
                format!("{:.2}", sctf.len() as f64 / csv.len() as f64),
                ms(csv_load),
                ms(sctf_load),
                format!("{speedup:.1}x"),
                format!("{:.2}", sctf.len() as f64 / log.resident_bytes() as f64),
                format!("{} / {}", ms(replay), r.est_exec_time),
            ]
        })
        .collect();
    let mut t = Table::new(
        "P10 — Trace container economics: CSV text vs sctf binary (fft on omesh)",
        &[
            "cores",
            "records",
            "csv B/msg",
            "sctf B/msg",
            "size ratio",
            "csv parse (ms)",
            "sctf load (ms)",
            "load speedup",
            "resident ratio",
            "oracle replay (ms / est)",
        ],
    );
    for r in rows {
        t.row(&r);
    }
    t
}

/// Sanity helpers used by the shape tests.
pub fn parse_pct(cell: &str) -> f64 {
    cell.trim_end_matches('%')
        .trim()
        .parse()
        .unwrap_or(f64::NAN)
}

/// Build a standalone network simulator for micro-benchmarks.
pub fn bench_network(kind: NetworkKind, side: usize) -> Box<dyn sctm_engine::net::NetworkModel> {
    match kind {
        NetworkKind::Emesh => Box::new(NocSim::new(NocConfig {
            topology: Topology::mesh(side, side),
            routing: Routing::XY,
            ..NocConfig::default()
        })),
        NetworkKind::Omesh => Box::new(OmeshSim::new(OmeshConfig::new(side))),
        NetworkKind::Oxbar => Box::new(OxbarSim::new(OxbarConfig::new(side))),
        NetworkKind::Hybrid => Box::new(HybridSim::new(HybridConfig::new(side))),
        NetworkKind::Obus => Box::new(ObusSim::new(ObusConfig::new(side))),
        NetworkKind::Analytic => Box::new(SystemConfig::analytic(side * side)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape tests run everything at quick scale. They are the
    // regeneration check for every table/figure: not absolute numbers,
    // but the paper's qualitative claims.

    #[test]
    fn e1_has_core_count() {
        let t = e1_configuration(Scale::Quick);
        assert!(t.render().contains("16 (4x4 mesh)"));
    }

    #[test]
    fn e7_crossbar_burns_more_power() {
        let t = e7_power_budget(Scale::Quick);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        let get = |line: &str, idx: usize| -> f64 {
            line.split(',')
                .nth(idx)
                .unwrap_or_else(|| panic!("e7 csv row '{line}' has no column {idx}"))
                .parse()
                .unwrap_or_else(|e| panic!("e7 csv column {idx} of '{line}' is not a number: {e}"))
        };
        let mesh_total = get(lines[1], 6);
        let xbar_total = get(lines[2], 6);
        assert!(xbar_total > mesh_total, "{xbar_total} !> {mesh_total}");
    }

    #[test]
    fn e6_latency_grows_with_rate() {
        let t = e6_load_latency(Scale::Quick);
        let csv = t.to_csv();
        // For the emesh uniform rows, latency at 0.04 ≥ latency at 0.01.
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|s| s.to_string()).collect())
            .collect();
        let lat = |net: &str, rate: f64| -> f64 {
            rows.iter()
                .find(|r| {
                    r[0] == net
                        && r[1] == "uniform"
                        && (r[2]
                            .parse::<f64>()
                            .expect("e6 csv 'rate' column is not a number")
                            - rate)
                            .abs()
                            < 1e-9
                })
                .map(|r| {
                    r[3].parse()
                        .expect("e6 csv 'latency' column is not a number")
                })
                .unwrap_or_else(|| panic!("e6 csv has no uniform row for {net} at rate {rate}"))
        };
        assert!(lat("emesh", 0.04) >= lat("emesh", 0.01));
    }

    #[test]
    fn e8_classic_degrades_with_model_error_but_sctm_holds() {
        let t = e8_capture_model_sensitivity(Scale::Quick);
        let csv = t.to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|s| s.to_string()).collect())
            .collect();
        let err_at = |f: &str, col: usize, mode: &str| -> f64 {
            rows.iter()
                .find(|r| r[0] == f)
                .unwrap_or_else(|| panic!("e8 csv has no row for capture factor {f}"))[col]
                .parse()
                .unwrap_or_else(|e| panic!("e8 csv '{mode}' error at {f} is not a number: {e}"))
        };
        let classic_at = |f: &str| -> f64 { err_at(f, 1, "classic") };
        let sctm_at = |f: &str| -> f64 { err_at(f, 2, "sctm") };
        // A 4x-wrong capture model wrecks the classic trace…
        assert!(classic_at("4x") > 3.0 * classic_at("1x").max(1.0));
        // …while the self-correcting pass stays in single digits.
        assert!(sctm_at("4x") < 12.0, "sctm at 4x: {}", sctm_at("4x"));
    }
}
