//! DWDM channel plan and burst timing.
//!
//! Optical data channels carry *bursts*: a message is serialised across
//! all wavelengths of a waveguide in parallel at the line rate. This
//! module converts message sizes to wire time, which is the quantity the
//! optical network simulators schedule with.

use sctm_engine::time::SimTime;

/// A DWDM channel plan for one waveguide bundle.
#[derive(Clone, Copy, Debug)]
pub struct ChannelPlan {
    /// Wavelengths ganged together for one logical channel.
    pub lambdas: u32,
    /// Line rate per wavelength, Gb/s.
    pub gbps_per_lambda: f64,
}

impl Default for ChannelPlan {
    fn default() -> Self {
        ChannelPlan {
            lambdas: 64,
            gbps_per_lambda: 10.0,
        }
    }
}

impl ChannelPlan {
    /// Aggregate bandwidth in Gb/s.
    pub fn gbps(&self) -> f64 {
        self.lambdas as f64 * self.gbps_per_lambda
    }

    /// Time to serialise `bytes` onto the channel (picoseconds, ≥ 1 bit
    /// slot). Gb/s == bits/ns, so ps = bits * 1000 / gbps.
    pub fn burst_time(&self, bytes: u32) -> SimTime {
        let bits = (bytes as f64) * 8.0;
        let ps = (bits * 1000.0 / self.gbps()).ceil() as u64;
        SimTime::from_ps(ps.max(self.slot_ps()))
    }

    /// One bit-slot on the aggregate channel, in picoseconds (minimum
    /// schedulable quantum).
    pub fn slot_ps(&self) -> u64 {
        (1000.0 / self.gbps_per_lambda).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_bandwidth() {
        let p = ChannelPlan::default();
        assert!((p.gbps() - 640.0).abs() < 1e-9);
    }

    #[test]
    fn burst_time_for_cacheline() {
        let p = ChannelPlan::default();
        // 64 B = 512 bits over 640 Gb/s = 0.8 ns = 800 ps
        assert_eq!(p.burst_time(64).as_ps(), 800);
    }

    #[test]
    fn burst_time_scales_linearly() {
        let p = ChannelPlan::default();
        let t64 = p.burst_time(64).as_ps();
        let t128 = p.burst_time(128).as_ps();
        assert_eq!(t128, 2 * t64);
    }

    #[test]
    fn small_bursts_hit_slot_floor() {
        let p = ChannelPlan {
            lambdas: 64,
            gbps_per_lambda: 10.0,
        };
        // 1 byte = 8 bits over 640 Gb/s = 12.5 ps, below the 100 ps slot
        assert_eq!(p.burst_time(1).as_ps(), 100);
        assert_eq!(p.slot_ps(), 100);
    }

    #[test]
    fn narrow_plan_is_slower() {
        let wide = ChannelPlan {
            lambdas: 64,
            gbps_per_lambda: 10.0,
        };
        let narrow = ChannelPlan {
            lambdas: 8,
            gbps_per_lambda: 10.0,
        };
        assert!(narrow.burst_time(64) > wide.burst_time(64));
    }
}
