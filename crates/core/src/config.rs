//! System configuration: the simulated machine and its interconnect.

use crate::error::SctmError;
use sctm_cmp::CmpConfig;
use sctm_engine::net::{AnalyticNetwork, NetworkModel};
use sctm_engine::table::Table;
use sctm_engine::time::SimTime;
use sctm_enoc::{NocConfig, NocSim, Routing, Topology};
use sctm_onoc::{
    HybridConfig, HybridSim, ObusConfig, ObusSim, OmeshConfig, OmeshSim, OxbarConfig, OxbarSim,
};

/// Which interconnect the simulated CMP uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkKind {
    /// Electrical wormhole VC mesh — the paper's baseline simulator.
    Emesh,
    /// Circuit-switched photonic mesh with electrical control plane.
    Omesh,
    /// Corona-style MWSR wavelength crossbar.
    Oxbar,
    /// Path-adaptive opto-electronic hybrid (extension; the authors'
    /// 2013 follow-up architecture).
    Hybrid,
    /// SWMR optical broadcast bus (extension; Firefly/ATAC lineage).
    Obus,
    /// Contention-free analytic model (used for trace capture and as
    /// the in-loop model of the online correction variant).
    Analytic,
}

impl NetworkKind {
    pub const DETAILED: [NetworkKind; 5] = [
        NetworkKind::Emesh,
        NetworkKind::Omesh,
        NetworkKind::Oxbar,
        NetworkKind::Hybrid,
        NetworkKind::Obus,
    ];

    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::Emesh => "emesh",
            NetworkKind::Omesh => "omesh",
            NetworkKind::Oxbar => "oxbar",
            NetworkKind::Hybrid => "hybrid",
            NetworkKind::Obus => "obus",
            NetworkKind::Analytic => "analytic",
        }
    }

    /// Look an interconnect up by its [`NetworkKind::label`]. The typed
    /// front door for services and CLIs that receive network names as
    /// strings.
    pub fn from_label(label: &str) -> Result<NetworkKind, SctmError> {
        match label {
            "emesh" => Ok(NetworkKind::Emesh),
            "omesh" => Ok(NetworkKind::Omesh),
            "oxbar" => Ok(NetworkKind::Oxbar),
            "hybrid" => Ok(NetworkKind::Hybrid),
            "obus" => Ok(NetworkKind::Obus),
            "analytic" => Ok(NetworkKind::Analytic),
            other => Err(SctmError::UnknownNetwork(other.to_string())),
        }
    }
}

/// The simulated system: a tiled CMP plus one interconnect choice.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Mesh side; core count is `side²`.
    pub side: usize,
    pub cmp: CmpConfig,
    pub network: NetworkKind,
}

impl SystemConfig {
    /// Largest supported mesh side (64² = 4096 cores). Beyond this the
    /// dense per-pair correction tables and renumbering buffers stop
    /// being a sensible memory trade.
    pub const MAX_SIDE: usize = 64;

    /// The default 2012-class configuration at `side × side` cores.
    ///
    /// Panics outside the simulable envelope; long-running callers that
    /// handle untrusted sizes should use [`SystemConfig::try_new`].
    pub fn new(side: usize, network: NetworkKind) -> Self {
        Self::try_new(side, network).expect("invalid system config")
    }

    /// [`SystemConfig::new`] with the envelope checks surfaced as a
    /// typed error instead of a panic: a service can reject one bad
    /// request and keep serving the rest.
    pub fn try_new(side: usize, network: NetworkKind) -> Result<Self, SctmError> {
        if side == 0 {
            return Err(SctmError::InvalidConfig("mesh side must be >= 1".into()));
        }
        if side > Self::MAX_SIDE {
            return Err(SctmError::InvalidConfig(format!(
                "mesh side {side} exceeds the simulable envelope (max {})",
                Self::MAX_SIDE
            )));
        }
        // Every workload kernel partitions over power-of-two core
        // counts; side² is a power of two iff side is.
        if !side.is_power_of_two() {
            return Err(SctmError::InvalidConfig(format!(
                "mesh side {side} gives {} cores; kernels need a power-of-two core count",
                side * side
            )));
        }
        Ok(SystemConfig {
            side,
            cmp: CmpConfig::tiled(side),
            network,
        })
    }

    pub fn cores(&self) -> usize {
        self.side * self.side
    }

    /// Instantiate the configured interconnect.
    pub fn make_network(&self) -> Box<dyn NetworkModel> {
        Self::make_network_kind(self.side, self.network)
    }

    /// Instantiate any interconnect for this system size.
    pub fn make_network_kind(side: usize, kind: NetworkKind) -> Box<dyn NetworkModel> {
        let nodes = side * side;
        match kind {
            NetworkKind::Emesh => Box::new(NocSim::new(NocConfig {
                topology: Topology::mesh(side, side),
                routing: Routing::XY,
                ..NocConfig::default()
            })),
            NetworkKind::Omesh => Box::new(OmeshSim::new(OmeshConfig::new(side))),
            NetworkKind::Oxbar => Box::new(OxbarSim::new(OxbarConfig::new(side))),
            NetworkKind::Hybrid => Box::new(HybridSim::new(HybridConfig::new(side))),
            NetworkKind::Obus => Box::new(ObusSim::new(ObusConfig::new(side))),
            NetworkKind::Analytic => Box::new(Self::analytic(nodes)),
        }
    }

    /// The analytic capture model: roughly calibrated to the electrical
    /// mesh's zero-load behaviour (base NI+pipeline cost, per-hop router
    /// latency, serialisation per byte) with no contention.
    pub fn analytic(nodes: usize) -> AnalyticNetwork {
        AnalyticNetwork::new(nodes, SimTime::from_ns(8), SimTime::from_ps(1_500), 60)
    }

    /// Experiment E1: the paper-style configuration table.
    pub fn config_table(&self) -> Table {
        let mut t = Table::new(
            "E1 — Simulated system configuration",
            &["parameter", "value"],
        );
        let row = |t: &mut Table, k: &str, v: String| {
            t.row(&[k.to_string(), v]);
        };
        row(
            &mut t,
            "cores",
            format!("{} ({}x{} mesh)", self.cores(), self.side, self.side),
        );
        row(
            &mut t,
            "core clock",
            format!("{:.1} GHz, in-order, blocking", self.cmp.core_freq.ghz()),
        );
        row(
            &mut t,
            "L1D",
            format!(
                "{} KiB, {}-way, 64 B lines, {}-cycle hit",
                self.cmp.l1.capacity_bytes() / 1024,
                self.cmp.l1.ways,
                self.cmp.l1_hit_cycles
            ),
        );
        row(
            &mut t,
            "L2 slice",
            format!(
                "{} KiB, {}-way, {}-cycle",
                self.cmp.l2_slice.capacity_bytes() / 1024,
                self.cmp.l2_slice.ways,
                self.cmp.l2_cycles
            ),
        );
        row(
            &mut t,
            "coherence",
            "MESI-lite full-map directory, 2 vnets".to_string(),
        );
        row(
            &mut t,
            "memory",
            format!(
                "{} controllers, {} latency",
                self.cmp.num_mem_ctrl, self.cmp.mem_latency
            ),
        );
        let net_desc = match self.network {
            NetworkKind::Emesh => {
                "electrical mesh: 2-stage wormhole VC routers, XY, 2 GHz".to_string()
            }
            NetworkKind::Omesh => {
                "photonic circuit-switched mesh, 64λ × 10 Gb/s, electrical setup".to_string()
            }
            NetworkKind::Oxbar => {
                "MWSR optical crossbar, token arbitration, 64λ × 10 Gb/s".to_string()
            }
            NetworkKind::Hybrid => {
                "path-adaptive opto-electronic hybrid (distance/size policy)".to_string()
            }
            NetworkKind::Obus => "SWMR optical broadcast bus, 64λ × 10 Gb/s per source".to_string(),
            NetworkKind::Analytic => "contention-free analytic model".to_string(),
        };
        row(&mut t, "interconnect", net_desc);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networks_instantiate_with_matching_sizes() {
        for kind in [
            NetworkKind::Emesh,
            NetworkKind::Omesh,
            NetworkKind::Oxbar,
            NetworkKind::Hybrid,
            NetworkKind::Obus,
            NetworkKind::Analytic,
        ] {
            let sys = SystemConfig::new(4, kind);
            let net = sys.make_network();
            assert_eq!(net.num_nodes(), 16, "{}", kind.label());
            assert_eq!(net.label(), kind.label());
        }
    }

    #[test]
    fn labels_roundtrip_and_unknown_is_typed() {
        for kind in [
            NetworkKind::Emesh,
            NetworkKind::Omesh,
            NetworkKind::Oxbar,
            NetworkKind::Hybrid,
            NetworkKind::Obus,
            NetworkKind::Analytic,
        ] {
            assert_eq!(NetworkKind::from_label(kind.label()), Ok(kind));
        }
        assert_eq!(
            NetworkKind::from_label("warp"),
            Err(SctmError::UnknownNetwork("warp".into()))
        );
    }

    #[test]
    fn try_new_rejects_sizes_outside_the_envelope() {
        for bad in [0, 3, 5, 6, SystemConfig::MAX_SIDE + 1, usize::MAX / 2] {
            let err = SystemConfig::try_new(bad, NetworkKind::Omesh).unwrap_err();
            assert!(
                matches!(err, SctmError::InvalidConfig(_)),
                "side {bad}: {err}"
            );
        }
        assert!(SystemConfig::try_new(1, NetworkKind::Emesh).is_ok());
        assert!(SystemConfig::try_new(SystemConfig::MAX_SIDE, NetworkKind::Emesh).is_ok());
    }

    #[test]
    fn config_table_renders() {
        let sys = SystemConfig::new(8, NetworkKind::Omesh);
        let s = sys.config_table().render();
        assert!(s.contains("64 (8x8 mesh)"));
        assert!(s.contains("photonic"));
    }

    #[test]
    fn analytic_is_contention_free_and_fast() {
        use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
        let net = SystemConfig::analytic(16);
        let m = Message {
            id: MsgId(0),
            src: NodeId(0),
            dst: NodeId(15),
            class: MsgClass::Data,
            bytes: 72,
        };
        let lat = net.model_latency(&m);
        // 8 ns base + 6 hops × 1.5 ns + 72 B × 60 ps ≈ 21.3 ns
        assert!(
            lat > SimTime::from_ns(15) && lat < SimTime::from_ns(30),
            "{lat}"
        );
    }
}
