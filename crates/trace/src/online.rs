//! Online epoch-based self-correction (the extension variant, E9).
//!
//! Instead of capturing a whole trace and correcting offline, the
//! full-system run proceeds against the cheap analytic latency model
//! while a *shadow* detailed network replays each completed epoch's
//! traffic; per-(src,dst,class) correction factors derived from the shadow
//! fed back into the analytic model for subsequent epochs. The CMP
//! simulator is completely unaware — [`OnlineCorrected`] is just another
//! [`NetworkModel`].
//!
//! Trade-off vs offline SCTM: no second full replay of the whole run
//! and bounded memory (one epoch of messages), but corrections arrive
//! one epoch late and are aggregated per pair rather than per message —
//! experiment E9 measures what that costs as a function of epoch length.

use sctm_engine::net::{AnalyticNetwork, Delivery, Message, MsgClass, NetStats, NetworkModel};
use sctm_engine::stats::Running;
use sctm_engine::time::SimTime;
use std::collections::HashMap;

/// Smoothing factor for correction updates (EWMA weight of the newest
/// epoch's observation).
const EWMA_ALPHA: f64 = 0.6;

/// Factory producing fresh shadow-network instances (one per epoch).
///
/// Each epoch's traffic is replayed into a *fresh* shadow: reusing one
/// instance lets its internal clock run past the epoch boundary while
/// draining, so the next epoch's injections get clamped forward, pile
/// up, and the inflated latencies feed back into ever-growing
/// corrections — a positive feedback loop that wrecks the estimate at
/// scale. The price of freshness is losing cross-epoch carry-over
/// contention, which is second-order at sane epoch lengths.
pub type ShadowFactory = Box<dyn FnMut() -> Box<dyn NetworkModel> + Send>;

/// An analytic network that self-corrects against a shadow detailed
/// model at every epoch boundary.
pub struct OnlineCorrected {
    analytic: AnalyticNetwork,
    make_shadow: ShadowFactory,
    epoch: SimTime,
    next_boundary: SimTime,
    epoch_log: Vec<(SimTime, Message)>,
    /// (src,dst) → smoothed correction factor.
    factors: HashMap<(u32, u32, MsgClass), f64>,
    epochs_flushed: u64,
    corrections_applied: u64,
    shadow_buf: Vec<Delivery>,
}

impl OnlineCorrected {
    pub fn new(analytic: AnalyticNetwork, make_shadow: ShadowFactory, epoch: SimTime) -> Self {
        assert!(epoch.as_ps() > 0);
        OnlineCorrected {
            analytic,
            make_shadow,
            next_boundary: epoch,
            epoch,
            epoch_log: Vec::new(),
            factors: HashMap::new(),
            epochs_flushed: 0,
            corrections_applied: 0,
            shadow_buf: Vec::new(),
        }
    }

    pub fn epochs_flushed(&self) -> u64 {
        self.epochs_flushed
    }

    pub fn corrections_applied(&self) -> u64 {
        self.corrections_applied
    }

    /// Mean correction factor currently installed (diagnostics).
    pub fn mean_factor(&self) -> f64 {
        if self.factors.is_empty() {
            return 1.0;
        }
        self.factors.values().sum::<f64>() / self.factors.len() as f64
    }

    /// Replay the traffic of the epoch ending at `boundary` through the
    /// shadow network and update the analytic correction table.
    /// Messages already registered for later epochs (future-scheduled
    /// sends) are retained for their own epoch.
    fn flush_epoch(&mut self, boundary: SimTime) {
        self.epochs_flushed += 1;
        let (this_epoch, later): (Vec<_>, Vec<_>) =
            self.epoch_log.drain(..).partition(|&(at, _)| at < boundary);
        self.epoch_log = later;
        if this_epoch.is_empty() {
            return;
        }
        // Observed shadow latency and model-base latency per pair,
        // replayed into a fresh shadow instance (see [`ShadowFactory`]).
        let mut shadow = (self.make_shadow)();
        debug_assert_eq!(shadow.num_nodes(), self.analytic.num_nodes());
        let mut obs: HashMap<(u32, u32, MsgClass), (Running, Running)> = HashMap::new();
        for &(at, msg) in &this_epoch {
            shadow.inject(at, msg);
        }
        self.shadow_buf.clear();
        shadow.drain(&mut self.shadow_buf);
        for d in &self.shadow_buf {
            let key = (d.msg.src.0, d.msg.dst.0, d.msg.class);
            let e = obs
                .entry(key)
                .or_insert_with(|| (Running::new(), Running::new()));
            e.0.push(d.latency().as_ps() as f64);
            e.1.push(self.analytic.base_latency(&d.msg).as_ps() as f64);
        }
        for ((src, dst, class), (shadow_lat, base_lat)) in obs {
            if base_lat.mean() <= 0.0 {
                continue;
            }
            // Cap the per-epoch observation: replaying a whole epoch
            // open-loop into the shadow overestimates queueing (the
            // real run is closed-loop and self-throttles), and an
            // uncapped ratio can run away — each inflation stretches
            // the run, which inflates the next epoch's ratio.
            let ratio = (shadow_lat.mean() / base_lat.mean()).clamp(0.125, 8.0);
            let cur = self.factors.get(&(src, dst, class)).copied().unwrap_or(1.0);
            let next = (1.0 - EWMA_ALPHA) * cur + EWMA_ALPHA * ratio;
            self.factors.insert((src, dst, class), next);
            self.analytic.set_correction(
                sctm_engine::net::NodeId(src),
                sctm_engine::net::NodeId(dst),
                class,
                next,
            );
            self.corrections_applied += 1;
        }
    }
}

impl NetworkModel for OnlineCorrected {
    fn num_nodes(&self) -> usize {
        self.analytic.num_nodes()
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        self.epoch_log.push((at, msg));
        self.analytic.inject(at, msg);
    }

    fn next_time(&self) -> Option<SimTime> {
        self.analytic.next_time()
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        while self.next_boundary <= t {
            let b = self.next_boundary;
            self.analytic.advance_until(b, out);
            self.flush_epoch(b);
            self.next_boundary = b + self.epoch;
        }
        self.analytic.advance_until(t, out);
    }

    fn stats(&self) -> &NetStats {
        self.analytic.stats()
    }

    fn reset_stats(&mut self) {
        self.analytic.reset_stats();
    }

    fn label(&self) -> &'static str {
        "online-corrected"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgId, NodeId};

    fn msg(id: u64, src: u32, dst: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: MsgClass::Data,
            bytes: 64,
        }
    }

    /// Shadow = analytic with 4x the per-hop latency: corrections should
    /// converge toward ~4x factors.
    fn setup(epoch_us: u64) -> OnlineCorrected {
        let fast = AnalyticNetwork::new(16, SimTime::from_ns(4), SimTime::from_ns(2), 5);
        let make_shadow: ShadowFactory = Box::new(|| {
            Box::new(AnalyticNetwork::new(
                16,
                SimTime::from_ns(4),
                SimTime::from_ns(8),
                20,
            ))
        });
        OnlineCorrected::new(fast, make_shadow, SimTime::from_us(epoch_us))
    }

    #[test]
    fn corrections_move_toward_shadow() {
        let mut net = setup(1);
        let mut out = Vec::new();
        let mut id = 0;
        // Several epochs of steady traffic on one pair.
        for e in 0..5u64 {
            for k in 0..20u64 {
                net.inject(
                    SimTime::from_us(e) + SimTime::from_ns(k * 40),
                    msg(id, 0, 15),
                );
                id += 1;
            }
            net.advance_until(SimTime::from_us(e + 1), &mut out);
        }
        assert!(net.epochs_flushed() >= 4);
        let f = net.factors.get(&(0, 15, MsgClass::Data)).copied().unwrap();
        assert!(f > 1.5, "factor did not grow toward shadow ratio: {f}");
        // After correction, analytic latency for the pair approaches the
        // shadow's.
        let corrected = net.analytic.model_latency(&msg(999, 0, 15)).as_ps() as f64;
        let shadow_like = AnalyticNetwork::new(16, SimTime::from_ns(4), SimTime::from_ns(8), 20)
            .model_latency(&msg(999, 0, 15))
            .as_ps() as f64;
        let err = (corrected - shadow_like).abs() / shadow_like;
        assert!(err < 0.25, "corrected latency still {err:.2} off");
    }

    #[test]
    fn uncongested_pairs_untouched() {
        let mut net = setup(1);
        let mut out = Vec::new();
        net.inject(SimTime::ZERO, msg(0, 0, 15));
        net.advance_until(SimTime::from_us(2), &mut out);
        assert!(!net.factors.contains_key(&(3, 7, MsgClass::Data)));
        assert!(
            (net.analytic
                .correction(NodeId(3), NodeId(7), MsgClass::Data)
                - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn empty_epochs_flush_cheaply() {
        let mut net = setup(1);
        let mut out = Vec::new();
        net.advance_until(SimTime::from_us(10), &mut out);
        assert_eq!(net.epochs_flushed(), 10);
        assert_eq!(net.corrections_applied(), 0);
        assert_eq!(net.mean_factor(), 1.0);
    }

    #[test]
    fn deliveries_still_complete() {
        let mut net = setup(1);
        let mut out = Vec::new();
        for i in 0..50u64 {
            net.inject(
                SimTime::from_ns(i * 100),
                msg(i, (i % 16) as u32, ((i + 3) % 16) as u32),
            );
        }
        net.drain(&mut out);
        assert_eq!(out.len(), 50);
        assert_eq!(net.stats().in_flight(), 0);
    }

    #[test]
    fn shorter_epochs_correct_sooner() {
        let run = |epoch_us: u64| {
            let mut net = setup(epoch_us);
            let mut out = Vec::new();
            let mut id = 0;
            for e in 0..4u64 {
                for k in 0..10u64 {
                    net.inject(
                        SimTime::from_us(e) + SimTime::from_ns(k * 50),
                        msg(id, 1, 9),
                    );
                    id += 1;
                }
            }
            net.advance_until(SimTime::from_us(4), &mut out);
            net.factors
                .get(&(1, 9, MsgClass::Data))
                .copied()
                .unwrap_or(1.0)
        };
        let fine = run(1);
        let coarse = run(4);
        assert!(
            fine > coarse,
            "1µs epochs ({fine}) should have corrected more than 4µs ({coarse})"
        );
    }
}
