//! The request scheduler and its front-ends.
//!
//! Two scheduler modes share every queue, cache, and telemetry
//! mechanism (selected by [`ServerConfig::sched`]):
//!
//! - **[`SchedMode::WorkSteal`]** (default): a fixed pool of
//!   `SCTM_THREADS` workers pulls per-request *stage* tasks — probe →
//!   capture → replay → render — from per-worker deques with stealing
//!   ([`WorkStealPool`]). A worker finishing one stage pushes the
//!   request's next stage onto its own deque; idle workers steal the
//!   oldest queued stage from a peer. So the capture of request N
//!   overlaps the replay of request M and the response rendering of
//!   request K, and a sweep saturates every worker instead of
//!   serializing behind whole-batch barriers.
//! - **[`SchedMode::Batch`]**: the original serial batch cycle — one
//!   scheduler thread drains the queue and runs each batch on the
//!   deterministic pool ([`par_map`]). Kept as the byte-identity
//!   reference: `tests/srv_sched.rs` pins that both modes produce
//!   identical `"result"` bytes at any worker count.
//!
//! Determinism does not depend on the mode: each request's result
//! manifest is computed from simulated quantities only, and the
//! [`CaptureCache`] single-flight pending slots are the only
//! cross-request synchronization — whichever request performs a capture
//! produces the same bytes. Scheduling changes *when* work runs, never
//! *what* it computes.
//!
//! In **shard mode** ([`Server::start_sharded`]) several `sctmd`
//! processes partition the capture cache by consistent hashing over the
//! FNV capture key: a miss on a key owned by a peer is forwarded (`fwd`
//! verb) instead of captured locally, so the whole cluster performs one
//! capture per workload. See the `shard` module docs.
//!
//! Backpressure is explicit: `submit` on a full queue fails immediately
//! with a `busy` response carrying `retry_after_ms`, never blocks the
//! caller, and never grows the queue past its cap. Shutdown is a
//! graceful drain — everything already queued still runs and answers.
//!
//! # Telemetry (DESIGN.md §12)
//!
//! Every request is decomposed into lifecycle phases — accepted →
//! queued → cache-probe → capture/replay → respond — timed on the host
//! clock and rolled into a [`SvcStats`] aggregate (relaxed-atomic
//! counters, max gauges, per-phase latency histograms behind one
//! per-request lock). The aggregate is always on: it feeds the `stats`
//! verb (versioned JSON snapshot), the `metrics` verb (Prometheus text
//! exposition 0.0.4, also served to `GET /metrics` over the same TCP
//! port), and the optional JSONL request log. None of it can reach a
//! simulation: response `"result"` bytes are produced before any
//! telemetry is recorded for the request, and the byte-identity suite
//! hammers `stats` concurrently to prove it.

use crate::cache::{CacheStats, CaptureCache, CaptureKey};
use crate::proto::{
    self, error_kind, error_response, ok_response, parse_request, result_json, timeout_response,
    CacheOutcome, FwdRequest, Request, RunRequest,
};
use crate::shard::Shard;
use sctm_core::trace::TraceLog;
use sctm_core::{Mode, SctmError};
use sctm_engine::par::{par_map, service_threads, WorkStealPool, WorkerHandle};
use sctm_engine::stats::Histogram;
use sctm_obs::reqlog::{json_line, RequestLog};
use sctm_obs::svc::{SvcCounter, SvcPhase, SvcStats, SVC_STATS_VERSION};
use sctm_obs::{json_escape, span, ConvergenceVerdict, Manifest};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// How the server turns queued requests into running work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// One scheduler thread drains the queue and runs whole batches on
    /// the deterministic pool. The original cycle; capture, replay, and
    /// response I/O of different batches serialize.
    Batch,
    /// Stage-pipelined work-stealing pool: per-request probe → capture
    /// → replay → render tasks on per-worker deques with stealing.
    WorkSteal,
}

/// Service knobs. All bounds are hard: the queue never exceeds
/// `queue_cap` and the cache evicts past `cache_bytes`.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Bounded request queue length; submissions beyond it get `busy`.
    pub queue_cap: usize,
    /// Capture cache byte budget (sctf-encoded trace bytes).
    pub cache_bytes: usize,
    /// Queue deadline for requests that do not carry `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Retry hint attached to `busy` responses.
    pub retry_after_ms: u64,
    /// Scheduler worker count; `0` resolves via
    /// [`service_threads`] (`SCTM_THREADS`, else all cores).
    pub workers: usize,
    /// Scheduler mode; [`SchedMode::WorkSteal`] unless pinned.
    pub sched: SchedMode,
    /// Idle-flush read timeout for [`serve_tcp`] connections, in
    /// milliseconds: how often an idle connection wakes to flush
    /// completed responses to lockstep clients.
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_cap: 64,
            cache_bytes: 256 << 20,
            default_timeout_ms: 300_000,
            retry_after_ms: 50,
            workers: 0,
            sched: SchedMode::WorkSteal,
            read_timeout_ms: 25,
        }
    }
}

struct Job {
    req: RunRequest,
    /// Monotone per-daemon request number; pairs log lines with spans.
    seq: u64,
    enqueued: Instant,
    /// `None` never times out (deadline arithmetic overflowed).
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
    /// Accepted requests not yet answered (queued + in flight). Drain
    /// in work-steal mode waits for this to hit zero so every accepted
    /// request is answered before the pool stops.
    outstanding: usize,
}

/// The four work-steal pipeline stages, in flow order. Indices key the
/// `srv.sched.queue.<stage>` depth gauges.
const STAGE_NAMES: [&str; 4] = ["probe", "capture", "replay", "render"];
const STAGE_PROBE: usize = 0;
const STAGE_CAPTURE: usize = 1;
const STAGE_REPLAY: usize = 2;
const STAGE_RENDER: usize = 3;

/// Shard-mode counters (zeros outside shard mode; the schema is
/// stable either way). Cluster-wide capture count is
/// `Σ srv.cache.misses − Σ srv.shard.forwarded` across instances.
#[derive(Default)]
struct ShardCounters {
    /// Local captures for keys this instance owns.
    owned: AtomicU64,
    /// Misses satisfied by fetching from the owning peer.
    forwarded: AtomicU64,
    /// `fwd` requests served on behalf of peers.
    fwd_served: AtomicU64,
    /// Forwards that failed (peer down, malformed reply); the request
    /// got a typed error and the pending slot was released.
    fwd_errors: AtomicU64,
    /// Format mix of served `fwd` replies: binary sctf frames vs CSV
    /// frames (a CSV frame means the requesting peer is version-skewed
    /// or pinned to the interchange codec).
    fwd_sctf: AtomicU64,
    fwd_csv: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    cache: CaptureCache,
    queue: Mutex<QueueState>,
    jobs_ready: Condvar,
    svc: SvcStats,
    log: Option<Arc<RequestLog>>,
    next_seq: AtomicU64,
    /// Convergence rollup across completed self-correction runs: run
    /// counts per verdict and an iterations-per-run histogram, served
    /// as `srv.conv.*` by the `stats`/`metrics` verbs.
    conv: Mutex<ConvRollup>,
    /// Consistent-hash shard state; `None` runs single-instance.
    shard: Option<Shard>,
    shard_counters: ShardCounters,
    /// Queued-but-not-started stage tasks, by stage index.
    stage_depth: [AtomicU64; 4],
}

struct ConvRollup {
    runs: std::collections::BTreeMap<&'static str, u64>,
    iterations: Histogram,
}

impl ConvRollup {
    fn new() -> Self {
        ConvRollup {
            runs: std::collections::BTreeMap::new(),
            iterations: Histogram::new(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

impl Shared {
    /// Emit one structured JSONL request-log line (no-op when the
    /// daemon runs without a log). `fields` follow the fixed prefix
    /// `ts_ms`, `seq`.
    fn log_event(&self, seq: u64, fields: &[(&str, String)]) {
        let Some(log) = &self.log else { return };
        let mut all: Vec<(&str, String)> = Vec::with_capacity(fields.len() + 2);
        all.push(("ts_ms", now_ms().to_string()));
        all.push(("seq", seq.to_string()));
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        log.log(&json_line(&all));
    }
}

fn quoted(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// A running batch-simulation service. Dropping it drains gracefully.
pub struct Server {
    shared: Arc<Shared>,
    /// Batch mode: the scheduler thread. `None` in work-steal mode.
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Work-steal mode: the stage pool. `None` in batch mode.
    pool: Mutex<Option<WorkStealPool>>,
}

impl Server {
    pub fn start(cfg: ServerConfig) -> Server {
        Server::start_sharded(cfg, None, None)
    }

    /// As [`Server::start`], with an optional structured request log
    /// (one JSONL line per request; see DESIGN.md §12).
    pub fn start_logged(cfg: ServerConfig, log: Option<Arc<RequestLog>>) -> Server {
        Server::start_sharded(cfg, None, log)
    }

    /// As [`Server::start_logged`], optionally joining a consistent-hash
    /// shard cluster (see the `shard` module docs): capture misses on
    /// keys owned by a peer are forwarded instead of captured locally.
    pub fn start_sharded(
        cfg: ServerConfig,
        shard: Option<Shard>,
        log: Option<Arc<RequestLog>>,
    ) -> Server {
        let shared = Arc::new(Shared {
            cache: CaptureCache::new(cfg.cache_bytes),
            cfg,
            queue: Mutex::new(QueueState::default()),
            jobs_ready: Condvar::new(),
            svc: SvcStats::new(),
            log,
            next_seq: AtomicU64::new(1),
            conv: Mutex::new(ConvRollup::new()),
            shard,
            shard_counters: ShardCounters::default(),
            stage_depth: Default::default(),
        });
        let (scheduler, pool) = match cfg.sched {
            SchedMode::Batch => {
                let worker = Arc::clone(&shared);
                let scheduler = std::thread::Builder::new()
                    .name("sctmd-scheduler".into())
                    .spawn(move || scheduler_loop(&worker))
                    .expect("spawn scheduler thread");
                (Some(scheduler), None)
            }
            SchedMode::WorkSteal => {
                let workers = if cfg.workers > 0 {
                    cfg.workers
                } else {
                    service_threads()
                };
                (None, Some(WorkStealPool::new(workers)))
            }
        };
        Server {
            shared,
            scheduler: Mutex::new(scheduler),
            pool: Mutex::new(pool),
        }
    }

    pub fn config(&self) -> ServerConfig {
        self.shared.cfg
    }

    /// Enqueue a run. Returns the response channel, or the ready-made
    /// `busy`/`error` line when the queue is full or draining. Never
    /// blocks.
    pub fn submit(&self, req: RunRequest) -> Result<mpsc::Receiver<String>, String> {
        let cfg = self.shared.cfg;
        let now = Instant::now();
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        let timeout = req.timeout_ms.unwrap_or(cfg.default_timeout_ms);
        let deadline = now.checked_add(Duration::from_millis(timeout));
        let mut q = lock(&self.shared.queue);
        if q.draining {
            drop(q);
            let err = sctm_core::SctmError::InvalidSpec("server is shutting down".into());
            self.shared.svc.incr(SvcCounter::Rejected);
            self.shared.log_event(
                seq,
                &[
                    ("id", quoted(&req.id)),
                    ("verb", quoted("run")),
                    ("outcome", quoted("draining")),
                ],
            );
            return Err(error_response(&req.id, &err));
        }
        if q.jobs.len() >= cfg.queue_cap {
            drop(q);
            self.shared.svc.incr(SvcCounter::Rejected);
            self.shared.log_event(
                seq,
                &[
                    ("id", quoted(&req.id)),
                    ("verb", quoted("run")),
                    ("outcome", quoted("busy")),
                ],
            );
            return Err(proto::busy_response(&req.id, cfg.retry_after_ms));
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Job {
            req,
            seq,
            enqueued: now,
            deadline,
            reply: tx,
        });
        q.outstanding += 1;
        let depth = q.jobs.len() as u64;
        // Work-steal mode: hand the pool one probe task per accepted
        // job, while still holding the queue lock so a concurrent
        // drain cannot stop the pool between accept and dispatch.
        if self.shared.cfg.sched == SchedMode::WorkSteal {
            self.dispatch_probe();
        }
        drop(q);
        self.shared.svc.incr(SvcCounter::Accepted);
        self.shared.svc.note_queue_depth(depth);
        self.shared.jobs_ready.notify_all();
        Ok(rx)
    }

    /// Submit one probe-stage task to the work-steal pool. The task
    /// pops the oldest queued job (FIFO fairness for the probe stage;
    /// later stages ride the deques) and starts its pipeline.
    fn dispatch_probe(&self) {
        let pool = lock(&self.pool);
        let Some(pool) = pool.as_ref() else { return };
        let sh = Arc::clone(&self.shared);
        sh.stage_depth[STAGE_PROBE].fetch_add(1, Ordering::Relaxed);
        pool.submit(move |h| {
            sh.stage_depth[STAGE_PROBE].fetch_sub(1, Ordering::Relaxed);
            let job = lock(&sh.queue).jobs.pop_front();
            if let Some(job) = job {
                stage_probe(&sh, h, job);
            }
        });
    }

    /// Answer a peer's `fwd` request from this instance's own cache —
    /// the owner end of the forward hop. Runs on the connection thread
    /// (never a scheduler worker) and goes through the normal
    /// single-flight `get_or_capture`, so racing forwards from several
    /// peers and local requests for the same key collapse onto one
    /// capture. The owner never re-forwards: it is the end of the
    /// chain, so forwarding cannot loop.
    pub fn handle_fwd(&self, f: &FwdRequest) -> String {
        let e = &f.experiment;
        let key = CaptureKey::new(e.kernel.label(), e.system.side, e.ops_per_core, e.seed);
        self.shared
            .shard_counters
            .fwd_served
            .fetch_add(1, Ordering::Relaxed);
        let (log, hit) = self.shared.cache.get_or_capture(key, || {
            let _g = span("svc", "capture");
            e.capture()
        });
        let outcome = if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        let mix = match f.format {
            sctm_core::trace::TraceFormat::Sctf => &self.shared.shard_counters.fwd_sctf,
            sctm_core::trace::TraceFormat::Csv => &self.shared.shard_counters.fwd_csv,
        };
        mix.fetch_add(1, Ordering::Relaxed);
        proto::fwd_response(&f.id, outcome, &log, f.format)
    }

    /// Submit and wait for the response line.
    pub fn submit_blocking(&self, req: RunRequest) -> String {
        match self.submit(req) {
            Ok(rx) => rx
                .recv()
                .unwrap_or_else(|_| r#"{"status":"error","kind":"internal","message":"scheduler dropped the request"}"#.into()),
            Err(line) => line,
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Point-in-time copy of the service aggregate. Counters are
    /// individually monotone across successive calls.
    pub fn svc_snapshot(&self) -> sctm_obs::svc::SvcSnapshot {
        self.shared.svc.snapshot()
    }

    /// The structured request log, when the server was started with one.
    pub fn request_log(&self) -> Option<&RequestLog> {
        self.shared.log.as_deref()
    }

    /// Service telemetry as a run manifest in the `sctm-obs` schema:
    /// the full `srv.*` namespace of DESIGN.md §12 (lifecycle counters,
    /// per-phase latency histograms, cache economics, queue state).
    pub fn stats_manifest(&self) -> Manifest {
        let cs = self.shared.cache.stats();
        let mut m = Manifest::new();
        m.config("stats_version", SVC_STATS_VERSION);
        m.config("queue_cap", self.shared.cfg.queue_cap);
        m.config("cache_budget_bytes", self.shared.cfg.cache_bytes);
        m.metrics.counter_add("srv.cache.hits", cs.hits);
        m.metrics.counter_add("srv.cache.misses", cs.misses);
        m.metrics.counter_add("srv.cache.evictions", cs.evictions);
        m.metrics
            .counter_add("srv.cache.single_flight_waits", cs.single_flight_waits);
        m.metrics.gauge_set("srv.cache.entries", cs.entries as f64);
        m.metrics.gauge_set("srv.cache.bytes", cs.bytes as f64);
        // Mean resident size per entry (sctf-encoded bytes): the
        // at-a-glance capacity figure — budget / bytes_per_entry is how
        // many workloads stay warm. Zero while the cache is empty.
        let per_entry = if cs.entries > 0 {
            cs.bytes as f64 / cs.entries as f64
        } else {
            0.0
        };
        m.metrics.gauge_set("srv.cache.bytes_per_entry", per_entry);
        m.metrics
            .gauge_set("srv.queue.depth", self.queue_depth() as f64);
        {
            // Fixed verdict set, zeros included: the schema never
            // depends on which verdicts have occurred yet.
            let conv = lock(&self.shared.conv);
            for v in ConvergenceVerdict::ALL {
                let n = conv.runs.get(v.label()).copied().unwrap_or(0);
                m.metrics
                    .counter_add(format!("srv.conv.runs.{}", v.label()), n);
            }
            m.metrics
                .hist_merge("srv.conv.iterations", &conv.iterations);
        }
        // Scheduler occupancy: live pool counters in work-steal mode,
        // zeros in batch mode — the schema never depends on the mode.
        let ps = lock(&self.pool)
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();
        m.metrics.gauge_set("srv.sched.workers", ps.workers as f64);
        m.metrics.gauge_set("srv.sched.busy", ps.busy as f64);
        m.metrics.counter_add("srv.sched.steals", ps.steals);
        m.metrics.counter_add("srv.sched.tasks", ps.executed);
        for (i, stage) in STAGE_NAMES.iter().enumerate() {
            m.metrics.gauge_set(
                format!("srv.sched.queue.{stage}"),
                self.shared.stage_depth[i].load(Ordering::Relaxed) as f64,
            );
        }
        // Shard counters: zeros single-instance, same schema.
        let peers = self
            .shared
            .shard
            .as_ref()
            .map_or(0, |s| s.ring().peers().len());
        let sc = &self.shared.shard_counters;
        m.metrics.gauge_set("srv.shard.peers", peers as f64);
        m.metrics
            .counter_add("srv.shard.owned", sc.owned.load(Ordering::Relaxed));
        m.metrics
            .counter_add("srv.shard.forwarded", sc.forwarded.load(Ordering::Relaxed));
        m.metrics.counter_add(
            "srv.shard.fwd_served",
            sc.fwd_served.load(Ordering::Relaxed),
        );
        m.metrics.counter_add(
            "srv.shard.fwd_errors",
            sc.fwd_errors.load(Ordering::Relaxed),
        );
        m.metrics
            .counter_add("srv.shard.fwd_sctf", sc.fwd_sctf.load(Ordering::Relaxed));
        m.metrics
            .counter_add("srv.shard.fwd_csv", sc.fwd_csv.load(Ordering::Relaxed));
        self.shared.svc.snapshot().publish(&mut m.metrics);
        m
    }

    /// The whole service registry as Prometheus text exposition 0.0.4.
    pub fn prometheus_text(&self) -> String {
        sctm_obs::svc::prometheus_text(&self.stats_manifest().metrics)
    }

    /// Graceful drain: refuse new submissions, finish everything
    /// queued, then stop the scheduler. Idempotent.
    pub fn drain(&self) {
        {
            let mut q = lock(&self.shared.queue);
            q.draining = true;
        }
        self.shared.jobs_ready.notify_all();
        // Batch mode: the scheduler thread drains the queue then exits.
        let handle = lock(&self.scheduler).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        // Work-steal mode: every accepted request holds an
        // `outstanding` tick until its reply is sent; wait for zero,
        // then stop the pool (its Drop finishes queued tasks first).
        let pool = lock(&self.pool).take();
        if let Some(pool) = pool {
            let mut q = lock(&self.shared.queue);
            while q.outstanding > 0 {
                q = self
                    .shared
                    .jobs_ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
            drop(q);
            drop(pool);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut q = lock(&shared.queue);
            while q.jobs.is_empty() && !q.draining {
                q = shared.jobs_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.jobs.is_empty() {
                return; // draining and empty: done
            }
            q.jobs.drain(..).collect()
        };

        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            match job.deadline {
                Some(d) if d <= now => finish_timeout(shared, job, now),
                _ => live.push(job),
            }
        }

        // The batch runs on the deterministic pool: results land in
        // input order and are bit-identical to serial execution, so
        // concurrency never changes an answer.
        let jobs: Vec<_> = live
            .into_iter()
            .map(|job| {
                let shared = Arc::clone(shared);
                move || {
                    let start = Instant::now();
                    let queue_us = us(start.duration_since(job.enqueued));
                    shared.svc.enter();
                    let done = run_job(&shared, &job.req);
                    shared.svc.exit();
                    finish_job(&shared, job, queue_us, done);
                }
            })
            .collect();
        par_map(jobs);
    }
}

/// Answer a request whose queue deadline expired before it ran, with
/// full telemetry. Shared by both scheduler modes.
fn finish_timeout(shared: &Shared, job: Job, now: Instant) {
    let waited = now.duration_since(job.enqueued);
    shared.svc.incr(SvcCounter::TimedOut);
    shared.svc.record_us(SvcPhase::Queue, us(waited));
    shared.svc.record_us(SvcPhase::Total, us(waited));
    shared.log_event(
        job.seq,
        &[
            ("id", quoted(&job.req.id)),
            ("verb", quoted("run")),
            ("outcome", quoted("timeout")),
            ("queue_us", us(waited).to_string()),
            ("total_us", us(waited).to_string()),
        ],
    );
    let _ = job
        .reply
        .send(timeout_response(&job.req.id, waited.as_millis()));
    note_answered(shared);
}

/// Fold one finished request into counters, conv rollup, phase
/// histograms, and the request log, and send its reply. Shared by both
/// scheduler modes; the counter-before-reply ordering is the `stats`
/// read-your-writes contract.
fn finish_job(shared: &Shared, job: Job, queue_us: u64, done: JobDone) {
    // Counters land before the reply: a client that polls `stats`
    // after receiving its answer always sees itself counted (the
    // channel send/recv pair orders the relaxed stores for the
    // receiver).
    let svc = &shared.svc;
    svc.incr(SvcCounter::Completed);
    match done.cache {
        CacheOutcome::Bypass => svc.incr(SvcCounter::CacheBypass),
        CacheOutcome::Hit | CacheOutcome::Miss => {}
    }
    if let Some(kind) = done.error_kind {
        svc.incr(SvcCounter::Errors);
        if kind == "budget-exhausted" {
            svc.incr(SvcCounter::BudgetExhausted);
        }
    }
    // Conv rollup lands before the reply for the same reason the
    // counters above do: a client polling `stats` after its answer
    // sees itself counted.
    if let Some(v) = done.verdict {
        let mut conv = lock(&shared.conv);
        *conv.runs.entry(v).or_insert(0) += 1;
        conv.iterations.record(done.conv_iterations);
    }
    let respond0 = Instant::now();
    let _ = job.reply.send(done.line);
    let respond_us = us(respond0.elapsed());
    let total_us = us(job.enqueued.elapsed());
    svc.record_us(SvcPhase::Queue, queue_us);
    svc.record_us(SvcPhase::CacheProbe, done.probe_us);
    svc.record_us(SvcPhase::Execute, done.execute_us);
    svc.record_us(SvcPhase::Respond, respond_us);
    svc.record_us(SvcPhase::Total, total_us);

    let mut fields: Vec<(&str, String)> = vec![
        ("id", quoted(&job.req.id)),
        ("verb", quoted("run")),
        (
            "outcome",
            quoted(if done.error_kind.is_some() {
                "error"
            } else {
                "ok"
            }),
        ),
        ("cache", quoted(done.cache.label())),
    ];
    if let Some(key) = done.key_prefix {
        fields.push(("key", quoted(&key)));
    }
    if let Some(kind) = done.error_kind {
        fields.push(("error_kind", quoted(kind)));
    }
    if let Some(v) = done.verdict {
        fields.push(("verdict", quoted(v)));
    }
    fields.push(("queue_us", queue_us.to_string()));
    fields.push(("probe_us", done.probe_us.to_string()));
    fields.push(("execute_us", done.execute_us.to_string()));
    fields.push(("respond_us", respond_us.to_string()));
    fields.push(("total_us", total_us.to_string()));
    shared.log_event(job.seq, &fields);
    note_answered(shared);
}

/// Release one `outstanding` tick after a reply (or timeout drop) and
/// wake a drain that may be waiting for the count to reach zero.
fn note_answered(shared: &Shared) {
    let mut q = lock(&shared.queue);
    q.outstanding = q.outstanding.saturating_sub(1);
    drop(q);
    shared.jobs_ready.notify_all();
}

/// What one executed request produced, response line plus the
/// telemetry the scheduler folds into [`SvcStats`] and the request log.
struct JobDone {
    line: String,
    cache: CacheOutcome,
    /// First 8 hex digits of the [`CaptureKey`] (`None` on bypass) —
    /// enough to correlate log lines sharing a capture without leaking
    /// a reversible workload description.
    key_prefix: Option<String>,
    error_kind: Option<&'static str>,
    /// Cache resolution time, excluding any capture it triggered.
    probe_us: u64,
    /// Simulation work: capture (on a miss) plus replay/execute.
    execute_us: u64,
    /// Convergence verdict label (self-correction runs only).
    verdict: Option<&'static str>,
    /// Self-correction iterations the run took (0 for other modes).
    conv_iterations: u64,
}

/// Produce the capture for `key`: locally when this instance owns the
/// key (or runs single-instance), otherwise by forwarding to the
/// owning peer. Runs as the single-flight producer, so per instance at
/// most one capture/forward per key is in flight; an `Err` releases
/// the pending slot (drop guard) and surfaces a typed error.
fn produce_capture(
    shared: &Shared,
    e: &sctm_core::Experiment,
    id: &str,
    key: CaptureKey,
) -> Result<TraceLog, SctmError> {
    if let Some(shard) = &shared.shard {
        let owner = shard.ring().owner(key);
        if owner != shard.ring().self_addr() {
            let owner = owner.to_string();
            let _g = span("svc", "fwd");
            return match shard.fetch_from_owner(&owner, e, id) {
                Ok((log, _peer_outcome)) => {
                    shared
                        .shard_counters
                        .forwarded
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(log)
                }
                Err(err) => {
                    shared
                        .shard_counters
                        .fwd_errors
                        .fetch_add(1, Ordering::Relaxed);
                    Err(err)
                }
            };
        }
        shared.shard_counters.owned.fetch_add(1, Ordering::Relaxed);
    }
    let _g = span("svc", "capture");
    Ok(e.capture())
}

/// Execute one request, satisfying trace-mode captures from the cache.
fn run_job(shared: &Shared, req: &RunRequest) -> JobDone {
    let wall0 = Instant::now();
    let e = &req.experiment;
    let traceless = matches!(req.spec.mode, Mode::ExecutionDriven | Mode::Online { .. });
    let (outcome, cache, key_prefix, probe_us, mut execute_us) = if traceless {
        let _g = span("svc", "execute");
        let x0 = Instant::now();
        let outcome = e.execute(&req.spec);
        (outcome, CacheOutcome::Bypass, None, 0, us(x0.elapsed()))
    } else {
        let key = CaptureKey::new(e.kernel.label(), e.system.side, e.ops_per_core, e.seed);
        let key_prefix = Some(format!("{:08x}", key.0 >> 32));
        let mut capture = Duration::ZERO;
        let probe0 = Instant::now();
        let fetched = {
            let _g = span("svc", "cache_probe");
            shared.cache.try_get_or_capture(key, || {
                let c0 = Instant::now();
                let t = produce_capture(shared, e, &req.id, key);
                capture = c0.elapsed();
                t
            })
        };
        let (log, hit) = match fetched {
            Ok(x) => x,
            Err(err) => {
                // A failed capture (in practice: a failed forward) is a
                // typed error for this request; the pending slot was
                // released so the next request retries.
                return JobDone {
                    line: error_response(&req.id, &err),
                    cache: CacheOutcome::Miss,
                    key_prefix,
                    error_kind: Some(error_kind(&err)),
                    probe_us: us(probe0.elapsed().saturating_sub(capture)),
                    execute_us: us(capture),
                    verdict: None,
                    conv_iterations: 0,
                };
            }
        };
        // Probe time is cache resolution only; the capture a miss
        // triggers is execution work and accounted there.
        let probe = probe0.elapsed().saturating_sub(capture);
        let cache = if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        let x0 = Instant::now();
        let outcome = {
            let _g = span("svc", "execute");
            e.execute_seeded(&req.spec, Some(&log))
        };
        (
            outcome,
            cache,
            key_prefix,
            us(probe),
            us(capture + x0.elapsed()),
        )
    };
    match outcome {
        Ok(out) => {
            let line = ok_response(
                &req.id,
                wall0.elapsed().as_nanos(),
                cache,
                &result_json(&out.report, e),
            );
            // Rendering the manifest is execution work too.
            execute_us = us(wall0.elapsed());
            JobDone {
                line,
                cache,
                key_prefix,
                error_kind: None,
                probe_us,
                execute_us,
                verdict: out.report.verdict.map(|v| v.label()),
                conv_iterations: out.report.iterations.as_ref().map_or(0, |v| v.len() as u64),
            }
        }
        Err(err) => JobDone {
            line: error_response(&req.id, &err),
            cache,
            key_prefix,
            error_kind: Some(error_kind(&err)),
            probe_us,
            execute_us,
            verdict: None,
            conv_iterations: 0,
        },
    }
}

/// Per-request state threaded through the work-steal stage pipeline.
/// Built at probe, completed at render; each stage hands it to the
/// next via the worker's own deque.
struct StageCtx {
    job: Job,
    queue_us: u64,
    /// When the probe stage began — the staged analogue of batch
    /// `run_job`'s wall clock zero.
    started: Instant,
    probe_us: u64,
    /// Accumulated simulation work so far (capture/forward, replay).
    execute_us: u64,
    cache: CacheOutcome,
    key: Option<CaptureKey>,
    key_prefix: Option<String>,
    log: Option<Arc<TraceLog>>,
    outcome: Option<Result<sctm_core::RunOutcome, SctmError>>,
}

/// Queue `ctx` for `stage` on this worker's own deque (LIFO keeps the
/// request hot; an idle peer may steal it), with depth accounting and
/// a Perfetto `sched` span around the stage body.
fn spawn_stage(shared: &Arc<Shared>, h: &WorkerHandle<'_>, stage: usize, ctx: StageCtx) {
    shared.stage_depth[stage].fetch_add(1, Ordering::Relaxed);
    let sh = Arc::clone(shared);
    h.push_local(move |h2| {
        sh.stage_depth[stage].fetch_sub(1, Ordering::Relaxed);
        let _g = span("sched", STAGE_NAMES[stage]);
        match stage {
            STAGE_CAPTURE => stage_capture(&sh, h2, ctx),
            STAGE_REPLAY => stage_replay(&sh, h2, ctx),
            STAGE_RENDER => stage_render(&sh, ctx),
            other => unreachable!("stage {other} is never queued"),
        }
    });
}

/// Stage 1 — deadline check and non-blocking cache probe. A hit skips
/// straight to replay; a cold or in-flight key goes to the capture
/// stage (which joins the single-flight there, off this fast path).
fn stage_probe(shared: &Arc<Shared>, h: &WorkerHandle<'_>, job: Job) {
    let _g = span("sched", STAGE_NAMES[STAGE_PROBE]);
    let now = Instant::now();
    if let Some(d) = job.deadline {
        if d <= now {
            finish_timeout(shared, job, now);
            return;
        }
    }
    let queue_us = us(now.duration_since(job.enqueued));
    shared.svc.enter();
    let traceless = matches!(
        job.req.spec.mode,
        Mode::ExecutionDriven | Mode::Online { .. }
    );
    let mut ctx = StageCtx {
        job,
        queue_us,
        started: now,
        probe_us: 0,
        execute_us: 0,
        cache: CacheOutcome::Bypass,
        key: None,
        key_prefix: None,
        log: None,
        outcome: None,
    };
    if traceless {
        spawn_stage(shared, h, STAGE_REPLAY, ctx);
        return;
    }
    let e = &ctx.job.req.experiment;
    let key = CaptureKey::new(e.kernel.label(), e.system.side, e.ops_per_core, e.seed);
    ctx.key = Some(key);
    ctx.key_prefix = Some(format!("{:08x}", key.0 >> 32));
    let probe0 = Instant::now();
    let probed = {
        let _g = span("svc", "cache_probe");
        shared.cache.try_get(key)
    };
    ctx.probe_us = us(probe0.elapsed());
    match probed {
        Some(log) => {
            ctx.cache = CacheOutcome::Hit;
            ctx.log = Some(log);
            spawn_stage(shared, h, STAGE_REPLAY, ctx);
        }
        None => spawn_stage(shared, h, STAGE_CAPTURE, ctx),
    }
}

/// Stage 2 — join the single-flight and produce the capture if this
/// request drew the short straw (locally, or via the shard forward
/// hop). Blocking on another request's in-flight capture parks this
/// worker only; the producer is always actively running on some
/// worker (or a peer), so the wait is on live progress, never on
/// queued work — no scheduling deadlock at any worker count.
fn stage_capture(shared: &Arc<Shared>, h: &WorkerHandle<'_>, mut ctx: StageCtx) {
    let key = ctx.key.expect("capture stage requires a key");
    let c0 = Instant::now();
    let mut produce_time = Duration::ZERO;
    let fetched = {
        let _g = span("svc", "cache_probe");
        let e = &ctx.job.req.experiment;
        let id = &ctx.job.req.id;
        shared.cache.try_get_or_capture(key, || {
            let p0 = Instant::now();
            let t = produce_capture(shared, e, id, key);
            produce_time = p0.elapsed();
            t
        })
    };
    // Resolution (including any single-flight wait) counts as probe
    // time; the production itself is execution work — same accounting
    // as the batch path.
    ctx.probe_us += us(c0.elapsed().saturating_sub(produce_time));
    ctx.execute_us += us(produce_time);
    match fetched {
        Ok((log, hit)) => {
            ctx.cache = if hit {
                CacheOutcome::Hit
            } else {
                CacheOutcome::Miss
            };
            ctx.log = Some(log);
            spawn_stage(shared, h, STAGE_REPLAY, ctx);
        }
        Err(err) => {
            ctx.cache = CacheOutcome::Miss;
            ctx.outcome = Some(Err(err));
            spawn_stage(shared, h, STAGE_RENDER, ctx);
        }
    }
}

/// Stage 3 — run the simulation (replay against the capture, or direct
/// execution for traceless modes).
fn stage_replay(shared: &Arc<Shared>, h: &WorkerHandle<'_>, mut ctx: StageCtx) {
    let x0 = Instant::now();
    let outcome = {
        let _g = span("svc", "execute");
        let req = &ctx.job.req;
        match &ctx.log {
            Some(log) => req.experiment.execute_seeded(&req.spec, Some(log)),
            None => req.experiment.execute(&req.spec),
        }
    };
    ctx.execute_us += us(x0.elapsed());
    ctx.outcome = Some(outcome);
    spawn_stage(shared, h, STAGE_RENDER, ctx);
}

/// Stage 4 — render the response line and fold the request into
/// telemetry. The `"result"` object is computed from simulated
/// quantities only, so its bytes do not depend on which worker ran
/// which stage, or in what order.
fn stage_render(shared: &Arc<Shared>, ctx: StageCtx) {
    let StageCtx {
        job,
        queue_us,
        started,
        probe_us,
        execute_us,
        cache,
        key_prefix,
        outcome,
        ..
    } = ctx;
    let done = match outcome.expect("render stage requires an outcome") {
        Ok(out) => JobDone {
            line: ok_response(
                &job.req.id,
                started.elapsed().as_nanos(),
                cache,
                &result_json(&out.report, &job.req.experiment),
            ),
            cache,
            key_prefix,
            error_kind: None,
            // Rendering counts as execution work, as in the batch path.
            probe_us,
            execute_us: us(started.elapsed()),
            verdict: out.report.verdict.map(|v| v.label()),
            conv_iterations: out.report.iterations.as_ref().map_or(0, |v| v.len() as u64),
        },
        Err(err) => JobDone {
            line: error_response(&job.req.id, &err),
            cache,
            key_prefix,
            error_kind: Some(error_kind(&err)),
            probe_us,
            execute_us,
            verdict: None,
            conv_iterations: 0,
        },
    };
    shared.svc.exit();
    finish_job(shared, job, queue_us, done);
}

/// A response owed to the client, in request order.
enum Pending {
    Ready(String),
    Waiting(mpsc::Receiver<String>),
}

fn recv_line(rx: &mpsc::Receiver<String>) -> String {
    rx.recv().unwrap_or_else(|_| {
        r#"{"status":"error","kind":"internal","message":"scheduler dropped the request"}"#.into()
    })
}

/// The `stats` verb's response line: versioned envelope around the
/// telemetry manifest.
fn stats_line(server: &Server) -> String {
    format!(
        r#"{{"status":"ok","version":{},"stats":{}}}"#,
        SVC_STATS_VERSION,
        server.stats_manifest().to_json_compact()
    )
}

/// Serve newline-delimited requests from `reader`, writing one response
/// line per request to `writer` **in request order**. Returns `true`
/// when the stream asked for shutdown.
///
/// Run responses are buffered so consecutive `run` lines schedule as
/// one parallel batch; completed head-of-line responses stream out as
/// soon as they are ready, and control verbs (`ping`, `stats`,
/// `metrics`, `shutdown`) flush everything still owed first, so their
/// answers observe all preceding runs. The `metrics` response is the
/// one multi-line answer: Prometheus text terminated by a `# EOF` line.
///
/// A reader that times out (`WouldBlock`/`TimedOut`, e.g. a `TcpStream`
/// with a read timeout) is treated as *idle*, not dead: completed
/// responses are flushed and the read retried, so a lockstep client —
/// one request, wait for the answer — gets its response without having
/// to send another byte. Bytes of a partially received line survive
/// the retry.
///
/// A line starting with `GET ` switches the connection to one-shot
/// HTTP: `GET /metrics` and `GET /stats` answer with an `HTTP/1.0`
/// response and close, so standard Prometheus scrapers can poll the
/// same TCP port the line protocol lives on.
pub fn serve_lines<R: BufRead, W: Write>(
    reader: R,
    writer: &mut W,
    server: &Server,
) -> std::io::Result<bool> {
    let mut pending: VecDeque<Pending> = VecDeque::new();

    let flush_all = |pending: &mut VecDeque<Pending>, writer: &mut W| -> std::io::Result<()> {
        while let Some(p) = pending.pop_front() {
            let line = match p {
                Pending::Ready(line) => line,
                Pending::Waiting(rx) => recv_line(&rx),
            };
            writeln!(writer, "{line}")?;
        }
        writer.flush()
    };
    let flush_ready = |pending: &mut VecDeque<Pending>, writer: &mut W| -> std::io::Result<()> {
        let mut wrote = false;
        loop {
            match pending.front() {
                Some(Pending::Ready(_)) => {
                    if let Some(Pending::Ready(line)) = pending.pop_front() {
                        writeln!(writer, "{line}")?;
                        wrote = true;
                    }
                }
                Some(Pending::Waiting(rx)) => match rx.try_recv() {
                    Ok(line) => {
                        pending.pop_front();
                        writeln!(writer, "{line}")?;
                        wrote = true;
                    }
                    Err(_) => break,
                },
                None => break,
            }
        }
        if wrote {
            writer.flush()?;
        }
        Ok(())
    };

    let idle = |e: &std::io::Error| {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    };
    let mut reader = reader;
    let mut buf = String::new();
    loop {
        // `read_line` appends whatever arrived before a timeout, so a
        // half-received request accumulates in `buf` across retries.
        match reader.read_line(&mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if idle(&e) => {
                flush_ready(&mut pending, writer)?;
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        let owned = std::mem::take(&mut buf);
        let line = owned.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() {
            continue;
        }
        if line.starts_with("GET ") {
            // One-shot HTTP scrape; drain the request headers first.
            let mut hdr = String::new();
            loop {
                match reader.read_line(&mut hdr) {
                    Ok(0) => break,
                    Ok(_) if hdr.trim().is_empty() => break,
                    Ok(_) => hdr.clear(),
                    Err(e) if idle(&e) || e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            flush_all(&mut pending, writer)?;
            return serve_http_get(line, writer, server).map(|()| false);
        }
        match parse_request(line) {
            Err(err) => pending.push_back(Pending::Ready(error_response("", &err))),
            Ok(Request::Run(req)) => match server.submit(*req) {
                Ok(rx) => pending.push_back(Pending::Waiting(rx)),
                Err(line) => pending.push_back(Pending::Ready(line)),
            },
            Ok(Request::Fwd(freq)) => {
                // Peer capture fetch: answered inline on this
                // connection thread (it may block in the owner's
                // single-flight, never on a scheduler worker).
                flush_all(&mut pending, writer)?;
                writeln!(writer, "{}", server.handle_fwd(&freq))?;
                writer.flush()?;
            }
            Ok(Request::Ping) => {
                flush_all(&mut pending, writer)?;
                writeln!(writer, r#"{{"status":"ok","pong":true}}"#)?;
                writer.flush()?;
            }
            Ok(Request::Stats) => {
                flush_all(&mut pending, writer)?;
                server.shared.svc.incr(SvcCounter::StatsServed);
                writeln!(writer, "{}", stats_line(server))?;
                writer.flush()?;
            }
            Ok(Request::Metrics) => {
                flush_all(&mut pending, writer)?;
                server.shared.svc.incr(SvcCounter::MetricsServed);
                writer.write_all(server.prometheus_text().as_bytes())?;
                writeln!(writer, "# EOF")?;
                writer.flush()?;
            }
            Ok(Request::Shutdown) => {
                flush_all(&mut pending, writer)?;
                writeln!(writer, r#"{{"status":"ok","shutting_down":true}}"#)?;
                writer.flush()?;
                return Ok(true);
            }
        }
        flush_ready(&mut pending, writer)?;
    }
    flush_all(&mut pending, writer)?;
    Ok(false)
}

/// Answer one HTTP GET (`/metrics`, `/stats`) and close. HTTP/1.0 +
/// `Connection: close` keeps this a strict one-shot: no keep-alive, no
/// chunking, nothing for a scraper to misread.
fn serve_http_get<W: Write>(
    request_line: &str,
    writer: &mut W,
    server: &Server,
) -> std::io::Result<()> {
    let path = request_line
        .strip_prefix("GET ")
        .unwrap_or("")
        .split_whitespace()
        .next()
        .unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => {
            server.shared.svc.incr(SvcCounter::MetricsServed);
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                server.prometheus_text(),
            )
        }
        "/stats" => {
            server.shared.svc.incr(SvcCounter::StatsServed);
            (
                "200 OK",
                "application/json",
                format!("{}\n", stats_line(server)),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics or /stats\n".to_string(),
        ),
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Serve the line protocol over TCP until a connection sends
/// `shutdown`. One thread per connection; the accept loop polls so it
/// can notice the shutdown flag. Returns after the graceful drain.
pub fn serve_tcp(listener: std::net::TcpListener, server: Server) -> std::io::Result<()> {
    use std::sync::atomic::AtomicBool;
    listener.set_nonblocking(true)?;
    // The receive timeout makes `serve_lines` wake up and flush
    // completed responses to lockstep clients while the connection is
    // otherwise idle. Configurable (`--read-timeout-ms` /
    // `SCTM_READ_TIMEOUT_MS`): slower wakeups trade response latency
    // for idle wakeup rate; 0 is clamped to 1 ms because a `None`
    // timeout would never flush.
    let read_timeout = Duration::from_millis(server.config().read_timeout_ms.max(1));
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || {
                    stream.set_nonblocking(false).ok();
                    stream.set_read_timeout(Some(read_timeout)).ok();
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let mut write_half = stream;
                    let reader = std::io::BufReader::new(read_half);
                    if let Ok(true) = serve_lines(reader, &mut write_half, &server) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    server.drain();
    Ok(())
}
