//! The `sctmd` line protocol.
//!
//! Requests are single lines of whitespace-separated tokens: a verb
//! followed by `key=value` pairs. Responses are single-line JSON.
//!
//! ```text
//! run kernel=fft net=omesh side=4 ops=600 seed=1 mode=sctm iters=4 id=r1
//! stats
//! metrics
//! ping
//! shutdown
//! ```
//!
//! A `run` response carries bookkeeping first (status, id, wall time,
//! whether the capture cache hit) and ends with a `"result"` object —
//! the run manifest in the `sctm-obs` schema, containing **only
//! simulated quantities**. Everything host-dependent (wall clocks,
//! cache state) stays outside `"result"`, so the result object is
//! byte-identical between a cold and a warm run, between the service
//! and a direct [`Experiment::execute`], and at any `SCTM_THREADS`.

use sctm_core::trace::{TraceFormat, TraceLog, TraceStore};
use sctm_core::{
    kernel_from_label, Experiment, Mode, NetworkKind, RunReport, RunSpec, SctmError, SystemConfig,
};
use sctm_engine::time::SimTime;
use sctm_obs::{json_escape, IterTelemetry, Manifest};

/// One parsed `run` request, ready to schedule.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// Echoed verbatim in the response so clients can match lines.
    pub id: String,
    pub experiment: Experiment,
    pub spec: RunSpec,
    /// Per-request queue deadline; `None` uses the server default.
    pub timeout_ms: Option<u64>,
}

/// A peer-to-peer capture fetch in shard mode: the non-owning instance
/// asks the key's owner to produce (or serve) the capture. Carries the
/// workload fields, not the hash, so the owner recomputes the FNV key
/// itself — a version-skewed peer can never poison a foreign cache
/// slot with a mislabeled trace.
#[derive(Clone, Debug)]
pub struct FwdRequest {
    /// Originating request id, echoed for log correlation.
    pub id: String,
    /// Workload side of the capture. The network field is irrelevant
    /// (captures run on the analytic model) and fixed to the default.
    pub experiment: Experiment,
    /// Wire encoding the requester wants the trace back in (`fmt=` key;
    /// CSV when absent, so a version-skewed older peer still works).
    pub format: TraceFormat,
}

/// Any protocol line.
#[derive(Clone, Debug)]
pub enum Request {
    Run(Box<RunRequest>),
    /// Shard-mode capture fetch from a peer instance.
    Fwd(Box<FwdRequest>),
    /// Versioned JSON telemetry snapshot (`SVC_STATS_VERSION`).
    Stats,
    /// Prometheus text exposition 0.0.4; the only multi-line response,
    /// terminated by a `# EOF` line.
    Metrics,
    Ping,
    Shutdown,
}

fn invalid(msg: String) -> SctmError {
    SctmError::InvalidSpec(msg)
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, SctmError> {
    v.parse()
        .map_err(|_| invalid(format!("{key}={v} is not a valid number")))
}

/// Parse one request line. Every failure is a typed [`SctmError`] so
/// the server can answer with a structured error response instead of
/// dropping the connection.
pub fn parse_request(line: &str) -> Result<Request, SctmError> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or_else(|| invalid("empty request".into()))?;
    // Control verbs take no arguments — strict, so a typo'd `run`
    // payload can't silently become a stats poll.
    let bare = |req: Request, mut toks: std::str::SplitWhitespace<'_>| match toks.next() {
        None => Ok(req),
        Some(tok) => Err(invalid(format!(
            "verb '{verb}' takes no arguments (got '{tok}')"
        ))),
    };
    match verb {
        "stats" => return bare(Request::Stats, toks),
        "metrics" => return bare(Request::Metrics, toks),
        "ping" => return bare(Request::Ping, toks),
        "shutdown" => return bare(Request::Shutdown, toks),
        "fwd" => return parse_fwd(toks),
        "run" => {}
        other => return Err(invalid(format!("unknown verb '{other}'"))),
    }

    let mut kernel = None;
    let mut net = "omesh";
    let mut side = 4usize;
    let mut ops = 600usize;
    let mut seed = 1u64;
    let mut mode_label = "sctm";
    let mut iters = 4usize;
    let mut epoch_us = 5u64;
    let mut replay = false;
    let mut profile = false;
    let mut damping = None;
    let mut epsilon = None;
    let mut id = String::new();
    let mut timeout_ms = None;

    for tok in toks {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| invalid(format!("token '{tok}' is not key=value")))?;
        match k {
            "kernel" => kernel = Some(v.to_string()),
            "net" => net = v,
            "side" => side = parse_num(k, v)?,
            "ops" => ops = parse_num(k, v)?,
            "seed" => seed = parse_num(k, v)?,
            "mode" => mode_label = v,
            "iters" => iters = parse_num(k, v)?,
            "epoch_us" => epoch_us = parse_num(k, v)?,
            "replay" => replay = v == "1" || v == "true",
            "profile" => profile = v == "1" || v == "true",
            "damping" => damping = Some(parse_num::<f64>(k, v)?),
            "epsilon" => epsilon = Some(parse_num::<f64>(k, v)?),
            "id" => id = v.to_string(),
            "timeout_ms" => timeout_ms = Some(parse_num(k, v)?),
            other => return Err(invalid(format!("unknown key '{other}'"))),
        }
    }
    // `net` borrows from `line`; resolve before moving on.
    let net = NetworkKind::from_label(net)?;
    let kernel = kernel.ok_or_else(|| invalid("run needs kernel=<label>".into()))?;
    let kernel = kernel_from_label(&kernel)?;

    let mode = match mode_label {
        "exec-driven" => Mode::ExecutionDriven,
        "classic-trace" => Mode::ClassicTrace,
        "oracle-trace" => Mode::OracleTrace,
        "sctm" => Mode::SelfCorrection { max_iters: iters },
        "online" => Mode::Online {
            epoch: SimTime::from_us(epoch_us),
        },
        other => return Err(invalid(format!("unknown mode '{other}'"))),
    };
    let mut spec = RunSpec::new(mode);
    spec.replay_only = replay;
    spec.profile = profile;
    spec.damping = damping;
    spec.factor_epsilon = epsilon;
    // Reject before queueing, not after a scheduling round trip.
    spec.validate()?;

    let experiment = Experiment::new(SystemConfig::try_new(side, net)?, kernel)
        .with_ops(ops)
        .with_seed(seed);
    Ok(Request::Run(Box::new(RunRequest {
        id,
        experiment,
        spec,
        timeout_ms,
    })))
}

/// Parse the tokens after a `fwd` verb:
/// `fwd kernel=<label> side=N ops=N seed=N id=<id> [fmt=csv|sctf]`.
/// Same defaults as `run` for the workload fields; only the
/// capture-identity keys (plus the wire format) are accepted — a `fwd`
/// can never smuggle replay knobs.
fn parse_fwd(toks: std::str::SplitWhitespace<'_>) -> Result<Request, SctmError> {
    let mut kernel = None;
    let mut side = 4usize;
    let mut ops = 600usize;
    let mut seed = 1u64;
    let mut id = String::new();
    let mut format = TraceFormat::Csv;
    for tok in toks {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| invalid(format!("token '{tok}' is not key=value")))?;
        match k {
            "kernel" => kernel = Some(v.to_string()),
            "side" => side = parse_num(k, v)?,
            "ops" => ops = parse_num(k, v)?,
            "seed" => seed = parse_num(k, v)?,
            "id" => id = v.to_string(),
            "fmt" => {
                format = match v {
                    "csv" => TraceFormat::Csv,
                    "sctf" => TraceFormat::Sctf,
                    other => return Err(invalid(format!("unknown trace format '{other}'"))),
                }
            }
            other => return Err(invalid(format!("unknown fwd key '{other}'"))),
        }
    }
    let kernel = kernel.ok_or_else(|| invalid("fwd needs kernel=<label>".into()))?;
    let kernel = kernel_from_label(&kernel)?;
    let experiment = Experiment::new(SystemConfig::try_new(side, NetworkKind::Omesh)?, kernel)
        .with_ops(ops)
        .with_seed(seed);
    Ok(Request::Fwd(Box::new(FwdRequest {
        id,
        experiment,
        format,
    })))
}

/// Render the `fwd` request line for a capture owned by a peer, asking
/// for the trace back in `format`.
pub fn fwd_line(exp: &Experiment, id: &str, format: TraceFormat) -> String {
    format!(
        "fwd kernel={} side={} ops={} seed={} fmt={} id={}",
        exp.kernel.label(),
        exp.system.side,
        exp.ops_per_core,
        exp.seed,
        format.label(),
        // Ids are client-controlled and may contain anything; strip
        // whitespace so the line stays one line of clean tokens.
        id.replace(char::is_whitespace, "_"),
    )
}

/// Success reply to a `fwd`: the capture in the requested wire format —
/// `trace_csv` carries JSON-escaped trace CSV, `trace_sctf` carries the
/// base64 of the binary sctf container — plus whether the owner's cache
/// already had it. Both ends share the on-disk codecs, so a forwarded
/// trace is byte-identical to a saved one.
pub fn fwd_response(id: &str, cache: CacheOutcome, log: &TraceLog, format: TraceFormat) -> String {
    match format {
        TraceFormat::Csv => format!(
            r#"{{"status":"ok","id":"{}","cache":"{}","trace_csv":"{}"}}"#,
            json_escape(id),
            cache.label(),
            json_escape(&log.to_csv_string())
        ),
        TraceFormat::Sctf => format!(
            r#"{{"status":"ok","id":"{}","cache":"{}","trace_sctf":"{}"}}"#,
            json_escape(id),
            cache.label(),
            // Base64 needs no JSON escaping: its alphabet is disjoint
            // from every character JSON strings escape.
            sctm_client::wire::b64_encode(&sctm_core::trace::sctf::to_sctf_bytes(log))
        ),
    }
}

/// Decode a peer's `fwd` reply, whichever wire format it used. Total:
/// any malformed, truncated, or error frame becomes a typed
/// [`SctmError`] — the capture cache's pending slot is released by the
/// caller's error path, never poisoned.
pub fn parse_fwd_response(line: &str) -> Result<(TraceLog, CacheOutcome), SctmError> {
    use sctm_client::wire::{b64_decode, json_str_field};
    let peer_err = |msg: String| SctmError::Io(msg);
    let status = json_str_field(line, "status")
        .ok_or_else(|| peer_err("peer fwd reply has no status field".into()))?;
    match status.as_str() {
        "ok" => {}
        "error" => {
            let kind = json_str_field(line, "kind").unwrap_or_else(|| "unknown".into());
            let message = json_str_field(line, "message").unwrap_or_default();
            return Err(peer_err(format!("peer fwd error [{kind}]: {message}")));
        }
        other => return Err(peer_err(format!("peer fwd reply has status '{other}'"))),
    }
    let cache = match json_str_field(line, "cache").as_deref() {
        Some("hit") => CacheOutcome::Hit,
        Some("miss") => CacheOutcome::Miss,
        other => {
            return Err(peer_err(format!(
                "peer fwd reply has cache outcome {other:?}"
            )))
        }
    };
    let log = if let Some(b64) = json_str_field(line, "trace_sctf") {
        let bytes =
            b64_decode(&b64).ok_or_else(|| peer_err("peer fwd reply has bad base64".into()))?;
        TraceStore::decode(&bytes).map_err(SctmError::Trace)?
    } else {
        let csv = json_str_field(line, "trace_csv")
            .ok_or_else(|| peer_err("peer fwd reply has no trace payload".into()))?;
        TraceLog::from_csv_str(&csv).map_err(SctmError::Trace)?
    };
    Ok((log, cache))
}

/// Stable machine-readable tag for each [`SctmError`] variant.
pub fn error_kind(err: &SctmError) -> &'static str {
    match err {
        SctmError::InvalidSpec(_) => "invalid-spec",
        SctmError::InvalidConfig(_) => "invalid-config",
        SctmError::UnknownKernel(_) => "unknown-kernel",
        SctmError::UnknownNetwork(_) => "unknown-network",
        SctmError::Trace(_) => "trace",
        SctmError::BudgetExhausted { .. } => "budget-exhausted",
        SctmError::Io(_) => "io",
    }
}

/// The deterministic payload of an `ok` response: the run manifest in
/// the `sctm-obs` schema, restricted to simulated quantities.
pub fn result_json(report: &RunReport, exp: &Experiment) -> String {
    let mut m = Manifest::new();
    m.config("mode", report.mode);
    m.config("network", report.network);
    m.config("workload", report.workload);
    m.config("cores", exp.system.side * exp.system.side);
    m.config("ops", exp.ops_per_core);
    m.config("seed", exp.seed);
    // The verdict is computed from simulated quantities whether or not
    // observability is recording, so this row never breaks the
    // byte-identity contract between instrumented and plain runs.
    if let Some(v) = report.verdict {
        m.config("convergence", v.label());
    }
    m.metrics
        .counter_add("run.exec_time_ps", report.exec_time.as_ps());
    m.metrics.counter_add("run.messages", report.messages);
    m.metrics
        .gauge_set("run.mean_lat_ctrl_ns", report.mean_lat_ctrl_ns);
    m.metrics
        .gauge_set("run.mean_lat_data_ns", report.mean_lat_data_ns);
    for it in report.iterations.as_deref().unwrap_or_default() {
        m.iterations.push(IterTelemetry {
            network: report.network,
            workload: report.workload,
            iteration: it.iteration as u32,
            est_ps: it.est_exec_time.as_ps(),
            drift_ps: it.drift.as_ps(),
            corrections: it.corrections as u64,
            messages: it.messages,
            // Host time is banned from the result object (see module
            // docs); zero keeps the manifest schema intact.
            wall_ns: 0,
        });
    }
    m.to_json_compact()
}

/// `"cache"` field values: how the scheduler satisfied the capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit,
    Miss,
    /// Traceless modes (exec-driven, online) never touch the cache.
    Bypass,
}

impl CacheOutcome {
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// Success line. The deterministic `result` object comes last so
/// clients (and tests) can split on `"result":` and compare the tail
/// byte-for-byte.
pub fn ok_response(id: &str, wall_ns: u128, cache: CacheOutcome, result: &str) -> String {
    format!(
        r#"{{"status":"ok","id":"{}","wall_ns":{},"cache":"{}","result":{}}}"#,
        json_escape(id),
        wall_ns,
        cache.label(),
        result
    )
}

pub fn error_response(id: &str, err: &SctmError) -> String {
    format!(
        r#"{{"status":"error","id":"{}","kind":"{}","message":"{}"}}"#,
        json_escape(id),
        error_kind(err),
        json_escape(&err.to_string())
    )
}

/// Backpressure line: the bounded queue is full; come back later.
pub fn busy_response(id: &str, retry_after_ms: u64) -> String {
    format!(
        r#"{{"status":"busy","id":"{}","retry_after_ms":{}}}"#,
        json_escape(id),
        retry_after_ms
    )
}

/// The request sat in the queue past its deadline and was dropped
/// without running.
pub fn timeout_response(id: &str, waited_ms: u128) -> String {
    format!(
        r#"{{"status":"timeout","id":"{}","waited_ms":{}}}"#,
        json_escape(id),
        waited_ms
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_req(line: &str) -> RunRequest {
        match parse_request(line).expect("parse") {
            Request::Run(r) => *r,
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_full_run_line() {
        let r = run_req(
            "run kernel=lu net=oxbar side=8 ops=900 seed=7 mode=sctm iters=3 \
             replay=1 profile=1 damping=0.5 epsilon=0.05 id=r42 timeout_ms=2500",
        );
        assert_eq!(r.id, "r42");
        assert_eq!(r.experiment.system.side, 8);
        assert_eq!(r.experiment.system.network, NetworkKind::Oxbar);
        assert_eq!(r.experiment.ops_per_core, 900);
        assert_eq!(r.experiment.seed, 7);
        assert_eq!(r.spec.mode, Mode::SelfCorrection { max_iters: 3 });
        assert!(r.spec.replay_only);
        assert!(r.spec.profile);
        assert_eq!(r.spec.damping, Some(0.5));
        assert_eq!(r.spec.factor_epsilon, Some(0.05));
        assert_eq!(r.timeout_ms, Some(2500));
    }

    #[test]
    fn defaults_cover_everything_but_the_kernel() {
        let r = run_req("run kernel=fft");
        assert_eq!(r.experiment.system.side, 4);
        assert_eq!(r.experiment.system.network, NetworkKind::Omesh);
        assert_eq!(r.spec.mode, Mode::SelfCorrection { max_iters: 4 });
        assert!(r.timeout_ms.is_none());
    }

    #[test]
    fn control_verbs_parse() {
        assert!(matches!(parse_request("stats"), Ok(Request::Stats)));
        assert!(matches!(parse_request("metrics"), Ok(Request::Metrics)));
        assert!(matches!(parse_request(" ping "), Ok(Request::Ping)));
        assert!(matches!(parse_request("shutdown"), Ok(Request::Shutdown)));
    }

    #[test]
    fn control_verbs_reject_stray_arguments() {
        for line in ["stats now", "metrics all", "ping x=1", "shutdown -f"] {
            let err = parse_request(line).unwrap_err();
            assert!(matches!(err, SctmError::InvalidSpec(_)), "{line}: {err}");
            assert!(err.to_string().contains("takes no arguments"), "{err}");
        }
    }

    #[test]
    fn every_error_variant_is_reachable_from_a_request_line() {
        // invalid-spec: bad verb, bad token, bad number, bad mode knobs.
        for line in [
            "",
            "frobnicate",
            "run kernel=fft side",
            "run kernel=fft ops=many",
            "run kernel=fft mode=psychic",
            "run kernel=fft mode=sctm iters=0",
            "run kernel=fft mode=online epoch_us=0",
            "run kernel=fft damping=1.5",
            "run kernel=fft mode=exec-driven profile=1",
            "run magic=on kernel=fft",
            "run",
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(matches!(err, SctmError::InvalidSpec(_)), "{line}: {err}");
            assert_eq!(error_kind(&err), "invalid-spec");
        }
        // unknown-kernel and unknown-network are their own variants.
        let err = parse_request("run kernel=doom").unwrap_err();
        assert!(matches!(err, SctmError::UnknownKernel(_)), "{err}");
        assert_eq!(error_kind(&err), "unknown-kernel");
        let err = parse_request("run kernel=fft net=warp").unwrap_err();
        assert!(matches!(err, SctmError::UnknownNetwork(_)), "{err}");
        assert_eq!(error_kind(&err), "unknown-network");
        // invalid-config: the side envelope is enforced at parse time.
        let err = parse_request("run kernel=fft side=0").unwrap_err();
        assert!(matches!(err, SctmError::InvalidConfig(_)), "{err}");
        assert_eq!(error_kind(&err), "invalid-config");
    }

    #[test]
    fn result_json_is_deterministic_and_excludes_wall_time() {
        let r = run_req("run kernel=fft side=2 ops=150 mode=classic-trace");
        let a = r.experiment.execute(&r.spec).unwrap().report;
        let b = r.experiment.execute(&r.spec).unwrap().report;
        let ja = result_json(&a, &r.experiment);
        assert_eq!(ja, result_json(&b, &r.experiment));
        assert!(!ja.contains("wall_ms"));
        assert!(ja.contains(r#""run.exec_time_ps""#));
        assert!(ja.contains(r#""workload": "fft""#));
    }

    #[test]
    fn response_lines_are_single_line_and_escaped() {
        let err = SctmError::InvalidSpec("no \"such\" thing\n".into());
        for line in [
            ok_response("a\"b", 123, CacheOutcome::Hit, "{}"),
            error_response("a\"b", &err),
            busy_response("x", 50),
            timeout_response("y", 1000),
        ] {
            assert!(!line.contains('\n'), "{line}");
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(
            ok_response("i", 1, CacheOutcome::Miss, r#"{"x":1}"#).ends_with(r#""result":{"x":1}}"#)
        );
    }
}
