//! Protocol fuzzing, two layers:
//!
//! 1. Coherence: random multi-core op streams over a small, highly
//!    contended line set must always run to completion (no lost
//!    wakeups, no leaked transactions) and pass the end-of-run MESI
//!    validation built into `CmpSim::run`, on every interconnect.
//! 2. Wire: the `fwd` shard verb and the client's response frames must
//!    decode *totally* — any malformed, truncated, or hostile line is
//!    a typed error, never a panic, and a failed forward never poisons
//!    the capture cache's single-flight pending slot.

use proptest::prelude::*;
use sctm::{NetworkKind, SystemConfig};
use sctm_cmp::protocol::{Op, Workload};
use sctm_cmp::{CmpConfig, CmpSim, NullHook};

/// A fully random workload over a tiny line set (maximum contention).
#[derive(Debug)]
struct FuzzWorkload {
    streams: Vec<Vec<Op>>,
    pos: Vec<usize>,
}

impl Workload for FuzzWorkload {
    fn num_cores(&self) -> usize {
        self.streams.len()
    }
    fn name(&self) -> &'static str {
        "fuzz"
    }
    fn next_op(&mut self, core: usize) -> Op {
        let i = self.pos[core];
        self.pos[core] += 1;
        self.streams[core].get(i).copied().unwrap_or(Op::Halt)
    }
}

/// Strategy: per core, a sequence of ops hammering `lines` shared lines
/// (plus barriers at aligned script positions so they stay global).
fn fuzz_workload(cores: usize, len: usize, lines: u64) -> impl Strategy<Value = FuzzWorkload> {
    let op = prop_oneof![
        3 => (0..lines).prop_map(|l| Op::Load(l * 64)),
        3 => (0..lines).prop_map(|l| Op::Store(l * 64)),
        1 => (1u64..40).prop_map(Op::Compute),
    ];
    let stream = prop::collection::vec(op, len..len + 1);
    prop::collection::vec(stream, cores..cores + 1).prop_map(move |mut streams| {
        // Insert two global barriers at fixed positions.
        for s in streams.iter_mut() {
            s.insert(len / 3, Op::Barrier(0));
            s.insert(2 * len / 3, Op::Barrier(1));
        }
        FuzzWorkload {
            pos: vec![0; streams.len()],
            streams,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// 4 cores, 8 shared lines: every interleaving of loads and stores
    /// must terminate with a coherent directory.
    #[test]
    fn random_contended_streams_terminate_coherently(
        w in fuzz_workload(4, 80, 8),
        net_choice in 0usize..3,
    ) {
        let kind = [NetworkKind::Emesh, NetworkKind::Omesh, NetworkKind::Oxbar][net_choice];
        let cfg = CmpConfig::tiled(2);
        let net = SystemConfig::make_network_kind(2, kind);
        let mut sim = CmpSim::new(cfg, net, Box::new(w));
        // `run` asserts: all cores halted, no in-flight messages, no
        // leaked directory transactions, MESI invariants hold.
        let r = sim.run(&mut NullHook);
        prop_assert!(r.exec_time.as_ps() > 0);
        prop_assert_eq!(r.messages_injected, r.messages_delivered);
    }

    /// Single-line torture: every core hammers ONE line with stores —
    /// the worst possible invalidation/fetch ping-pong.
    #[test]
    fn single_line_store_storm(seed_ops in prop::collection::vec(0u8..2, 40..120)) {
        struct Storm {
            script: Vec<Op>,
            pos: Vec<usize>,
        }
        impl Workload for Storm {
            fn num_cores(&self) -> usize {
                self.pos.len()
            }
            fn name(&self) -> &'static str {
                "storm"
            }
            fn next_op(&mut self, core: usize) -> Op {
                let i = self.pos[core];
                self.pos[core] += 1;
                self.script.get(i).copied().unwrap_or(Op::Halt)
            }
        }
        let script: Vec<Op> = seed_ops
            .iter()
            .map(|&b| if b == 0 { Op::Load(0) } else { Op::Store(0) })
            .collect();
        let cfg = CmpConfig::tiled(2);
        let net = SystemConfig::make_network_kind(2, NetworkKind::Emesh);
        let mut sim = CmpSim::new(cfg, net, Box::new(Storm { script, pos: vec![0; 4] }));
        let r = sim.run(&mut NullHook);
        prop_assert!(r.messages_injected > 0);
    }
}

#[test]
fn wide_fan_invalidation_storm_terminates() {
    // All 16 cores read one line (16 sharers), then all store it in
    // turn: repeated full-width invalidation broadcasts.
    struct Wide {
        pos: Vec<usize>,
    }
    impl Workload for Wide {
        fn num_cores(&self) -> usize {
            self.pos.len()
        }
        fn name(&self) -> &'static str {
            "wide"
        }
        fn next_op(&mut self, core: usize) -> Op {
            let i = self.pos[core];
            self.pos[core] += 1;
            match i {
                0..=4 => Op::Load((i as u64) * 64),
                5 => Op::Barrier(0),
                6..=10 => Op::Store(((i - 6) as u64) * 64),
                11 => Op::Barrier(1),
                12..=16 => Op::Load(((i - 12) as u64) * 64),
                _ => Op::Halt,
            }
        }
    }
    for kind in NetworkKind::DETAILED {
        let cfg = CmpConfig::tiled(4);
        let net = SystemConfig::make_network_kind(4, kind);
        let mut sim = CmpSim::new(cfg, net, Box::new(Wide { pos: vec![0; 16] }));
        let r = sim.run(&mut NullHook);
        assert!(r.messages_injected > 100, "{}", kind.label());
    }
}

// ---------------------------------------------------------------------
// Wire-protocol fuzz: `fwd` verb, peer reply frames, client frames.
// ---------------------------------------------------------------------

mod wire_fuzz {
    use proptest::prelude::*;
    use sctm_srv::cache::{CaptureCache, CaptureKey};
    use sctm_srv::proto::{fwd_response, CacheOutcome};
    use sctm_srv::{parse_fwd_response, parse_request, Request};
    use sctm_trace::{TraceFormat, TraceLog};

    /// A real capture rendered into a valid peer reply in `format`, for
    /// truncation/mutation fuzzing around the happy path.
    fn valid_reply_in(format: TraceFormat) -> (TraceLog, String) {
        let req =
            match parse_request("run kernel=fft net=omesh side=2 ops=100 mode=classic-trace id=f")
                .expect("parse")
            {
                Request::Run(r) => *r,
                other => panic!("expected run, got {other:?}"),
            };
        let log = req.experiment.capture();
        let reply = fwd_response("f", CacheOutcome::Miss, &log, format);
        (log, reply)
    }

    fn valid_reply() -> (TraceLog, String) {
        valid_reply_in(TraceFormat::Csv)
    }

    #[test]
    fn valid_fwd_reply_round_trips_in_both_formats() {
        for fmt in [TraceFormat::Csv, TraceFormat::Sctf] {
            let (log, reply) = valid_reply_in(fmt);
            let (decoded, outcome) = parse_fwd_response(&reply).expect("decode");
            assert!(matches!(outcome, CacheOutcome::Miss));
            assert_eq!(decoded.to_csv_string(), log.to_csv_string());
        }
    }

    /// Strategy: a string drawn from `charset` with a length in `len`
    /// (the vendored proptest has no regex strategies, so charsets are
    /// spelled out).
    fn chars(charset: &'static str, len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
        let bytes = charset.as_bytes();
        prop::collection::vec(0usize..bytes.len(), len)
            .prop_map(move |ix| ix.into_iter().map(|i| bytes[i] as char).collect())
    }

    /// Strategy: arbitrary bytes decoded lossily — printable JSON
    /// punctuation, control bytes, and U+FFFD replacements all appear.
    fn raw(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
        prop::collection::vec(0u8..255, len).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// Every truncation of a *valid* reply is a typed error — the
        /// nastiest frames are the nearly-right ones.
        #[test]
        fn truncated_peer_replies_are_typed_errors(cut in 0usize..100) {
            let (_, reply) = valid_reply();
            if cut < reply.len() {
                let head: String = reply.chars().take(cut).collect();
                prop_assert!(parse_fwd_response(&head).is_err(), "decoded {head:?}");
            }
        }

        /// Arbitrary bytes (printable and not) never panic the decoder.
        #[test]
        fn arbitrary_peer_replies_never_panic(frame in raw(0..200)) {
            let _ = parse_fwd_response(&frame);
        }

        /// Peer error frames surface as errors, whatever their fields.
        #[test]
        fn peer_error_frames_stay_errors(
            kind in chars("abcdefghijklmnopqrstuvwxyz-", 0..20),
            msg in raw(0..60),
        ) {
            let frame = format!(
                r#"{{"status":"error","kind":"{kind}","message":"{}"}}"#,
                sctm_obs::json_escape(&msg)
            );
            prop_assert!(parse_fwd_response(&frame).is_err());
        }

        /// Random token soup after the `fwd` verb parses totally:
        /// either a well-formed forward or a typed protocol error.
        #[test]
        fn fwd_verb_parsing_is_total(tokens in chars(" abcdefghijklmnopqrstuvwxyz0123456789=.|-", 0..80)) {
            let _ = parse_request(&format!("fwd {tokens}"));
        }

        /// The client's frame classifier is total on arbitrary lines.
        #[test]
        fn client_frames_never_panic(frame in raw(0..200)) {
            let _ = sctm_client::parse_response(&frame);
        }

        /// The client's JSON field scanners are total.
        #[test]
        fn client_wire_scanners_are_total(
            doc in raw(0..200),
            field in chars("abcdefghijklmnopqrstuvwxyz_", 1..12),
        ) {
            let _ = sctm_client::wire::json_str_field(&doc, &field);
            let _ = sctm_client::wire::json_u64_field(&doc, &field);
        }
    }

    /// A forward that fails (here: every malformed reply proptest just
    /// exercised) must release the pending slot so the next request can
    /// retry — and a *panicking* producer must do the same via the
    /// drop guard. Either way the slot is never poisoned.
    #[test]
    fn failed_and_panicking_producers_release_the_pending_slot() {
        let cache = CaptureCache::new(16 << 20);
        let key = CaptureKey::new("fft", 2, 100, 1);

        // Err producer: the typed-error path a failed `fwd` takes.
        let failed: Result<_, String> = cache.try_get_or_capture(key, || {
            parse_fwd_response(r#"{"status":"ok","truncated"#)
                .map(|(log, _)| log)
                .map_err(|e| e.to_string())
        });
        assert!(failed.is_err());

        // Panicking producer: the drop guard must clean up too.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_capture(key, || panic!("producer died"))
        }));
        assert!(panicked.is_err());

        // The slot is free: a healthy producer wins it immediately and
        // later callers hit.
        let (log, _) = valid_reply();
        let csv = log.to_csv_string();
        let (_, hit) = cache.get_or_capture(key, || log);
        assert!(!hit, "slot was poisoned: healthy producer never ran");
        let (again, hit) = cache.get_or_capture(key, || unreachable!("must hit"));
        assert!(hit);
        assert_eq!(again.to_csv_string(), csv);
    }
}

// ---------------------------------------------------------------------
// sctf container fuzz: the binary trace format's decoder must be total
// — truncations, bit flips, endianness games, and future versions are
// always typed `TraceError`s, never panics or silent misreads.
// ---------------------------------------------------------------------

mod sctf_fuzz {
    use proptest::prelude::*;
    use sctm_trace::sctf::{from_sctf_bytes, to_sctf_bytes, SCTF_MAGIC, SCTF_VERSION};
    use sctm_trace::{SctfReader, TraceError, TraceStore};

    /// A real (small) capture encoded into a valid container.
    fn valid_container() -> Vec<u8> {
        use sctm::workloads::Kernel;
        use sctm::{Experiment, NetworkKind, SystemConfig};
        let log = Experiment::new(SystemConfig::new(2, NetworkKind::Omesh), Kernel::Fft)
            .with_ops(100)
            .capture();
        to_sctf_bytes(&log)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// Every truncation of a valid container is a typed error.
        #[test]
        fn truncated_containers_are_typed_errors(frac in 0.0f64..1.0) {
            let buf = valid_container();
            let cut = ((buf.len() as f64) * frac) as usize;
            if cut < buf.len() {
                prop_assert!(from_sctf_bytes(&buf[..cut]).is_err(), "cut={cut}");
                prop_assert!(SctfReader::from_bytes(&buf[..cut]).is_err(), "cut={cut}");
            }
        }

        /// Any single flipped byte is caught: by the magic check, the
        /// version gate, or the whole-buffer checksum. No flip decodes.
        #[test]
        fn any_single_byte_flip_is_a_typed_error(frac in 0.0f64..1.0, bit in 0u8..8) {
            let mut buf = valid_container();
            let at = (((buf.len() - 1) as f64) * frac) as usize;
            buf[at] ^= 1 << bit;
            prop_assert!(from_sctf_bytes(&buf).is_err(), "flip at {at} bit {bit}");
        }

        /// Arbitrary bytes behind a valid magic never panic the decoder
        /// (and never decode: the checksum would have to collide).
        #[test]
        fn magic_plus_garbage_never_panics(tail in prop::collection::vec(0usize..256, 0..300)) {
            let tail: Vec<u8> = tail.into_iter().map(|b| b as u8).collect();
            let mut buf = SCTF_MAGIC.to_vec();
            buf.extend_from_slice(&tail);
            prop_assert!(from_sctf_bytes(&buf).is_err());
            prop_assert!(TraceStore::decode(&buf).is_err());
        }

        /// Future (and byte-swapped, i.e. wrong-endian) version words
        /// are version skew, reported before any checksum arithmetic.
        #[test]
        fn future_versions_are_version_skew(v in (SCTF_VERSION + 1)..u32::MAX) {
            let mut buf = valid_container();
            buf[8..12].copy_from_slice(&v.to_le_bytes());
            match from_sctf_bytes(&buf) {
                Err(TraceError::VersionSkew { found }) => prop_assert_eq!(found, v),
                other => prop_assert!(false, "expected version skew, got {other:?}"),
            }
        }
    }

    /// A wrong-endian (byte-swapped) record count cannot sneak past the
    /// checksum, and a big-endian writer's version word reads as skew.
    #[test]
    fn wrong_endian_counts_and_versions_are_rejected() {
        let mut buf = valid_container();
        // Record count lives at [12..20); byte-swap it.
        let n = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        buf[12..20].copy_from_slice(&n.swap_bytes().to_le_bytes());
        assert!(
            matches!(from_sctf_bytes(&buf), Err(TraceError::BadChecksum { .. })),
            "swapped count must fail the checksum"
        );
        // A big-endian writer would store the version byte-swapped.
        let mut buf = valid_container();
        buf[8..12].copy_from_slice(&SCTF_VERSION.to_be_bytes());
        assert!(matches!(
            from_sctf_bytes(&buf),
            Err(TraceError::VersionSkew { .. })
        ));
    }
}
