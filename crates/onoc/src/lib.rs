//! # sctm-onoc — optical network-on-chip architectures
//!
//! Two canonical 2012-era ONoC designs built on the `sctm-photonic`
//! device layer, both implementing the workspace-wide
//! [`sctm_engine::net::NetworkModel`] interface so the full-system
//! simulator and the trace replayer can swap them freely:
//!
//! * [`omesh`] — **circuit-switched photonic mesh** with an electrical
//!   control plane for path setup/teardown (PhoenixSim lineage). Long
//!   data messages ride light; short control messages stay electrical.
//! * [`oxbar`] — **wavelength-routed MWSR crossbar** with circulating
//!   optical token arbitration (Corona lineage). Everything is optical;
//!   per-destination home channels serialise writers.
//! * [`layout`] — die floorplan, waveguide geometry and the worst-case
//!   path inventories that feed the loss/power solver.
//! * [`hybrid`] — extension: the authors' 2013 follow-up architecture, a
//!   path-adaptive opto-electronic hybrid where each message picks a
//!   plane by distance and payload size.
//! * [`obus`] — extension: SWMR broadcast bus (Firefly/ATAC lineage),
//!   arbitration-free writers, serialised receivers.

pub mod hybrid;
pub mod layout;
pub mod obus;
pub mod omesh;
pub mod oxbar;

pub use hybrid::{HybridConfig, HybridPolicy, HybridSim};
pub use layout::Floorplan;
pub use obus::{ObusConfig, ObusSim};
pub use omesh::{OmeshConfig, OmeshSim};
pub use oxbar::{OxbarConfig, OxbarSim};
