//! Trace replay engines.
//!
//! Three engines, using strictly increasing amounts of trace knowledge:
//!
//! 1. [`replay_fixed`] — the **classic trace model** (the strawman the
//!    paper improves on): inject every message at its capture
//!    timestamp. The timing feedback loop is lost: if the target
//!    network is slower or faster than the capture network, dependent
//!    messages are injected at the wrong times and error compounds.
//! 2. [`replay_sctm_pass`] — the **paper's self-correction trace
//!    model**: knowledge is per-endpoint program order plus the
//!    arrival-gating pairing computable from a plain network trace
//!    ([`TraceLog::arrival_gates`]). Injections are derived from the
//!    replay's *own* delivery times (the timeline corrects itself
//!    forward in time); the outer loop in `sctm-core` additionally
//!    corrects the capture model and re-captures until the estimate
//!    stabilises.
//! 3. [`replay_oracle`] — full-causality single-pass replay using the
//!    exact dependency DAG (which our capture can see because it lives
//!    inside the simulator). This is the accuracy ceiling of any
//!    trace-driven method and quantifies how much the gating heuristic
//!    costs.
//!
//! Every engine has a `*_with` variant that borrows a [`ReplayScratch`]
//! arena instead of allocating its working set: the outer
//! self-correction loop replays the same-sized trace once per
//! iteration, so one arena paid for up front serves every pass.

use crate::log::TraceLog;
use sctm_engine::net::{Delivery, MsgClass, MsgId, NetworkModel};
use sctm_engine::stats::Running;
use sctm_engine::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "no predecessor/successor" in the dense index chains.
pub(crate) const NONE: u32 = u32::MAX;

/// Outcome of one replay pass.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Injection time per message (dense id order).
    pub inject: Vec<SimTime>,
    /// Delivery time per message.
    pub deliver: Vec<SimTime>,
    /// Execution-time estimate: last delivery plus the capture run's
    /// local tail (compute after the final message).
    pub est_exec_time: SimTime,
}

impl ReplayResult {
    pub(crate) fn from_times(log: &TraceLog, inject: Vec<SimTime>, deliver: Vec<SimTime>) -> Self {
        let tail = log.capture_exec_time.saturating_since(log.last_delivery());
        let last = deliver.iter().copied().max().unwrap_or(SimTime::ZERO);
        ReplayResult {
            inject,
            deliver,
            est_exec_time: last + tail,
        }
    }

    /// Mean message latency in nanoseconds for one class (or all).
    pub fn mean_latency_ns(&self, log: &TraceLog, class: Option<MsgClass>) -> f64 {
        let mut acc = Running::new();
        for (i, r) in log.records.iter().enumerate() {
            if class.is_none() || class == Some(r.msg.class) {
                acc.push(self.deliver[i].saturating_since(self.inject[i]).as_ns_f64());
            }
        }
        acc.mean()
    }
}

/// Reusable working set for the replay engines.
///
/// Every buffer a pass needs — deltas, readiness flags, the CSR
/// dependency adjacency, the pending-injection heap, the delivery drain
/// buffer, the arrival-gating scratch — lives here and is recycled
/// between passes, so a loop that replays the same trace repeatedly
/// (the self-correction loop in `sctm-core`, the convergence sweep in
/// `sctm-bench`) allocates once instead of once per iteration. The
/// cached injection `order` additionally lets [`replay_fixed_with`]
/// skip its sort entirely on every iteration after the first.
///
/// A scratch is not tied to one trace: buffers are resized on entry to
/// each pass, so one instance can serve logs of different sizes
/// (capacity only ever grows).
#[derive(Debug, Default)]
pub struct ReplayScratch {
    /// Cached injection order for [`replay_fixed_with`]'s `simulate`
    /// (a permutation of `0..n`, validated before reuse).
    order: Vec<u32>,
    /// Capture-anchored local think time per message.
    pub(crate) delta: Vec<SimTime>,
    /// Oracle: max dependency delivery seen so far, per message.
    ready_at: Vec<SimTime>,
    /// Oracle: undelivered dependency count, per message.
    remaining: Vec<u32>,
    // CSR adjacency: `adj[adj_off[i]..adj_off[i + 1]]` are the messages
    // unblocked by `i`'s delivery (dependency children for the oracle,
    // gated departures for the gated pass). Replaces a `Vec<Vec<u32>>`
    // whose n inner vectors dominated per-pass allocation.
    adj_cnt: Vec<u32>,
    pub(crate) adj_off: Vec<u32>,
    pub(crate) adj: Vec<u32>,
    /// Record indices sorted by `(t_inject, i)` (per-source chain build).
    idx: Vec<u32>,
    /// Most recent message per source node during the chain build.
    src_last: Vec<u32>,
    /// Per-source predecessor / successor chains ([`NONE`]-terminated).
    pub(crate) prev_in_order: Vec<u32>,
    pub(crate) next_in_order: Vec<u32>,
    // Gated-pass readiness state.
    pub(crate) gate_done: Vec<bool>,
    pub(crate) gate_time: Vec<SimTime>,
    pub(crate) prev_done: Vec<bool>,
    pub(crate) prev_time: Vec<SimTime>,
    pub(crate) scheduled: Vec<bool>,
    /// Pending injections whose time is already known.
    pub(crate) heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Delivery drain buffer.
    pub(crate) buf: Vec<Delivery>,
    // Arrival-gating scratch (see `TraceLog::arrival_gates_into`).
    pub(crate) gates: Vec<Option<MsgId>>,
    events: Vec<(SimTime, u32)>,
    last_arrival: Vec<Option<MsgId>>,
}

impl ReplayScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the CSR adjacency from per-record edge lists: `edges(i)`
    /// yields the records whose delivery `i`'s entries unblock.
    fn build_csr<I: Iterator<Item = u32>>(&mut self, n: usize, mut edges: impl FnMut(usize) -> I) {
        self.adj_cnt.clear();
        self.adj_cnt.resize(n, 0);
        for i in 0..n {
            for e in edges(i) {
                self.adj_cnt[e as usize] += 1;
            }
        }
        self.adj_off.clear();
        self.adj_off.resize(n + 1, 0);
        for i in 0..n {
            self.adj_off[i + 1] = self.adj_off[i] + self.adj_cnt[i];
        }
        self.adj.clear();
        self.adj.resize(self.adj_off[n] as usize, 0);
        // Reuse adj_cnt as the per-row fill cursor. Iterating records in
        // id order keeps each row ascending.
        self.adj_cnt.fill(0);
        for i in 0..n {
            for e in edges(i) {
                let e = e as usize;
                self.adj[(self.adj_off[e] + self.adj_cnt[e]) as usize] = i as u32;
                self.adj_cnt[e] += 1;
            }
        }
    }

    /// Install a prebuilt delivery→children CSR (the layout
    /// [`ReplayScratch::build_csr`] produces, as stored verbatim in an
    /// sctf container's dependency section): two slice copies in place
    /// of the O(E) rebuild. Consumed by
    /// [`replay_oracle_preloaded`](crate::replay::replay_oracle_preloaded).
    pub fn install_children_csr(&mut self, off: &[u32], adj: &[u32]) {
        assert!(!off.is_empty(), "CSR offset array must have n+1 entries");
        assert_eq!(
            *off.last().unwrap() as usize,
            adj.len(),
            "CSR offsets do not cover the adjacency array"
        );
        self.adj_off.clear();
        self.adj_off.extend_from_slice(off);
        self.adj.clear();
        self.adj.extend_from_slice(adj);
    }

    /// Fill `prev_in_order`/`next_in_order`: each message's neighbour in
    /// its source node's time-sorted departure sequence (the chain
    /// `TraceLog::per_source_order` returns as nested vectors, built
    /// here without the per-node allocations).
    fn build_source_chains(&mut self, log: &TraceLog, nodes: usize, canonical: bool) {
        let n = log.len();
        let mut idx = std::mem::take(&mut self.idx);
        idx.clear();
        idx.extend(0..n as u32);
        // Captured logs come out of `Capture::finish` already sorted by
        // (t_inject, id) = (t_inject, index), so the identity order is
        // usually the sorted order; only sort hand-built logs.
        if !canonical {
            // (t_inject, i) is unique per record, so unstable is safe.
            idx.sort_unstable_by_key(|&i| (log.records[i as usize].t_inject, i));
        }
        self.src_last.clear();
        self.src_last.resize(nodes, NONE);
        self.prev_in_order.clear();
        self.prev_in_order.resize(n, NONE);
        self.next_in_order.clear();
        self.next_in_order.resize(n, NONE);
        for &i in &idx {
            let s = log.records[i as usize].msg.src.idx();
            let p = self.src_last[s];
            if p != NONE {
                self.prev_in_order[i as usize] = p;
                self.next_in_order[p as usize] = i;
            }
            self.src_last[s] = i;
        }
        self.idx = idx;
    }
}

/// Inject all messages into `net` at the given times, in time order (so
/// `inject`'s internal clamping never fires). The canonical order under
/// the total key `(inject[i], i)` is unique, so the cached order is
/// reusable iff it is a strictly ascending permutation under that key —
/// an O(n) check that hits every fixed-replay iteration after the first
/// (same trace, same times).
fn inject_all(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    inject: &[SimTime],
    scratch: &mut ReplayScratch,
) {
    let n = log.len();
    let cached = scratch.order.len() == n
        && scratch.order.iter().all(|&i| (i as usize) < n)
        && scratch
            .order
            .windows(2)
            .all(|w| (inject[w[0] as usize], w[0]) < (inject[w[1] as usize], w[1]));
    if !cached {
        scratch.order.clear();
        scratch.order.extend(0..n as u32);
        // Unique total key → unstable sort is order-equivalent.
        scratch
            .order
            .sort_unstable_by_key(|&i| (inject[i as usize], i));
    }
    for &i in &scratch.order {
        net.inject(inject[i as usize], log.records[i as usize].msg);
    }
}

/// Run all messages through `net` at the given injection times.
fn simulate(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    inject: &[SimTime],
    scratch: &mut ReplayScratch,
) -> Vec<SimTime> {
    assert_eq!(inject.len(), log.len());
    let n = log.len();
    inject_all(log, net, inject, scratch);
    let mut deliver = vec![SimTime::ZERO; n];
    scratch.buf.clear();
    scratch.buf.reserve(n);
    net.drain(&mut scratch.buf);
    assert_eq!(scratch.buf.len(), n, "replay lost messages");
    for d in scratch.buf.drain(..) {
        deliver[d.msg.id.0 as usize] = d.delivered_at;
    }
    deliver
}

/// Classic trace-driven replay: capture timestamps, verbatim.
pub fn replay_fixed(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    replay_fixed_with(log, net, &mut ReplayScratch::new())
}

/// [`replay_fixed`] borrowing a reusable [`ReplayScratch`].
pub fn replay_fixed_with(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    let inject: Vec<SimTime> = log.records.iter().map(|r| r.t_inject).collect();
    let deliver = simulate(log, net, &inject, scratch);
    ReplayResult::from_times(log, inject, deliver)
}

/// [`replay_fixed`] with a hard budget on network advancement steps
/// (distinct event timestamps processed during the drain).
///
/// Classic replay is open-loop: injection times are the capture's, so a
/// detailed target past its saturation point receives traffic faster
/// than it can drain it and the replay timeline expands — in the worst
/// case by orders of magnitude, each simulated instant costing real
/// work. The budget turns that pathology into a typed result: healthy
/// replays process a small constant number of timestamps per message,
/// so a budget of, say, `200 × log.len()` never fires on a network
/// operating below saturation while still bounding a collapsed one.
///
/// `Err(spent)` reports the budget consumed before giving up; the run
/// is deterministic, so the same inputs always trip at the same step.
pub fn replay_fixed_budgeted(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
    budget: u64,
) -> Result<ReplayResult, u64> {
    let n = log.len();
    let inject: Vec<SimTime> = log.records.iter().map(|r| r.t_inject).collect();
    inject_all(log, net, &inject, scratch);
    let mut deliver = vec![SimTime::ZERO; n];
    let mut got = 0usize;
    let mut spent = 0u64;
    let mut buf = std::mem::take(&mut scratch.buf);
    while got < n {
        let Some(t) = net.next_time() else {
            panic!(
                "replay lost messages: network quiescent with {} undelivered",
                n - got
            );
        };
        if spent >= budget {
            scratch.buf = buf;
            return Err(spent);
        }
        spent += 1;
        buf.clear();
        net.advance_until(t, &mut buf);
        for d in buf.drain(..) {
            deliver[d.msg.id.0 as usize] = d.delivered_at;
            got += 1;
        }
    }
    scratch.buf = buf;
    Ok(ReplayResult::from_times(log, inject, deliver))
}

/// Full-causality event-driven replay (accuracy ceiling).
///
/// Message *m* is injected `delta(m)` after the last of its dependencies
/// delivers in the *replay* timeline, where `delta` is the capture-time
/// local processing delay. Dependency-free messages keep their capture
/// times (their timing is network-independent by construction).
pub fn replay_oracle(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    replay_oracle_with(log, net, &mut ReplayScratch::new())
}

/// [`replay_oracle`] borrowing a reusable [`ReplayScratch`].
pub fn replay_oracle_with(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    scratch.build_csr(log.len(), |i| {
        log.records[i].deps.iter().map(|d| d.0 as u32)
    });
    oracle_run(log, net, scratch)
}

/// [`replay_oracle_with`] consuming a dependency CSR already resident
/// in `scratch` — e.g. installed straight from an sctf container's
/// dependency section ([`crate::sctf::SctfReader::install_children_csr`])
/// — instead of rebuilding it from the per-record dep vectors.
pub fn replay_oracle_preloaded(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    assert_eq!(
        scratch.adj_off.len(),
        log.len() + 1,
        "preloaded CSR does not cover this trace"
    );
    oracle_run(log, net, scratch)
}

/// The oracle body: assumes `scratch.{adj_off, adj}` already hold the
/// delivery→children adjacency for `log`.
fn oracle_run(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    let n = log.len();
    // delta and dependency counts from the capture timeline
    scratch.delta.clear();
    scratch.delta.resize(n, SimTime::ZERO);
    scratch.remaining.clear();
    scratch.remaining.resize(n, 0);
    for (i, r) in log.records.iter().enumerate() {
        if r.deps.is_empty() {
            scratch.delta[i] = r.t_inject;
        } else {
            let enable = r.deps.iter().map(|d| log.rec(*d).t_deliver).max().unwrap();
            scratch.delta[i] = r.t_inject.saturating_since(enable);
            scratch.remaining[i] = r.deps.len() as u32;
        }
    }
    let mut inject = vec![SimTime::MAX; n];
    scratch.ready_at.clear();
    scratch.ready_at.resize(n, SimTime::ZERO); // max dep delivery so far
                                               // Pending injections we already know the time of, not yet injected.
    scratch.heap.clear();
    for (i, r) in log.records.iter().enumerate() {
        if r.deps.is_empty() {
            scratch.heap.push(Reverse((scratch.delta[i], i as u32)));
        }
    }
    let mut deliver = vec![SimTime::ZERO; n];
    let mut delivered = 0usize;
    let mut buf = std::mem::take(&mut scratch.buf);
    while delivered < n {
        // Inject every pending message that is due at or before the
        // network's next internal event (its network effects may precede
        // that event); with an idle network, inject the earliest one to
        // re-arm it.
        while let Some(&Reverse((t, i))) = scratch.heap.peek() {
            match net.next_time() {
                Some(h) if t > h => break,
                _ => {
                    scratch.heap.pop();
                    inject[i as usize] = t;
                    net.inject(t, log.records[i as usize].msg);
                }
            }
        }
        // Advance in whole-timestamp batches until something delivers or
        // the earliest pending injection comes due; `advance_batches`
        // keeps the exact per-batch semantics of the old caller-side
        // loop while crossing the trait boundary once per stop instead
        // of twice per event round.
        let stop = scratch.heap.peek().map(|&Reverse((t, _))| t);
        buf.clear();
        let nt = net.advance_batches(stop, &mut buf);
        if buf.is_empty() && nt.is_none() && scratch.heap.is_empty() {
            panic!("replay deadlocked: messages undelivered but nothing pending");
        }
        for d in buf.drain(..) {
            let id = d.msg.id.0 as usize;
            deliver[id] = d.delivered_at;
            delivered += 1;
            for e in scratch.adj_off[id]..scratch.adj_off[id + 1] {
                let c = scratch.adj[e as usize] as usize;
                scratch.ready_at[c] = scratch.ready_at[c].max(d.delivered_at);
                scratch.remaining[c] -= 1;
                if scratch.remaining[c] == 0 {
                    scratch
                        .heap
                        .push(Reverse((scratch.ready_at[c] + scratch.delta[c], c as u32)));
                }
            }
        }
    }
    scratch.buf = buf;
    ReplayResult::from_times(log, inject, deliver)
}

/// The self-correcting replay pass — how the SCTM injects a trace into
/// a target network.
///
/// Event-driven: every departure is injected `delta` after its gating
/// arrival delivers **in the replay timeline** (per-source capture order
/// enforced), so the timeline corrects itself forward in time as the
/// pass runs instead of replaying stale capture timestamps. `delta` and
/// the gating pairing come from the capture timeline
/// ([`TraceLog::arrival_gates`]).
///
/// One pass is self-consistent (injections are derived from this pass's
/// own deliveries); residual error against execution-driven simulation
/// comes from mis-paired gates, which the *outer* self-correction loop
/// in `sctm-core` attacks by correcting the capture model itself and
/// re-capturing.
pub fn replay_sctm_pass(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    replay_sctm_pass_with(log, net, &mut ReplayScratch::new())
}

/// [`replay_sctm_pass`] borrowing a reusable [`ReplayScratch`].
pub fn replay_sctm_pass_with(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    gated_pass_with(log, net, false, scratch)
}

/// Ablation variant of [`replay_sctm_pass`] that *enforces per-source
/// capture order* on gated departures. Physically plausible-sounding,
/// but measurably worse: when the target's latency profile reorders a
/// node's traffic (hybrid control/data planes, token arbitration), the
/// ordering constraint inflates the timeline. Kept for the ablation
/// bench (A1).
pub fn replay_sctm_pass_ordered(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    replay_sctm_pass_ordered_with(log, net, &mut ReplayScratch::new())
}

/// [`replay_sctm_pass_ordered`] borrowing a reusable [`ReplayScratch`].
pub fn replay_sctm_pass_ordered_with(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    gated_pass_with(log, net, true, scratch)
}

/// Build the complete gated-pass working set for `log` into `scratch`:
/// arrival gates, per-source chains, capture-anchored deltas, the
/// gate→dependants CSR, the readiness arrays, and the seeded injection
/// heap. After this returns, `scratch` holds exactly the initial state
/// of a gated pass — shared by [`gated_pass_with`] and the incremental
/// engine in [`crate::incr`], which must agree on it bit for bit.
pub(crate) fn prepare_gated(
    log: &TraceLog,
    enforce_source_order: bool,
    scratch: &mut ReplayScratch,
) {
    let n = log.len();
    // Arrival gating, into the scratch buffers (temporarily moved out so
    // the rest of the scratch stays borrowable).
    let mut gates = std::mem::take(&mut scratch.gates);
    let mut events = std::mem::take(&mut scratch.events);
    let mut last_arrival = std::mem::take(&mut scratch.last_arrival);
    // One fused record scan feeds both the gating and the chain build —
    // four separate walks over the ~100-byte records measurably slow
    // the pass down at fft-64 scale.
    let (nodes, canonical) = log.scan_bounds();
    log.arrival_gates_into(&mut gates, &mut events, &mut last_arrival, nodes, canonical);
    scratch.events = events;
    scratch.last_arrival = last_arrival;

    // Per-source predecessor/successor chains and capture injection gaps.
    scratch.build_source_chains(log, nodes, canonical);
    // Capture-anchored deltas: local time between the gating delivery
    // (or the previous departure, for gate-less messages) and this
    // departure, measured on the capture timeline.
    scratch.delta.clear();
    scratch.delta.resize(n, SimTime::ZERO);
    for (i, r) in log.records.iter().enumerate() {
        let anchor = match gates[i] {
            Some(g) => log.rec(g).t_deliver,
            None => match scratch.prev_in_order[i] {
                NONE => SimTime::ZERO,
                p => log.records[p as usize].t_inject,
            },
        };
        scratch.delta[i] = r.t_inject.saturating_since(anchor);
    }

    // Readiness: a message needs its gate delivered (if any) and its
    // per-source predecessor injected (if any).
    scratch.gate_done.clear();
    scratch.gate_done.resize(n, false);
    scratch.gate_time.clear();
    scratch.gate_time.resize(n, SimTime::ZERO);
    scratch.prev_done.clear();
    scratch.prev_done.resize(n, false);
    scratch.prev_time.clear();
    scratch.prev_time.resize(n, SimTime::ZERO);
    // Reverse index: gate -> dependants.
    scratch.build_csr(n, |i| gates[i].iter().map(|g| g.0 as u32));
    for (i, g) in gates.iter().enumerate() {
        if g.is_none() {
            scratch.gate_done[i] = true;
        }
    }
    for i in 0..n {
        // Gated messages do not wait on their per-source predecessor:
        // a node's departures may legitimately reorder when the target
        // network's latency profile differs from capture (e.g. a hybrid
        // optical design where control and data planes diverge), and
        // forcing capture order inflates the timeline measurably.
        if scratch.prev_in_order[i] == NONE || (!enforce_source_order && !scratch.gate_done[i]) {
            scratch.prev_done[i] = true;
        }
    }

    scratch.scheduled.clear();
    scratch.scheduled.resize(n, false);
    scratch.heap.clear();

    // Seed: messages with no gate and no predecessor, in id order.
    for i in 0..n {
        if scratch.gate_done[i] && scratch.prev_done[i] {
            scratch.scheduled[i] = true;
            scratch.heap.push(Reverse((scratch.delta[i], i as u32)));
        }
    }
    scratch.gates = gates;
}

/// The gated event-driven pass; gates are recomputed into (and the
/// working set borrowed from) `scratch`.
fn gated_pass_with(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    enforce_source_order: bool,
    scratch: &mut ReplayScratch,
) -> ReplayResult {
    let n = log.len();
    prepare_gated(log, enforce_source_order, scratch);
    let mut inject = vec![SimTime::MAX; n];
    let mut deliver = vec![SimTime::ZERO; n];
    let mut delivered = 0usize;
    let mut buf = std::mem::take(&mut scratch.buf);
    while delivered < n {
        while let Some(&Reverse((t, i))) = scratch.heap.peek() {
            match net.next_time() {
                Some(h) if t > h => break,
                _ => {
                    scratch.heap.pop();
                    let i = i as usize;
                    inject[i] = t;
                    net.inject(t, log.records[i].msg);
                    // Unblock the per-source successor (only gate-less
                    // successors wait on their predecessor).
                    let nx = scratch.next_in_order[i];
                    if nx != NONE {
                        let nx = nx as usize;
                        scratch.prev_done[nx] = true;
                        scratch.prev_time[nx] = t;
                        if scratch.gate_done[nx] && !scratch.scheduled[nx] {
                            let base = if scratch.gates[nx].is_some() {
                                scratch.gate_time[nx]
                            } else {
                                scratch.prev_time[nx]
                            };
                            let t = (base + scratch.delta[nx]).max(scratch.prev_time[nx]);
                            scratch.scheduled[nx] = true;
                            scratch.heap.push(Reverse((t, nx as u32)));
                        }
                    }
                }
            }
        }
        // See `replay_oracle_with`: batch-advance to the next delivery
        // or pending-injection time with one trait crossing.
        let stop = scratch.heap.peek().map(|&Reverse((t, _))| t);
        buf.clear();
        let nt = net.advance_batches(stop, &mut buf);
        if buf.is_empty() && nt.is_none() && scratch.heap.is_empty() {
            panic!("gated replay deadlocked: undelivered messages but nothing pending");
        }
        for d in buf.drain(..) {
            let id = d.msg.id.0 as usize;
            deliver[id] = d.delivered_at;
            delivered += 1;
            for e in scratch.adj_off[id]..scratch.adj_off[id + 1] {
                let g = scratch.adj[e as usize] as usize;
                scratch.gate_done[g] = true;
                scratch.gate_time[g] = d.delivered_at;
                if scratch.prev_done[g] && !scratch.scheduled[g] {
                    let t = (scratch.gate_time[g] + scratch.delta[g]).max(scratch.prev_time[g]);
                    scratch.scheduled[g] = true;
                    scratch.heap.push(Reverse((t, g as u32)));
                }
            }
        }
    }
    scratch.buf = buf;
    ReplayResult::from_times(log, inject, deliver)
}

/// Per-(src, dst, class) multiplicative correction factors derived from
/// one replay: observed replay latency divided by the capture model's
/// predicted base latency (`base_latency` is supplied by the caller —
/// typically [`sctm_engine::net::AnalyticNetwork::base_latency`]).
/// Control and data flows are corrected separately — hybrid optical
/// designs route them through entirely different planes, so one shared
/// factor would poison whichever class is in the minority.
///
/// These are what the outer self-correction loop feeds back into the
/// capture model before re-capturing.
///
/// Aggregation is a direct-index accumulator table rather than a sort
/// or hash map: the key space is only `nodes² × 2` cells (192KB at 64
/// cores — it lives in L2), so one pass over the records in id order
/// does all the grouping. Each cell accumulates in record order,
/// exactly the order the earlier sort-then-group formulation visited
/// (its sort key ended in the record index), so the floating-point sums
/// — and therefore the factors — are bit-identical to it.
pub fn pair_corrections(
    log: &TraceLog,
    result: &ReplayResult,
    mut base_latency: impl FnMut(&sctm_engine::net::Message) -> SimTime,
) -> Vec<((u32, u32, MsgClass), f64, u64)> {
    let mut nodes = 0usize;
    for r in &log.records {
        nodes = nodes.max(r.msg.src.idx() + 1).max(r.msg.dst.idx() + 1);
    }
    // (replay latency sum, base-model latency sum, message count) per
    // (src, dst, class) cell.
    let mut acc: Vec<(f64, f64, u64)> = vec![(0.0, 0.0, 0); nodes * nodes * 2];
    for (i, r) in log.records.iter().enumerate() {
        let c = matches!(r.msg.class, MsgClass::Data) as usize;
        let cell = &mut acc[(r.msg.src.idx() * nodes + r.msg.dst.idx()) * 2 + c];
        cell.0 += result.deliver[i].saturating_since(result.inject[i]).as_ps() as f64;
        cell.1 += base_latency(&r.msg).as_ps() as f64;
        cell.2 += 1;
    }
    // Emit in (src, dst, Control-before-Data) order.
    let mut out: Vec<((u32, u32, MsgClass), f64, u64)> = Vec::new();
    for (k, &(lat, base, count)) in acc.iter().enumerate() {
        if base > 0.0 {
            let class = if k % 2 == 0 {
                MsgClass::Control
            } else {
                MsgClass::Data
            };
            let pair = k / 2;
            out.push((
                ((pair / nodes) as u32, (pair % nodes) as u32, class),
                lat / base,
                count,
            ));
        }
    }
    out
}

/// Estimate per-destination ejection serialisation from one replay, in
/// picoseconds per byte.
///
/// Mean-latency pair corrections cannot express a *single-reader*
/// bottleneck (an MWSR home channel serialises every writer; latency
/// depends on load, not on the pair). The fastest sustained spacing of
/// consecutive deliveries at a node reveals its service rate: we take
/// the 25th percentile of per-byte delivery gaps and report it only
/// when it shows genuine back-to-back operation (below
/// `SATURATION_THRESHOLD_PS_PER_BYTE`), so uncongested destinations are
/// left unserialised.
pub fn dst_service_estimates(log: &TraceLog, result: &ReplayResult) -> Vec<(u32, u64)> {
    const MIN_SAMPLES: usize = 48;
    const SATURATION_THRESHOLD_PS_PER_BYTE: f64 = 60.0;
    // Flat sort-then-group (by destination, then delivery time; the
    // byte count breaks simultaneous-delivery ties deterministically)
    // instead of a map of per-destination vectors.
    let mut rows: Vec<(u32, SimTime, u32)> = log
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.msg.dst.0, result.deliver[i], r.msg.bytes.max(1)))
        .collect();
    rows.sort_unstable();
    let mut out = Vec::new();
    let mut gaps_per_byte: Vec<f64> = Vec::new();
    let mut k = 0;
    while k < rows.len() {
        let dst = rows[k].0;
        let start = k;
        while k < rows.len() && rows[k].0 == dst {
            k += 1;
        }
        let dl = &rows[start..k];
        if dl.len() < MIN_SAMPLES {
            continue;
        }
        gaps_per_byte.clear();
        for w in dl.windows(2) {
            let gap = w[1].1.saturating_since(w[0].1).as_ps();
            // Simultaneous deliveries carry no rate signal.
            if gap != 0 {
                gaps_per_byte.push(gap as f64 / w[1].2 as f64);
            }
        }
        if gaps_per_byte.len() < MIN_SAMPLES / 2 {
            continue;
        }
        gaps_per_byte.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let p25 = gaps_per_byte[gaps_per_byte.len() / 4];
        if p25 > 0.0 && p25 <= SATURATION_THRESHOLD_PS_PER_BYTE {
            out.push((dst, p25.round() as u64));
        }
    }
    // Groups emerge in ascending destination order already.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Capture;
    use sctm_cmp::{CmpConfig, CmpSim};
    use sctm_engine::net::AnalyticNetwork;
    use sctm_workloads::{build, Kernel, WorkloadParams};

    fn analytic(nodes: usize, per_hop_ns: u64) -> Box<dyn NetworkModel> {
        Box::new(AnalyticNetwork::new(
            nodes,
            SimTime::from_ns(8),
            SimTime::from_ns(per_hop_ns),
            10,
        ))
    }

    /// Capture an fft trace on a fast analytic network.
    fn capture_fft(cores: usize) -> TraceLog {
        let side = (cores as f64).sqrt() as usize;
        let w = build(Kernel::Fft, WorkloadParams::new(cores, 300, 7));
        let cfg = CmpConfig::tiled(side);
        let mut sim = CmpSim::new(cfg, analytic(cores, 2), Box::new(w));
        let mut cap = Capture::new();
        let res = sim.run(&mut cap);
        cap.finish("analytic", res.exec_time)
    }

    #[test]
    fn captured_log_is_wellformed() {
        let log = capture_fft(16);
        assert!(log.len() > 100, "only {} messages", log.len());
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn fixed_replay_on_capture_network_reproduces_capture() {
        let log = capture_fft(16);
        let mut net = analytic(16, 2);
        let r = replay_fixed(&log, net.as_mut());
        // Same network, same injection times → identical deliveries
        // (the analytic network is contention-free).
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(r.deliver[i], rec.t_deliver, "msg {i} diverged");
        }
        assert_eq!(r.est_exec_time, log.capture_exec_time);
    }

    #[test]
    fn oracle_replay_on_capture_network_reproduces_capture() {
        let log = capture_fft(16);
        let mut net = analytic(16, 2);
        let r = replay_oracle(&log, net.as_mut());
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(
                r.deliver[i], rec.t_deliver,
                "msg {i} ({}) diverged: {:?} vs {:?}",
                rec.kind, r.deliver[i], rec.t_deliver
            );
        }
    }

    #[test]
    fn sctm_pass_on_capture_network_reproduces_capture() {
        // On the network the trace was captured on, the gated pass must
        // reconstruct the capture timeline exactly (gates and deltas are
        // self-consistent there).
        let log = capture_fft(16);
        let mut net = analytic(16, 2);
        let got = replay_sctm_pass(&log, net.as_mut());
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(
                got.deliver[i], rec.t_deliver,
                "msg {i} ({}) diverged",
                rec.kind
            );
        }
    }

    /// A shared scratch must be invisible in the results: run every
    /// engine twice through one arena (dirty on the second pass) and
    /// against the fresh-allocation wrappers.
    #[test]
    fn scratch_reuse_is_bit_identical() {
        let log = capture_fft(16);
        let mut scratch = ReplayScratch::new();
        type Engine = (
            &'static str,
            fn(&TraceLog, &mut dyn NetworkModel) -> ReplayResult,
            fn(&TraceLog, &mut dyn NetworkModel, &mut ReplayScratch) -> ReplayResult,
        );
        let engines: [Engine; 4] = [
            ("fixed", replay_fixed, replay_fixed_with),
            ("oracle", replay_oracle, replay_oracle_with),
            ("sctm", replay_sctm_pass, replay_sctm_pass_with),
            (
                "ordered",
                replay_sctm_pass_ordered,
                replay_sctm_pass_ordered_with,
            ),
        ];
        for (name, fresh, with) in engines {
            let mut net = analytic(16, 6);
            let a = fresh(&log, net.as_mut());
            for round in 0..2 {
                let mut net = analytic(16, 6);
                let b = with(&log, net.as_mut(), &mut scratch);
                assert_eq!(a.inject, b.inject, "{name} inject diverged (round {round})");
                assert_eq!(
                    a.deliver, b.deliver,
                    "{name} deliver diverged (round {round})"
                );
                assert_eq!(a.est_exec_time, b.est_exec_time, "{name} est diverged");
            }
        }
    }

    /// One arena must also serve logs of different sizes back to back.
    #[test]
    fn scratch_survives_log_size_changes() {
        let big = capture_fft(16);
        let small = capture_fft(4);
        let mut scratch = ReplayScratch::new();
        for (log, cores) in [(&big, 16), (&small, 4), (&big, 16)] {
            let mut net = analytic(cores, 2);
            let r = replay_sctm_pass_with(log, net.as_mut(), &mut scratch);
            for (i, rec) in log.records.iter().enumerate() {
                assert_eq!(
                    r.deliver[i],
                    rec.t_deliver,
                    "msg {i} diverged ({} msgs)",
                    log.len()
                );
            }
        }
    }

    #[test]
    fn oracle_tracks_slower_target_network() {
        // Replaying on a 3x slower network must stretch the timeline;
        // the oracle estimate should match an actual execution-driven
        // run on that network closely.
        let log = capture_fft(16);
        let mut net = analytic(16, 6);
        let r = replay_oracle(&log, net.as_mut());

        // Reference: execution-driven on the slow network.
        let w = build(Kernel::Fft, WorkloadParams::new(16, 300, 7));
        let mut sim = CmpSim::new(CmpConfig::tiled(4), analytic(16, 6), Box::new(w));
        let reference = sim.run(&mut sctm_cmp::NullHook);

        let err = (r.est_exec_time.as_ps() as f64 - reference.exec_time.as_ps() as f64).abs()
            / reference.exec_time.as_ps() as f64;
        assert!(
            err < 0.02,
            "oracle exec-time error {:.1}% (est {}, ref {})",
            err * 100.0,
            r.est_exec_time,
            reference.exec_time
        );
    }

    #[test]
    fn sctm_pass_beats_classic_on_slower_target() {
        let log = capture_fft(16);
        // Target: 3x slower per-hop latency than capture.
        let w = build(Kernel::Fft, WorkloadParams::new(16, 300, 7));
        let mut sim = CmpSim::new(CmpConfig::tiled(4), analytic(16, 6), Box::new(w));
        let reference = sim.run(&mut sctm_cmp::NullHook).exec_time.as_ps() as f64;

        let mut net = analytic(16, 6);
        let classic = replay_fixed(&log, net.as_mut()).est_exec_time.as_ps() as f64;
        let mut net = analytic(16, 6);
        let sctm = replay_sctm_pass(&log, net.as_mut()).est_exec_time.as_ps() as f64;

        let err_classic = (classic - reference).abs() / reference;
        let err_sctm = (sctm - reference).abs() / reference;
        assert!(
            err_sctm < err_classic,
            "self-correction ({:.1}%) did not beat classic ({:.1}%)",
            err_sctm * 100.0,
            err_classic * 100.0
        );
        assert!(
            err_sctm < 0.10,
            "self-correction error too large: {:.1}%",
            err_sctm * 100.0
        );
    }

    #[test]
    fn pair_corrections_detect_slowdown() {
        let log = capture_fft(16);
        // Replay on a 3x-per-hop target and derive corrections against
        // the capture model's base latency.
        let capture_model = sctm_engine::net::AnalyticNetwork::new(
            16,
            SimTime::from_ns(8),
            SimTime::from_ns(2),
            10,
        );
        let mut net = analytic(16, 6);
        let r = replay_sctm_pass(&log, net.as_mut());
        let corr = pair_corrections(&log, &r, |m| capture_model.base_latency(m));
        assert!(!corr.is_empty());
        let mean: f64 = corr.iter().map(|(_, f, _)| f).sum::<f64>() / corr.len() as f64;
        assert!(
            mean > 1.2,
            "slower target should push correction factors above 1: mean={mean:.2}"
        );
        // All factors positive and finite.
        assert!(corr.iter().all(|(_, f, _)| f.is_finite() && *f > 0.0));
        // Output is sorted by (src, dst, Control-before-Data) with
        // unique keys — the contract the correction installer relies on.
        let keys: Vec<_> = corr
            .iter()
            .map(|&((s, d, c), _, _)| (s, d, c == MsgClass::Data))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "corrections unsorted");
    }

    #[test]
    fn replay_injects_every_message_exactly_once() {
        let log = capture_fft(16);
        let mut net = analytic(16, 3);
        let r = replay_oracle(&log, net.as_mut());
        assert_eq!(r.inject.len(), log.len());
        assert!(r.inject.iter().all(|t| *t != SimTime::MAX));
        assert!(r.deliver.iter().zip(&r.inject).all(|(d, i)| d >= i));
    }
}
