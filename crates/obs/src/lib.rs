//! # sctm-obs — observability for the SCTM workspace
//!
//! One instrumentation layer for everything above the engine: a
//! span/event tracer, a named metrics registry, and exporters (Chrome
//! trace-event JSON for Perfetto, a machine-readable run manifest).
//!
//! The design constraint is the paper's own headline: the simulator must
//! stay fast. Tracing is therefore **off by default** and every
//! instrumentation site compiles to a single relaxed [`AtomicBool`] load
//! plus a branch when disabled (the overhead bench in `sctm-bench`
//! holds this to <2% on the omesh drain microbench). When enabled,
//! events go to per-thread ring buffers that are only merged at
//! [`drain`] time, so recording never synchronises threads against each
//! other beyond one uncontended lock.
//!
//! Nothing in this crate feeds back into simulation state: enabling or
//! disabling tracing cannot change any simulated timestamp, and the
//! sweep-determinism suite asserts exactly that.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

pub mod conv;
mod export;
mod registry;
pub mod reqlog;
mod series;
pub mod svc;
mod tracer;

pub use conv::{
    classify_unconverged, conv_enabled, conv_report_json, conv_series, conv_snapshot, reset_conv,
    set_conv_enabled, ConvRun, ConvTracker, ConvergenceVerdict, IncrDecision, IterLedger,
    LedgerEntry, PairMove,
};
pub use export::{
    chrome_trace_json, chrome_trace_with_series, json_escape, json_f64, Manifest, PhaseWall,
};
pub use registry::{
    global_snapshot, iterations_snapshot, publish_network, record_iteration, reset_global,
    reset_iterations, with_global, IterTelemetry, MetricValue, MetricsRegistry,
};
pub use series::{CounterSeries, SampledNetwork, SeriesStore};
pub use tracer::{drain, sim_event, span, SpanGuard, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the data if a previous holder panicked.
///
/// Every structure behind this crate's locks stays structurally valid
/// across any panic point (ring deques, metric maps, telemetry vectors
/// — all updates are single-call appends or overwrites), so poisoning
/// only means the panicking thread's last event may be missing.
/// Observability must never escalate a worker panic into a second
/// panic at drain/snapshot/export time.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The one global switch. Relaxed ordering is deliberate: the flag
/// gates *recording*, never correctness, so a stale read at worst loses
/// or gains a few events around the transition.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing/metrics recording enabled?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable recording if the `SCTM_OBS` environment variable is set to
/// anything other than `0`, `false` or the empty string. Returns the
/// resulting state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("SCTM_OBS") {
        let on = !matches!(v.as_str(), "" | "0" | "false" | "off");
        if on {
            set_enabled(true);
        }
    }
    enabled()
}
