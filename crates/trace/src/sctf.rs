//! `sctf` — the binary columnar trace container (format version 1).
//!
//! CSV (see [`crate::persist`]) is the *interchange* format: greppable,
//! diffable, importable from anything. It is also the wrong shape for
//! the replay path — at fft-64 scale a trace is hundreds of thousands
//! of records, and a per-record string parser plus row-struct
//! materialization is the dominant cold-load cost. `sctf` is the
//! *storage* format: one fixed little-endian header, then one section
//! per record **field** (columnar), so loading is a bounded number of
//! bounds/alignment checks followed by borrowed slices straight into
//! the owned file buffer.
//!
//! Layout (all integers little-endian; see DESIGN.md §14 for the
//! on-disk diagram and the compatibility policy):
//!
//! ```text
//! header   (240 B) magic, version, net tag, flags, record count,
//!                  capture exec time, checksum, section table
//! sections (each 8-aligned, zero-padded between)
//!   src        u32 × n          dst        u32 × n
//!   bytes      u32 × n          class      bitmap (bit i = Data)
//!   kind       u8  × n          prev       u32 × n (MAX = none)
//!   t_inject   zigzag-varint deltas (record order)
//!   t_deliver  zigzag-varint deltas from the same record's t_inject
//!   deps_off   u32 × (n+1)      deps       zigzag varints of i − dep
//!                                          (byte offsets, record order)
//!   csr_off    u32 × (n+1)      csr_adj    u32 × E  (children CSR)
//! ```
//!
//! Two dependency sections on purpose: `deps_off`/`deps` store each
//! record's dependency list verbatim (exact round-trip, original
//! order) as relative varints — dependencies point backward to recent
//! ids, so barrier-heavy traces where edges outnumber records pay ~2
//! bytes per edge instead of 4 — while `csr_off`/`csr_adj` store the
//! *inverted* adjacency — for each message, the messages its delivery
//! unblocks — as raw u32s in exactly the layout
//! [`ReplayScratch`](crate::replay::ReplayScratch) builds for the
//! oracle replay, so a loader can install it with two memcpys instead
//! of an O(E) rebuild ([`SctfReader::install_children_csr`]).
//!
//! The checksum is a word-strided FNV variant over the whole container
//! with the checksum field itself read as zero: little-endian u64
//! words fan out round-robin across four lanes, each lane a chain of
//! bijective `(h ^ word) * prime` steps, folded with the total length
//! at the end. Every step is a bijection of lane state, so any flipped
//! byte — header, section table, or payload — provably changes the
//! digest and surfaces as a typed [`TraceError::BadChecksum`], never a
//! silent misparse. The word stride keeps the verify walk off the
//! cold-load critical path (~8 bytes/cycle vs the byte-serial
//! classic), which is what lets `SctfReader::open` stay cheap enough
//! for the cache and wire fast paths.

use crate::log::{TraceLog, TraceRecord};
use crate::persist::TraceError;
use crate::replay::ReplayScratch;
use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
use sctm_engine::time::SimTime;
use std::path::Path;

#[cfg(target_endian = "big")]
compile_error!("the sctf zero-copy reader requires a little-endian host (see DESIGN.md §14)");

/// First eight bytes of every container. `\x89` keeps it out of ASCII,
/// `\r\n` catches line-ending translation, the trailing NUL catches
/// C-string truncation (the PNG trick).
pub const SCTF_MAGIC: [u8; 8] = *b"\x89SCTF\r\n\x00";

/// The one format version this build reads and writes.
pub const SCTF_VERSION: u32 = 1;

const SECTION_COUNT: usize = 12;
const HEADER_LEN: usize = 48 + SECTION_COUNT * 16;

// Section table indices.
const SEC_SRC: usize = 0;
const SEC_DST: usize = 1;
const SEC_BYTES: usize = 2;
const SEC_CLASS: usize = 3;
const SEC_KIND: usize = 4;
const SEC_PREV: usize = 5;
const SEC_TINJ: usize = 6;
const SEC_TDEL: usize = 7;
const SEC_DEPS_OFF: usize = 8;
const SEC_DEPS: usize = 9;
const SEC_CSR_OFF: usize = 10;
const SEC_CSR_ADJ: usize = 11;

const SECTION_NAMES: [&str; SECTION_COUNT] = [
    "src",
    "dst",
    "bytes",
    "class",
    "kind",
    "prev",
    "t_inject",
    "t_deliver",
    "deps_off",
    "deps",
    "csr_off",
    "csr_adj",
];

/// Header flag: the children-CSR sections are present.
const FLAG_CSR: u8 = 1;

/// `prev` column sentinel for "no previous same-source message".
const PREV_NONE: u32 = u32::MAX;

/// Network labels by tag byte; must stay append-only across versions.
const NET_LABELS: [&str; 6] = ["analytic", "emesh", "omesh", "oxbar", "hybrid", "unknown"];

/// Protocol-kind labels by tag byte; append-only, `other` last.
const KIND_LABELS: [&str; 15] = [
    "GetS",
    "GetX",
    "Data",
    "UpgAck",
    "Fetch",
    "FetchMiss",
    "Inv",
    "InvAck",
    "WbData",
    "MemReq",
    "MemResp",
    "WbMem",
    "BarArrive",
    "BarRelease",
    "other",
];

fn net_tag(label: &str) -> u8 {
    NET_LABELS
        .iter()
        .position(|&l| l == label)
        .unwrap_or(NET_LABELS.len() - 1) as u8
}

fn net_label(tag: u8) -> &'static str {
    NET_LABELS.get(tag as usize).copied().unwrap_or("unknown")
}

fn kind_tag(label: &str) -> u8 {
    KIND_LABELS
        .iter()
        .position(|&l| l == label)
        .unwrap_or(KIND_LABELS.len() - 1) as u8
}

fn kind_label(tag: u8) -> &'static str {
    KIND_LABELS.get(tag as usize).copied().unwrap_or("other")
}

// ---------------------------------------------------------------------
// varint / zigzag / checksum
// ---------------------------------------------------------------------

/// Zigzag of the wrapping difference: a bijection on `u64` pairs, so
/// *any* timestamp sequence round-trips exactly — monotone sequences
/// (the canonical case) encode in one or two bytes per record.
#[inline]
fn zz_delta(prev: u64, cur: u64) -> u64 {
    let d = cur.wrapping_sub(prev) as i64;
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn zz_apply(prev: u64, zz: u64) -> u64 {
    let d = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
    prev.wrapping_add(d as u64)
}

/// Inverse of [`zz_delta`] solved for `prev`: recover the value the
/// delta was taken *from* (used by the deps stream, which encodes each
/// edge relative to its own record id).
#[inline]
fn zz_unapply(cur: u64, zz: u64) -> u64 {
    let d = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
    cur.wrapping_sub(d as u64)
}

#[inline]
fn varint_push(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Decode one varint; `None` on truncation or a >10-byte run.
#[inline]
fn varint_read(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << (7 * shift);
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Feed `seg` into the four checksum lanes as little-endian u64 words,
/// round-robin from word index `*k`; a trailing partial word is
/// zero-padded (unambiguous because the total length folds into the
/// final digest).
fn eat_words(lanes: &mut [u64; 4], k: &mut usize, seg: &[u8]) {
    let mut it = seg.chunks_exact(8);
    for w in &mut it {
        let w = u64::from_le_bytes(w.try_into().unwrap());
        lanes[*k & 3] = (lanes[*k & 3] ^ w).wrapping_mul(FNV_PRIME);
        *k += 1;
    }
    let rem = it.remainder();
    if !rem.is_empty() {
        let mut t = [0u8; 8];
        t[..rem.len()].copy_from_slice(rem);
        lanes[*k & 3] = (lanes[*k & 3] ^ u64::from_le_bytes(t)).wrapping_mul(FNV_PRIME);
        *k += 1;
    }
}

/// Container checksum: word-strided four-lane FNV over everything with
/// the checksum field (bytes 32..40) read as zero. Each lane step and
/// the final fold are bijections, so a change to any single word —
/// hence any single byte or bit — always changes the digest; the four
/// independent lanes keep the multiply latency off the critical path
/// of every open/decode.
fn container_checksum(buf: &[u8]) -> u64 {
    let mut lanes = [
        FNV_SEED,
        FNV_SEED ^ 0x9e37_79b9_7f4a_7c15,
        FNV_SEED ^ 0xc2b2_ae3d_27d4_eb4f,
        FNV_SEED ^ 0x1656_67b1_9e37_79f9,
    ];
    let mut k = 0usize;
    // Both splits sit on 8-byte boundaries, so no word ever straddles
    // the zeroed checksum field.
    eat_words(&mut lanes, &mut k, &buf[..32]);
    lanes[k & 3] = lanes[k & 3].wrapping_mul(FNV_PRIME); // (h ^ 0) * p
    k += 1;
    eat_words(&mut lanes, &mut k, &buf[40..]);
    let mut h = lanes[0];
    for l in &lanes[1..] {
        h = (h.rotate_left(17) ^ l).wrapping_mul(FNV_PRIME);
    }
    (h ^ buf.len() as u64).wrapping_mul(FNV_PRIME)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Serialise a trace into an `sctf` v1 container.
pub fn to_sctf_bytes(log: &TraceLog) -> Vec<u8> {
    let n = log.records.len();
    assert!(n < u32::MAX as usize, "trace too large for sctf (u32 ids)");
    let mut out = Vec::with_capacity(encoded_size(log));
    out.extend_from_slice(&[0u8; HEADER_LEN]);

    let mut sections = [(0u64, 0u64); SECTION_COUNT];
    let begin = |out: &mut Vec<u8>| {
        pad8(out);
        out.len() as u64
    };

    // Fixed-width u32 columns.
    for (sec, field) in [
        (SEC_SRC, 0usize),
        (SEC_DST, 1),
        (SEC_BYTES, 2),
        (SEC_PREV, 3),
    ] {
        let off = begin(&mut out);
        for r in &log.records {
            let v = match field {
                0 => r.msg.src.0,
                1 => r.msg.dst.0,
                2 => r.msg.bytes,
                _ => r.prev_same_src.map_or(PREV_NONE, |p| p.0 as u32),
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
        sections[sec] = (off, out.len() as u64 - off);
    }

    // Class bitmap (bit i set = Data).
    {
        let off = begin(&mut out);
        let mut byte = 0u8;
        for (i, r) in log.records.iter().enumerate() {
            if r.msg.class == MsgClass::Data {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !n.is_multiple_of(8) {
            out.push(byte);
        }
        sections[SEC_CLASS] = (off, out.len() as u64 - off);
    }

    // Kind tags.
    {
        let off = begin(&mut out);
        out.extend(log.records.iter().map(|r| kind_tag(r.kind)));
        sections[SEC_KIND] = (off, out.len() as u64 - off);
    }

    // Timestamps: t_inject as deltas in record order, t_deliver as a
    // delta from its own record's t_inject.
    {
        let off = begin(&mut out);
        let mut prev = 0u64;
        for r in &log.records {
            varint_push(&mut out, zz_delta(prev, r.t_inject.as_ps()));
            prev = r.t_inject.as_ps();
        }
        sections[SEC_TINJ] = (off, out.len() as u64 - off);
        let off = begin(&mut out);
        for r in &log.records {
            varint_push(&mut out, zz_delta(r.t_inject.as_ps(), r.t_deliver.as_ps()));
        }
        sections[SEC_TDEL] = (off, out.len() as u64 - off);
    }

    // Dependencies, record order (exact round-trip), as zigzag varints
    // of `i − dep` — dependencies point backward to recent ids, so most
    // edges cost one byte. Unlike the children CSR below, this section
    // is never consumed zero-copy (`to_log` materializes per-record
    // vectors anyway), so it trades a fixed-width slice for far fewer
    // bytes where barrier fan-in makes edges outnumber records. The
    // offsets are byte positions into the stream, one per record plus
    // the terminator.
    {
        let off = begin(&mut out);
        let mut acc = 0u32;
        out.extend_from_slice(&acc.to_le_bytes());
        for (i, r) in log.records.iter().enumerate() {
            for d in &r.deps {
                acc += varint_len(zz_delta(d.0, i as u64)) as u32;
            }
            out.extend_from_slice(&acc.to_le_bytes());
        }
        sections[SEC_DEPS_OFF] = (off, out.len() as u64 - off);
        let off = begin(&mut out);
        for (i, r) in log.records.iter().enumerate() {
            for d in &r.deps {
                varint_push(&mut out, zz_delta(d.0, i as u64));
            }
        }
        sections[SEC_DEPS] = (off, out.len() as u64 - off);
    }

    // Children CSR: for each message, the messages its delivery
    // unblocks — exactly `ReplayScratch::{adj_off, adj}` for the oracle.
    {
        let mut cnt = vec![0u32; n];
        for r in &log.records {
            for d in &r.deps {
                cnt[d.0 as usize] += 1;
            }
        }
        let off = begin(&mut out);
        let mut acc = 0u32;
        out.extend_from_slice(&acc.to_le_bytes());
        for &c in &cnt {
            acc += c;
            out.extend_from_slice(&acc.to_le_bytes());
        }
        sections[SEC_CSR_OFF] = (off, out.len() as u64 - off);
        let off = begin(&mut out);
        let base = out.len();
        out.resize(base + acc as usize * 4, 0);
        // Reuse cnt as per-row fill cursors; iterating records in id
        // order keeps each row ascending, as build_csr produces.
        let mut fill = vec![0u32; n];
        let mut row_off = vec![0u32; n];
        let mut a = 0u32;
        for i in 0..n {
            row_off[i] = a;
            a += cnt[i];
        }
        for (i, r) in log.records.iter().enumerate() {
            for d in &r.deps {
                let d = d.0 as usize;
                let slot = base + (row_off[d] + fill[d]) as usize * 4;
                out[slot..slot + 4].copy_from_slice(&(i as u32).to_le_bytes());
                fill[d] += 1;
            }
        }
        sections[SEC_CSR_ADJ] = (off, out.len() as u64 - off);
    }
    pad8(&mut out);

    // Header.
    out[0..8].copy_from_slice(&SCTF_MAGIC);
    out[8..12].copy_from_slice(&SCTF_VERSION.to_le_bytes());
    out[12] = net_tag(log.capture_net);
    out[13] = FLAG_CSR;
    out[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    out[24..32].copy_from_slice(&log.capture_exec_time.as_ps().to_le_bytes());
    out[40..44].copy_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    for (i, (off, len)) in sections.iter().enumerate() {
        let at = 48 + i * 16;
        out[at..at + 8].copy_from_slice(&off.to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&len.to_le_bytes());
    }
    let sum = container_checksum(&out);
    out[32..40].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Exact byte size [`to_sctf_bytes`] would produce, without building
/// the buffer — the capture cache charges entries with this, so its
/// byte budget means "a directory of `.sctf` files this large".
pub fn encoded_size(log: &TraceLog) -> usize {
    let n = log.records.len();
    let pad = |x: usize| x.div_ceil(8) * 8;
    let mut edges = 0usize;
    let mut deps = 0usize;
    let mut tinj = 0usize;
    let mut tdel = 0usize;
    let mut prev = 0u64;
    for (i, r) in log.records.iter().enumerate() {
        edges += r.deps.len();
        for d in &r.deps {
            deps += varint_len(zz_delta(d.0, i as u64));
        }
        tinj += varint_len(zz_delta(prev, r.t_inject.as_ps()));
        prev = r.t_inject.as_ps();
        tdel += varint_len(zz_delta(r.t_inject.as_ps(), r.t_deliver.as_ps()));
    }
    HEADER_LEN
        + 4 * pad(4 * n)            // src, dst, bytes, prev
        + pad(n.div_ceil(8))        // class bitmap
        + pad(n)                    // kind tags
        + pad(tinj)
        + pad(tdel)
        + 2 * pad(4 * (n + 1))      // deps_off, csr_off
        + pad(deps)                 // deps varint stream
        + pad(4 * edges) // csr_adj
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// An owned byte buffer with 8-byte alignment, so in-bounds 8-aligned
/// offsets can be reinterpreted as `&[u32]`/`&[u64]` without copying.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // Safe view of the word buffer as bytes: u8 has alignment 1 and
        // every byte of a u64 is initialized.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        AlignedBuf {
            words,
            len: bytes.len(),
        }
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        // SAFETY: the Vec<u64> allocation is at least `len` bytes
        // (len ≤ 8·words.len()) and fully initialized.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Zero-copy view over one `sctf` container.
///
/// Opening validates structure (magic, version, checksum, section
/// bounds and alignment) and then borrows column slices directly out of
/// the owned buffer: the fixed-width columns ([`SctfReader::src`],
/// [`SctfReader::dst`], …) and the children CSR cost no per-record
/// work at all. Only the varint timestamp and dependency streams and
/// the final [`SctfReader::to_log`] materialization decode records.
pub struct SctfReader {
    buf: AlignedBuf,
    n: usize,
    net: &'static str,
    exec: SimTime,
    flags: u8,
    sections: [(usize, usize); SECTION_COUNT],
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

impl SctfReader {
    /// Validate and index a container held in memory (the buffer is
    /// copied once into an aligned allocation).
    pub fn from_bytes(bytes: &[u8]) -> Result<SctfReader, TraceError> {
        Self::from_buf(AlignedBuf::from_bytes(bytes))
    }

    /// Open a container file. The file is read once into an aligned
    /// buffer; everything after that is borrowing.
    pub fn open(path: impl AsRef<Path>) -> Result<SctfReader, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    fn from_buf(buf: AlignedBuf) -> Result<SctfReader, TraceError> {
        let b = buf.bytes();
        let short = |section: &'static str, need: u64| TraceError::TruncatedSection {
            section,
            need,
            have: b.len() as u64,
        };
        if b.len() < HEADER_LEN {
            return Err(short("header", HEADER_LEN as u64));
        }
        if b[0..8] != SCTF_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = read_u32(b, 8);
        if version != SCTF_VERSION {
            return Err(TraceError::VersionSkew { found: version });
        }
        let sec_count = read_u32(b, 40);
        if sec_count as usize != SECTION_COUNT {
            return Err(TraceError::VersionSkew { found: version });
        }
        let stored = read_u64(b, 32);
        let computed = container_checksum(b);
        if stored != computed {
            return Err(TraceError::BadChecksum { stored, computed });
        }
        let n64 = read_u64(b, 16);
        if n64 >= u32::MAX as u64 {
            return Err(TraceError::Invalid(format!(
                "sctf: record count {n64} exceeds the u32 id space"
            )));
        }
        let n = n64 as usize;
        let mut sections = [(0usize, 0usize); SECTION_COUNT];
        for (i, s) in sections.iter_mut().enumerate() {
            let at = 48 + i * 16;
            let off = read_u64(b, at);
            let len = read_u64(b, at + 8);
            let name = SECTION_NAMES[i];
            let end = off.checked_add(len).ok_or_else(|| short(name, u64::MAX))?;
            if end > b.len() as u64 {
                return Err(short(name, end));
            }
            if off < HEADER_LEN as u64 && len > 0 {
                return Err(TraceError::Invalid(format!(
                    "sctf: section {name} overlaps the header"
                )));
            }
            if !off.is_multiple_of(8) {
                return Err(TraceError::Misaligned {
                    section: name,
                    offset: off,
                });
            }
            *s = (off as usize, len as usize);
        }
        // Fixed-width sections must match the record count exactly.
        let expect: [(usize, u64); 8] = [
            (SEC_SRC, 4 * n64),
            (SEC_DST, 4 * n64),
            (SEC_BYTES, 4 * n64),
            (SEC_PREV, 4 * n64),
            (SEC_CLASS, n64.div_ceil(8)),
            (SEC_KIND, n64),
            (SEC_DEPS_OFF, 4 * (n64 + 1)),
            (SEC_CSR_OFF, 4 * (n64 + 1)),
        ];
        let flags = b[13];
        // Unknown flag bits and nonzero reserved bytes mean a future
        // writer; refuse rather than misparse (DESIGN.md §14.2). Checked
        // after the checksum so corruption still reports BadChecksum.
        if flags & !FLAG_CSR != 0 {
            return Err(TraceError::Invalid(format!(
                "sctf: unknown flag bits {:#04x}",
                flags & !FLAG_CSR
            )));
        }
        if b[14] != 0 || b[15] != 0 || read_u32(b, 44) != 0 {
            return Err(TraceError::Invalid(
                "sctf: reserved header bytes are nonzero".into(),
            ));
        }
        for (sec, want) in expect {
            if (sec == SEC_CSR_OFF || sec == SEC_CSR_ADJ) && flags & FLAG_CSR == 0 {
                continue;
            }
            if sections[sec].1 as u64 != want {
                return Err(TraceError::TruncatedSection {
                    section: SECTION_NAMES[sec],
                    need: want,
                    have: sections[sec].1 as u64,
                });
            }
        }
        let r = SctfReader {
            n,
            net: net_label(b[12]),
            exec: SimTime::from_ps(read_u64(b, 24)),
            flags,
            sections,
            buf,
        };
        // Extents claimed by the offset arrays must match the payload
        // sections, and the offsets must be monotone within them — the
        // zero-copy accessors below rely on it. The deps stream is
        // byte-addressed (unit 1); the children CSR holds u32s (unit 4).
        r.check_csr(SEC_DEPS_OFF, SEC_DEPS, 1)?;
        if r.flags & FLAG_CSR != 0 {
            r.check_csr(SEC_CSR_OFF, SEC_CSR_ADJ, 4)?;
        }
        Ok(r)
    }

    fn check_csr(&self, off_sec: usize, adj_sec: usize, unit: usize) -> Result<(), TraceError> {
        let off = self.u32_slice(off_sec);
        let extent = (self.sections[adj_sec].1 / unit) as u32;
        let mut prev = 0u32;
        for &o in off {
            if o < prev {
                return Err(TraceError::Invalid(format!(
                    "sctf: section {} offsets not monotone",
                    SECTION_NAMES[off_sec]
                )));
            }
            prev = o;
        }
        if off.last().copied().unwrap_or(0) != extent
            || off.first().copied().unwrap_or(0) != 0
            || !self.sections[adj_sec].1.is_multiple_of(unit)
        {
            return Err(TraceError::TruncatedSection {
                section: SECTION_NAMES[adj_sec],
                need: unit as u64 * off.last().copied().unwrap_or(0) as u64,
                have: self.sections[adj_sec].1 as u64,
            });
        }
        Ok(())
    }

    /// Borrow a section as `&[u32]`. Callers guarantee the section is a
    /// u32 column (validated at open: in-bounds, 8-aligned, length a
    /// multiple of 4 via the exact-length checks).
    fn u32_slice(&self, sec: usize) -> &[u32] {
        let (off, len) = self.sections[sec];
        let b = &self.buf.bytes()[off..off + len];
        // SAFETY: `b` lives inside the 8-byte-aligned owned buffer at an
        // 8-aligned offset (checked at open), its length covers len/4
        // u32s, u32 tolerates any bit pattern, and the borrow is tied to
        // `&self`. Little-endian layout is guaranteed by the
        // compile_error above on big-endian targets.
        unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u32>(), len / 4) }
    }

    fn byte_slice(&self, sec: usize) -> &[u8] {
        let (off, len) = self.sections[sec];
        &self.buf.bytes()[off..off + len]
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn capture_net(&self) -> &'static str {
        self.net
    }

    pub fn capture_exec_time(&self) -> SimTime {
        self.exec
    }

    /// Container size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len
    }

    /// Source node column, borrowed.
    pub fn src(&self) -> &[u32] {
        self.u32_slice(SEC_SRC)
    }

    /// Destination node column, borrowed.
    pub fn dst(&self) -> &[u32] {
        self.u32_slice(SEC_DST)
    }

    /// Message size column, borrowed.
    pub fn msg_bytes(&self) -> &[u32] {
        self.u32_slice(SEC_BYTES)
    }

    /// `prev_same_src` column, borrowed ([`u32::MAX`] = none).
    pub fn prev(&self) -> &[u32] {
        self.u32_slice(SEC_PREV)
    }

    /// Kind-tag column, borrowed (indexes the fixed kind intern table).
    pub fn kind_tags(&self) -> &[u8] {
        self.byte_slice(SEC_KIND)
    }

    /// Message class of record `i`.
    pub fn class(&self, i: usize) -> MsgClass {
        let bits = self.byte_slice(SEC_CLASS);
        if bits[i / 8] >> (i % 8) & 1 == 1 {
            MsgClass::Data
        } else {
            MsgClass::Control
        }
    }

    /// Record-order dependency stream, borrowed: record `i`'s
    /// dependencies occupy stream bytes `off[i]..off[i+1]`, each edge a
    /// zigzag varint of `i − dep` in original capture order (decode
    /// with [`SctfReader::record_deps`]).
    pub fn deps_csr(&self) -> (&[u32], &[u8]) {
        (self.u32_slice(SEC_DEPS_OFF), self.byte_slice(SEC_DEPS))
    }

    /// Decode record `i`'s dependency ids into `out` (cleared first),
    /// in their original capture order.
    pub fn record_deps(&self, i: usize, out: &mut Vec<MsgId>) -> Result<(), TraceError> {
        let (off, stream) = self.deps_csr();
        let row = &stream[off[i] as usize..off[i + 1] as usize];
        out.clear();
        let mut pos = 0usize;
        while pos < row.len() {
            let zz = varint_read(row, &mut pos).ok_or(TraceError::TruncatedSection {
                section: SECTION_NAMES[SEC_DEPS],
                need: off[i] as u64 + pos as u64 + 1,
                have: stream.len() as u64,
            })?;
            let d = zz_unapply(i as u64, zz);
            if d >= self.n as u64 {
                return Err(TraceError::Invalid(format!(
                    "sctf: record {i} has out-of-range dep"
                )));
            }
            out.push(MsgId(d));
        }
        Ok(())
    }

    /// Children CSR (messages unblocked by each delivery), borrowed —
    /// the exact `{adj_off, adj}` layout the oracle replay consumes.
    /// `None` when the container was written without it.
    pub fn children_csr(&self) -> Option<(&[u32], &[u32])> {
        (self.flags & FLAG_CSR != 0)
            .then(|| (self.u32_slice(SEC_CSR_OFF), self.u32_slice(SEC_CSR_ADJ)))
    }

    /// Install the container's children CSR into a [`ReplayScratch`],
    /// replacing the O(E) `build_csr` pass with two slice copies.
    /// Returns `false` (scratch untouched) if the section is absent.
    /// Pair with [`crate::replay::replay_oracle_preloaded`].
    pub fn install_children_csr(&self, scratch: &mut ReplayScratch) -> bool {
        match self.children_csr() {
            Some((off, adj)) => {
                scratch.install_children_csr(off, adj);
                true
            }
            None => false,
        }
    }

    /// Decode both timestamp streams. Exactly `n` values each, or the
    /// matching [`TraceError::TruncatedSection`].
    pub fn decode_times(&self) -> Result<(Vec<SimTime>, Vec<SimTime>), TraceError> {
        let mut tinj = Vec::with_capacity(self.n);
        let mut tdel = Vec::with_capacity(self.n);
        let stream = self.byte_slice(SEC_TINJ);
        let mut pos = 0usize;
        let mut prev = 0u64;
        for _ in 0..self.n {
            let zz = varint_read(stream, &mut pos).ok_or(TraceError::TruncatedSection {
                section: SECTION_NAMES[SEC_TINJ],
                need: pos as u64 + 1,
                have: stream.len() as u64,
            })?;
            prev = zz_apply(prev, zz);
            tinj.push(SimTime::from_ps(prev));
        }
        let stream = self.byte_slice(SEC_TDEL);
        let mut pos = 0usize;
        for &ti in tinj.iter() {
            let zz = varint_read(stream, &mut pos).ok_or(TraceError::TruncatedSection {
                section: SECTION_NAMES[SEC_TDEL],
                need: pos as u64 + 1,
                have: stream.len() as u64,
            })?;
            tdel.push(SimTime::from_ps(zz_apply(ti.as_ps(), zz)));
        }
        Ok((tinj, tdel))
    }

    /// Materialize a full [`TraceLog`] (row structs, per-record dep
    /// vectors) for the engines that consume one. The result passes
    /// [`TraceLog::validate`] or the load fails typed.
    pub fn to_log(&self) -> Result<TraceLog, TraceError> {
        let n = self.n;
        let (tinj, tdel) = self.decode_times()?;
        let (doff, deps) = self.deps_csr();
        let src = self.src();
        let dst = self.dst();
        let bytes = self.msg_bytes();
        let prev = self.prev();
        let kinds = self.kind_tags();
        let bad_id = |field: &'static str, i: usize| {
            TraceError::Invalid(format!("sctf: record {i} has out-of-range {field}"))
        };
        let bad = |i: usize, what: String| TraceError::Invalid(format!("sctf: record {i} {what}"));
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            // Semantic invariants check inline against the column
            // slices — the same predicates [`TraceLog::validate`]
            // walks, done here so the load stays a single pass.
            if tdel[i] < tinj[i] {
                return Err(bad(i, "delivered before injection".into()));
            }
            let p = match prev[i] {
                PREV_NONE => None,
                p if (p as usize) < n => {
                    if src[p as usize] != src[i] {
                        return Err(bad(i, "prev_same_src from a different node".into()));
                    }
                    Some(MsgId(p as u64))
                }
                _ => return Err(bad_id("prev", i)),
            };
            let row = &deps[doff[i] as usize..doff[i + 1] as usize];
            let mut dv = Vec::new();
            let mut pos = 0usize;
            while pos < row.len() {
                let zz = varint_read(row, &mut pos).ok_or(TraceError::TruncatedSection {
                    section: SECTION_NAMES[SEC_DEPS],
                    need: doff[i] as u64 + pos as u64 + 1,
                    have: deps.len() as u64,
                })?;
                let d = zz_unapply(i as u64, zz);
                if d >= n as u64 {
                    return Err(bad_id("dep", i));
                }
                if tdel[d as usize] > tinj[i] {
                    return Err(bad(i, format!("injected before its dep {d} delivered")));
                }
                dv.push(MsgId(d));
            }
            records.push(TraceRecord {
                msg: Message {
                    id: MsgId(i as u64),
                    src: NodeId(src[i]),
                    dst: NodeId(dst[i]),
                    class: self.class(i),
                    bytes: bytes[i],
                },
                t_inject: tinj[i],
                t_deliver: tdel[i],
                deps: dv,
                prev_same_src: p,
                kind: kind_label(kinds[i]),
            });
        }
        let log = TraceLog {
            records,
            capture_net: self.net,
            capture_exec_time: self.exec,
        };
        // Ids are dense by construction and every validate() predicate
        // ran inline above; keep the full walk as a debug-build
        // cross-check only so release loads stay one pass.
        debug_assert!(
            log.validate().is_ok(),
            "inline checks must imply validate()"
        );
        Ok(log)
    }
}

/// Parse a container held in memory straight to a [`TraceLog`].
pub fn from_sctf_bytes(bytes: &[u8]) -> Result<TraceLog, TraceError> {
    SctfReader::from_bytes(bytes)?.to_log()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Capture;
    use sctm_cmp::protocol::{InjectRecord, TraceHook};

    fn tiny() -> TraceLog {
        let mut cap = Capture::new();
        let mk = |id: u64, src: u32, dst: u32, class: MsgClass| Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class,
            bytes: if class == MsgClass::Data { 72 } else { 8 },
        };
        cap.on_inject(InjectRecord {
            msg: mk(0, 0, 3, MsgClass::Control),
            at: SimTime::from_ps(100),
            deps: vec![],
            prev_same_src: None,
            kind: "GetS",
        });
        cap.on_deliver(MsgId(0), SimTime::from_ps(900));
        cap.on_inject(InjectRecord {
            msg: mk(1, 3, 0, MsgClass::Data),
            at: SimTime::from_ps(1100),
            deps: vec![MsgId(0)],
            prev_same_src: None,
            kind: "Data",
        });
        cap.on_deliver(MsgId(1), SimTime::from_ps(2400));
        cap.finish("analytic", SimTime::from_ps(3000))
    }

    fn assert_logs_equal(a: &TraceLog, b: &TraceLog) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.capture_net, b.capture_net);
        assert_eq!(a.capture_exec_time, b.capture_exec_time);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.msg.id, y.msg.id);
            assert_eq!(x.msg.src, y.msg.src);
            assert_eq!(x.msg.dst, y.msg.dst);
            assert_eq!(x.msg.class, y.msg.class);
            assert_eq!(x.msg.bytes, y.msg.bytes);
            assert_eq!(x.t_inject, y.t_inject);
            assert_eq!(x.t_deliver, y.t_deliver);
            assert_eq!(x.deps, y.deps);
            assert_eq!(x.prev_same_src, y.prev_same_src);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let log = tiny();
        let bytes = to_sctf_bytes(&log);
        let back = from_sctf_bytes(&bytes).unwrap();
        assert_logs_equal(&log, &back);
    }

    #[test]
    fn encoded_size_is_exact() {
        let log = tiny();
        assert_eq!(encoded_size(&log), to_sctf_bytes(&log).len());
        assert_eq!(encoded_size(&TraceLog::default()), {
            let b = to_sctf_bytes(&TraceLog::default());
            b.len()
        });
    }

    #[test]
    fn empty_log_roundtrips() {
        let bytes = to_sctf_bytes(&TraceLog::default());
        let back = from_sctf_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn zero_copy_columns_match_records() {
        let log = tiny();
        let bytes = to_sctf_bytes(&log);
        let r = SctfReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.len(), log.len());
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(r.src()[i], rec.msg.src.0);
            assert_eq!(r.dst()[i], rec.msg.dst.0);
            assert_eq!(r.msg_bytes()[i], rec.msg.bytes);
            assert_eq!(r.class(i), rec.msg.class);
        }
        let (off, stream) = r.deps_csr();
        assert_eq!(off.len(), log.len() + 1);
        // One edge, one byte: the dep on the previous id zigzags to 2.
        assert_eq!(stream, &[2]);
        let mut dv = Vec::new();
        r.record_deps(1, &mut dv).unwrap();
        assert_eq!(dv, vec![MsgId(0)]);
        // Children CSR: msg 0 unblocks msg 1.
        let (coff, cadj) = r.children_csr().unwrap();
        assert_eq!(coff, &[0, 1, 1]);
        assert_eq!(cadj, &[1]);
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let bytes = to_sctf_bytes(&tiny());
        // Truncations at every length short of the full container.
        for cut in 0..bytes.len() {
            let err = SctfReader::from_bytes(&bytes[..cut]).err();
            assert!(err.is_some(), "truncation at {cut} decoded");
        }
        // Any single flipped payload bit is a checksum (or structural)
        // error — sample every 7th byte to keep the test quick.
        for at in (0..bytes.len()).step_by(7) {
            let mut b = bytes.clone();
            b[at] ^= 0x40;
            assert!(
                SctfReader::from_bytes(&b).and_then(|r| r.to_log()).is_err(),
                "flipped byte {at} decoded silently"
            );
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = to_sctf_bytes(&tiny());
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Version is checked before the checksum: a future container is
        // reported as skew, not corruption.
        assert_eq!(
            SctfReader::from_bytes(&bytes).err(),
            Some(TraceError::VersionSkew { found: 2 })
        );
    }

    #[test]
    fn bad_checksum_is_typed() {
        let mut bytes = to_sctf_bytes(&tiny());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            SctfReader::from_bytes(&bytes),
            Err(TraceError::BadChecksum { .. })
        ));
    }

    #[test]
    fn timestamps_survive_non_monotone_logs() {
        // Hand-built, non-canonical order: deltas go backwards; zigzag
        // wrapping must still round-trip exactly.
        let mk = |id: u64, inj: u64, del: u64| TraceRecord {
            msg: Message {
                id: MsgId(id),
                src: NodeId(0),
                dst: NodeId(1),
                class: MsgClass::Control,
                bytes: 8,
            },
            t_inject: SimTime::from_ps(inj),
            t_deliver: SimTime::from_ps(del),
            deps: vec![],
            prev_same_src: None,
            kind: "other",
        };
        let log = TraceLog {
            records: vec![mk(0, 5000, 6000), mk(1, 10, 20), mk(2, 7000, 7001)],
            capture_net: "unknown",
            capture_exec_time: SimTime::from_ps(9000),
        };
        let back = from_sctf_bytes(&to_sctf_bytes(&log)).unwrap();
        assert_logs_equal(&log, &back);
    }

    #[test]
    fn zigzag_delta_is_a_bijection() {
        let cases = [
            (0u64, 0u64),
            (0, u64::MAX),
            (u64::MAX, 0),
            (5, 5),
            (1 << 60, 3),
        ];
        for (a, b) in cases {
            assert_eq!(zz_apply(a, zz_delta(a, b)), b, "({a}, {b})");
        }
    }
}
