//! The deterministic parallel sweep executor's core guarantee: a grid
//! of simulations run through `par_map` is **bit-identical** to the
//! same grid run serially, at any thread count — parallelism changes
//! when a job runs, never what it computes or where its result lands.

use sctm::engine::par::{num_threads, par_map, serial_map};
use sctm::prelude::*;

/// Everything observable about one run, with float fields captured
/// bit-for-bit.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Fingerprint {
    mode: &'static str,
    network: &'static str,
    workload: &'static str,
    exec_time_ps: u64,
    messages: u64,
    lat_ctrl_bits: u64,
    lat_data_bits: u64,
}

fn fingerprint(r: &RunReport) -> Fingerprint {
    Fingerprint {
        mode: r.mode,
        network: r.network,
        workload: r.workload,
        exec_time_ps: r.exec_time.as_ps(),
        messages: r.messages,
        lat_ctrl_bits: r.mean_lat_ctrl_ns.to_bits(),
        lat_data_bits: r.mean_lat_data_ns.to_bits(),
    }
}

/// A small experiment × network × mode grid (independent full
/// simulations, like the bench harness and `design_sweep` run).
fn grid() -> Vec<impl FnOnce() -> Fingerprint + Send> {
    let mut jobs = Vec::new();
    for kernel in [Kernel::Fft, Kernel::Lu] {
        for kind in [NetworkKind::Omesh, NetworkKind::Oxbar, NetworkKind::Obus] {
            for mode in [Mode::ExecutionDriven, Mode::SelfCorrection { max_iters: 2 }] {
                jobs.push(move || {
                    let e = Experiment::new(SystemConfig::new(2, kind), kernel).with_ops(150);
                    fingerprint(&e.execute(&RunSpec::new(mode)).expect("valid spec").report)
                });
            }
        }
    }
    jobs
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = serial_map(grid());
    let parallel = par_map(grid());
    assert_eq!(
        serial, parallel,
        "parallel sweep diverged from serial reference"
    );
}

#[test]
fn parallel_sweep_is_stable_across_runs() {
    assert_eq!(par_map(grid()), par_map(grid()));
}

#[test]
fn results_stay_in_input_order_with_skewed_job_costs() {
    // Cheap and expensive jobs interleaved: slot i must still hold job
    // i's result even though completion order scrambles.
    let jobs: Vec<_> = (0..48u64)
        .map(|i| {
            move || {
                if i % 7 == 0 {
                    // Disproportionately expensive cell.
                    let e = Experiment::new(SystemConfig::new(2, NetworkKind::Omesh), Kernel::Fft)
                        .with_ops(200);
                    let r = e.execute(&RunSpec::exec_driven()).expect("valid spec");
                    (i, r.report.exec_time.as_ps())
                } else {
                    (i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                }
            }
        })
        .collect();
    let got = par_map(jobs);
    for (slot, (i, _)) in got.iter().enumerate() {
        assert_eq!(slot as u64, *i, "result landed in the wrong slot");
    }
}

#[test]
fn executor_reports_at_least_one_worker() {
    assert!(num_threads() >= 1);
}

#[test]
fn tracing_state_never_changes_results() {
    // The observability layer must be write-only: enabling tracing and
    // metrics collection may cost wall time, never alter a simulation
    // result. Fingerprints (including float bit patterns) must be
    // byte-identical with tracing off, on, and off again, serial and
    // parallel, at whatever SCTM_NUM_THREADS this test runs under.
    use sctm::obs;

    let baseline = par_map(grid());
    obs::set_enabled(true);
    let traced_parallel = par_map(grid());
    let traced_serial = serial_map(grid());
    let events = obs::drain();
    obs::set_enabled(false);
    obs::drain(); // leave no residue for other tests in this binary
    let after = par_map(grid());

    assert!(
        !events.is_empty(),
        "tracing was enabled but no events were recorded"
    );
    assert_eq!(baseline, traced_parallel, "tracing-on parallel diverged");
    assert_eq!(baseline, traced_serial, "tracing-on serial diverged");
    assert_eq!(baseline, after, "disabling tracing left state behind");
}
