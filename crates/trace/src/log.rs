//! Trace log format and capture.
//!
//! A [`TraceLog`] is everything the trace model knows about one
//! execution-driven run: per message — endpoints, size/class, capture
//! injection & delivery times, *full* causal dependencies (which the
//! capture instrumentation can see because it lives inside the
//! full-system simulator), and per-endpoint program order.
//!
//! The replay engines deliberately use different *subsets* of this
//! knowledge (see `replay.rs`): the classic trace model uses only
//! timestamps; the paper's self-correction model uses timestamps +
//! per-endpoint order + the arrival-gating heuristic; the oracle replay
//! uses the full dependency DAG. Capturing everything once and
//! down-sampling knowledge per engine is what makes the accuracy
//! comparison (experiment E3) apples-to-apples.

use sctm_cmp::protocol::{InjectRecord, TraceHook};
use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
use sctm_engine::time::SimTime;

/// One message in the trace.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub msg: Message,
    /// Capture-time injection instant.
    pub t_inject: SimTime,
    /// Capture-time delivery instant.
    pub t_deliver: SimTime,
    /// Deliveries whose completion enabled this injection.
    pub deps: Vec<MsgId>,
    /// Previous message injected by the same source node.
    pub prev_same_src: Option<MsgId>,
    /// Protocol kind label (diagnostics only).
    pub kind: &'static str,
}

/// A complete captured trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Indexed by dense message id (`MsgId(i)` ↔ `records[i]`).
    pub records: Vec<TraceRecord>,
    /// Label of the network the capture ran on.
    pub capture_net: &'static str,
    /// Execution time of the capture run (set by the caller).
    pub capture_exec_time: SimTime,
}

impl TraceLog {
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    #[inline]
    pub fn rec(&self, id: MsgId) -> &TraceRecord {
        &self.records[id.0 as usize]
    }

    /// Heap-resident size of this log: the row structs plus every
    /// per-record dependency allocation. This is what holding the
    /// parsed form in memory actually costs — the baseline the sctf
    /// container's ≤0.5× cold-load residency is measured against.
    pub fn resident_bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<TraceRecord>()
            + self
                .records
                .iter()
                .map(|r| r.deps.capacity() * std::mem::size_of::<MsgId>())
                .sum::<usize>()
    }

    /// Latest capture delivery instant (used to translate replay
    /// deliveries into an execution-time estimate).
    pub fn last_delivery(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.t_deliver)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Sanity-check structural invariants; returns a human-readable
    /// error instead of panicking so property tests can assert on it.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if r.msg.id.0 as usize != i {
                return Err(format!("record {i} has id {:?}", r.msg.id));
            }
            if r.t_deliver < r.t_inject {
                return Err(format!("msg {i} delivered before injection"));
            }
            for d in &r.deps {
                if d.0 as usize >= self.records.len() {
                    return Err(format!("msg {i} depends on unknown {d:?}"));
                }
                let dep = self.rec(*d);
                if dep.t_deliver > r.t_inject {
                    return Err(format!(
                        "msg {i} injected at {:?} before its dep {d:?} delivered at {:?}",
                        r.t_inject, dep.t_deliver
                    ));
                }
            }
            if let Some(p) = r.prev_same_src {
                let prev = self.rec(p);
                if prev.msg.src != r.msg.src {
                    return Err(format!("msg {i} prev_same_src from a different node"));
                }
                // Note: prev_same_src is *decision* order, not timestamp
                // order — a node can commit to a far-future send (e.g. a
                // memory response) before deciding a nearer-term one, so
                // no t_inject monotonicity is required here. Replay
                // engines use the time-sorted `per_source_order`.
            }
        }
        Ok(())
    }

    /// For each message, the id of the *most recent delivery to its
    /// source node* at or before its injection — the arrival-gating
    /// relation the self-correction model pairs departures with. `None`
    /// when the node had received nothing yet.
    ///
    /// This is exactly the knowledge a network-level trace gives you
    /// without protocol instrumentation: you can see what arrived at a
    /// node before it transmitted, but not *which* arrival caused what.
    pub fn arrival_gates(&self) -> Vec<Option<MsgId>> {
        let mut gates = Vec::new();
        let (nodes, canonical) = self.scan_bounds();
        self.arrival_gates_into(
            &mut gates,
            &mut Vec::new(),
            &mut Vec::new(),
            nodes,
            canonical,
        );
        gates
    }

    /// One fused pass over the records computing the two facts every
    /// replay pass needs: the node-id bound and whether the log is in
    /// canonical `(t_inject, id)` order with dense ids. The record
    /// array is ~100 bytes/entry, so each separate scan of it is a
    /// strided walk over tens of MB at fft-64 scale — callers should
    /// scan once and hand both results to [`TraceLog::arrival_gates_into`]
    /// and the replay chain builder rather than letting each recompute.
    pub fn scan_bounds(&self) -> (usize, bool) {
        let mut nodes = 0usize;
        let mut canonical = true;
        let mut prev = (SimTime::ZERO, 0u64);
        for (i, r) in self.records.iter().enumerate() {
            nodes = nodes.max(r.msg.src.idx() + 1).max(r.msg.dst.idx() + 1);
            let key = (r.t_inject, r.msg.id.0);
            canonical &= prev <= key && r.msg.id.0 as usize == i;
            prev = key;
        }
        (nodes, canonical)
    }

    /// [`TraceLog::arrival_gates`] writing into caller-owned buffers, so
    /// a replay loop can recompute the gating every pass without
    /// reallocating its arrival list each time. `arrivals` and
    /// `last_arrival` are pure scratch; all three buffers are cleared
    /// and resized here.
    ///
    /// The conceptual event order is `(time, arrivals-before-departures,
    /// id)`. Departures in that order are exactly the records in
    /// canonical trace order (`finish` sorts by `(t_inject, id)`), so
    /// only the arrivals need sorting — half the data the naive
    /// sort-everything formulation pays for — and the two streams merge
    /// in one pass. Non-canonical logs (hand-built in tests) fall back
    /// to sorting a departure index.
    pub fn arrival_gates_into(
        &self,
        gates: &mut Vec<Option<MsgId>>,
        arrivals: &mut Vec<(SimTime, u32)>,
        last_arrival: &mut Vec<Option<MsgId>>,
        nodes: usize,
        canonical: bool,
    ) {
        arrivals.clear();
        arrivals.reserve(self.records.len());
        for r in &self.records {
            arrivals.push((r.t_deliver, r.msg.id.0 as u32));
        }
        arrivals.sort_unstable();
        last_arrival.clear();
        last_arrival.resize(nodes, None);
        gates.clear();
        gates.resize(self.records.len(), None);
        let dep_order: Vec<u32> = if canonical {
            Vec::new()
        } else {
            let mut idx: Vec<u32> = (0..self.records.len() as u32).collect();
            idx.sort_unstable_by_key(|&i| {
                let r = &self.records[i as usize];
                (r.t_inject, r.msg.id.0)
            });
            idx
        };
        let mut ai = 0usize;
        let mut gate = |di: usize| {
            let r = &self.records[di];
            // An arrival at the departure's instant is seen by it.
            while ai < arrivals.len() && arrivals[ai].0 <= r.t_inject {
                let (_, id) = arrivals[ai];
                let dst = self.records[id as usize].msg.dst.idx();
                last_arrival[dst] = Some(MsgId(id as u64));
                ai += 1;
            }
            gates[r.msg.id.0 as usize] = last_arrival[r.msg.src.idx()];
        };
        if canonical {
            (0..self.records.len()).for_each(&mut gate);
        } else {
            dep_order.iter().for_each(|&di| gate(di as usize));
        }
    }

    /// Message ids grouped by source node, in injection order.
    pub fn per_source_order(&self) -> Vec<Vec<MsgId>> {
        let mut nodes: usize = 0;
        for r in &self.records {
            nodes = nodes.max(r.msg.src.idx() + 1);
        }
        let mut order: Vec<Vec<MsgId>> = vec![Vec::new(); nodes];
        let mut idx: Vec<_> = (0..self.records.len()).collect();
        // (t_inject, i) is unique per record → unstable sort is exact.
        idx.sort_unstable_by_key(|&i| (self.records[i].t_inject, i));
        for i in idx {
            order[self.records[i].msg.src.idx()].push(MsgId(i as u64));
        }
        order
    }
}

/// Capture hook: plugs into `CmpSim::run` and builds a [`TraceLog`].
///
/// The hook records raw injections and deliveries exactly as it sees
/// them; [`Capture::finish`] canonicalizes afterwards. This split is
/// what makes parallel capture possible: in an epoch-parallel run each
/// shard owns its own `Capture`, sees injections for messages *sourced*
/// at its nodes and deliveries for messages *destined* to them, and the
/// per-shard parts are concatenated with [`Capture::merge`] before the
/// single canonicalizing `finish`. Because the simulator assigns every
/// message the same id and timestamps regardless of sharding, the
/// canonical form — records sorted by `(t_inject, capture id)`, densely
/// renumbered, deps/prev remapped — is byte-identical at any thread
/// count.
#[derive(Debug, Default)]
pub struct Capture {
    /// Raw injection records, in the order this hook observed them.
    recs: Vec<InjectRecord>,
    /// Raw `(capture message id, delivery instant)` pairs.
    delivers: Vec<(u64, SimTime)>,
    /// Compact `(at, id)` sort keys, parallel to `recs`. The records
    /// are ~100 bytes each, so `finish`'s ordering passes walk this
    /// 16-byte-stride array instead of striding through the records.
    keys: Vec<(SimTime, u64)>,
    /// Largest capture-time id seen, tracked here so `finish` can size
    /// its direct-index tables without rescanning every record.
    max_id: u64,
}

impl Capture {
    pub fn new() -> Self {
        Self::default()
    }

    /// A capture with its buffers pre-sized for roughly `msgs`
    /// messages. Captures at fft-64 scale retain ~30MB of records, and
    /// growing there by doubling re-copies the lot — callers that can
    /// estimate the message count (from the workload size, or from the
    /// previous self-correction iteration's trace) should.
    pub fn with_capacity(msgs: usize) -> Self {
        Capture {
            recs: Vec::with_capacity(msgs),
            delivers: Vec::with_capacity(msgs),
            keys: Vec::with_capacity(msgs),
            max_id: 0,
        }
    }

    /// Concatenate per-shard capture parts into one. Order of parts is
    /// irrelevant: `finish` canonicalizes.
    pub fn merge(parts: impl IntoIterator<Item = Capture>) -> Capture {
        let mut out = Capture::new();
        for p in parts {
            out.recs.extend(p.recs);
            out.delivers.extend(p.delivers);
            out.keys.extend(p.keys);
            out.max_id = out.max_id.max(p.max_id);
        }
        out
    }

    /// Finish capture: join injections with deliveries, sort into the
    /// canonical `(t_inject, capture id)` order, renumber densely, and
    /// remap all cross-references. `net_label` and `exec_time` come from
    /// the run.
    pub fn finish(self, net_label: &'static str, exec_time: SimTime) -> TraceLog {
        let Capture {
            recs,
            delivers,
            keys,
            max_id,
        } = self;
        assert_eq!(
            recs.len(),
            delivers.len(),
            "capture ended with undelivered (or doubly-delivered) messages"
        );
        assert!(
            recs.len() < u32::MAX as usize,
            "trace too large to renumber"
        );
        // Canonical order is (t_inject, capture id). Sort a u32 index
        // array rather than the ~100-byte records themselves: the hook
        // pushed records in injection-time order, so the keys are nearly
        // sorted and the single gather pass below does all the moving.
        let mut idx: Vec<u32> = (0..recs.len() as u32).collect();
        // A sequential capture observes injections in time order
        // already — only ties (equal `at`, distinct interleaved ids)
        // are out of place — so one streaming pass over the compact
        // keys that sorts each tie-run by id replaces the full
        // O(n log n) sort. Sharded parts concatenated by `merge` fail
        // the in-order scan and take the full sort.
        let n = recs.len();
        let mut in_order = true;
        let mut run = 0usize;
        for i in 1..=n {
            if i < n && keys[i].0 < keys[i - 1].0 {
                in_order = false;
                break;
            }
            if i == n || keys[i].0 != keys[run].0 {
                if i - run > 1 {
                    idx[run..i].sort_unstable_by_key(|&k| keys[k as usize].1);
                }
                run = i;
            }
        }
        if !in_order {
            idx.sort_unstable_by_key(|&i| keys[i as usize]);
        }
        // Map capture-time ids (unique but sparse — the simulator
        // interleaves them per source, `seq × sources + src`) to
        // canonical dense ids. Sparsity is bounded — the largest id is
        // below `sources × (max per-source count + 1)` — so a direct
        // index table is affordable and turns every dep/deliver lookup
        // into one O(1) probe instead of a cache-hostile binary search
        // (which dominated capture wall time at ~300k messages).
        const UNSET: u32 = u32::MAX;
        let max_id = max_id as usize;
        let mut renum_tbl = vec![UNSET; max_id + 1];
        for (new, &i) in idx.iter().enumerate() {
            renum_tbl[keys[i as usize].1 as usize] = new as u32;
        }
        let renum = |old: MsgId| -> MsgId {
            let new = renum_tbl[old.0 as usize];
            assert_ne!(new, UNSET, "trace references an uncaptured message");
            MsgId(new as u64)
        };
        // Join deliveries the same way: delivery time by capture id.
        let t_unset = SimTime::from_ps(u64::MAX);
        let mut deliver_tbl = vec![t_unset; max_id + 1];
        for &(id, at) in &delivers {
            deliver_tbl[id as usize] = at;
        }
        // Single gather: move each record to its canonical slot while
        // renumbering its id and cross-references in place. Each source
        // slot is visited exactly once (the index array is a
        // permutation), so swapping a cheap placeholder in is enough —
        // no second buffer, no per-record clone.
        let mut recs = recs;
        let placeholder = || InjectRecord {
            msg: Message {
                id: MsgId(u64::MAX),
                src: NodeId(0),
                dst: NodeId(0),
                class: MsgClass::Control,
                bytes: 0,
            },
            at: SimTime::ZERO,
            deps: Vec::new(),
            prev_same_src: None,
            kind: "",
        };
        let records: Vec<TraceRecord> = idx
            .iter()
            .enumerate()
            .map(|(new, &i)| {
                let r = std::mem::replace(&mut recs[i as usize], placeholder());
                let t_deliver = deliver_tbl[r.msg.id.0 as usize];
                assert_ne!(t_deliver, t_unset, "message captured but never delivered");
                let mut msg = r.msg;
                msg.id = MsgId(new as u64);
                let mut deps = r.deps;
                for d in deps.iter_mut() {
                    *d = renum(*d);
                }
                TraceRecord {
                    msg,
                    t_inject: r.at,
                    t_deliver,
                    deps,
                    prev_same_src: r.prev_same_src.map(renum),
                    kind: r.kind,
                }
            })
            .collect();
        TraceLog {
            records,
            capture_net: net_label,
            capture_exec_time: exec_time,
        }
    }
}

impl TraceHook for Capture {
    fn on_inject(&mut self, rec: InjectRecord) {
        self.max_id = self.max_id.max(rec.msg.id.0);
        self.keys.push((rec.at, rec.msg.id.0));
        self.recs.push(rec);
    }

    fn on_deliver(&mut self, id: MsgId, at: SimTime) {
        self.delivers.push((id.0, at));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgClass, NodeId};

    fn mk_rec(id: u64, src: u32, dst: u32, inj: u64, del: u64, deps: Vec<u64>) -> TraceRecord {
        TraceRecord {
            msg: Message {
                id: MsgId(id),
                src: NodeId(src),
                dst: NodeId(dst),
                class: MsgClass::Control,
                bytes: 8,
            },
            t_inject: SimTime::from_ps(inj),
            t_deliver: SimTime::from_ps(del),
            deps: deps.into_iter().map(MsgId).collect(),
            prev_same_src: None,
            kind: "test",
        }
    }

    fn tiny_log() -> TraceLog {
        // 0: n0→n1 at 0..100; 1: n1→n0 at 150..250 (dep 0); 2: n0→n1 at
        // 300..400 (dep 1).
        TraceLog {
            records: vec![
                mk_rec(0, 0, 1, 0, 100, vec![]),
                mk_rec(1, 1, 0, 150, 250, vec![0]),
                mk_rec(2, 0, 1, 300, 400, vec![1]),
            ],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(500),
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(tiny_log().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_causality_violation() {
        let mut log = tiny_log();
        log.records[2].t_inject = SimTime::from_ps(200); // before dep 1 delivers at 250
        assert!(log.validate().is_err());
    }

    #[test]
    fn validate_rejects_delivery_before_injection() {
        let mut log = tiny_log();
        log.records[0].t_deliver = SimTime::from_ps(0);
        log.records[0].t_inject = SimTime::from_ps(10);
        assert!(log.validate().is_err());
    }

    #[test]
    fn arrival_gates_pair_departures_with_latest_arrival() {
        let log = tiny_log();
        let gates = log.arrival_gates();
        assert_eq!(gates[0], None, "first departure had no arrivals");
        assert_eq!(gates[1], Some(MsgId(0)), "n1's reply gated by msg 0");
        assert_eq!(gates[2], Some(MsgId(1)), "n0's next gated by msg 1");
    }

    #[test]
    fn arrival_gates_tie_arrival_first() {
        // Arrival and departure at the same instant: departure sees it.
        let log = TraceLog {
            records: vec![
                mk_rec(0, 0, 1, 0, 100, vec![]),
                mk_rec(1, 1, 0, 100, 200, vec![0]),
            ],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(200),
        };
        assert_eq!(log.arrival_gates()[1], Some(MsgId(0)));
    }

    #[test]
    fn per_source_order_sorted_by_injection() {
        let log = TraceLog {
            records: vec![
                mk_rec(0, 0, 1, 500, 600, vec![]),
                mk_rec(1, 0, 1, 100, 200, vec![]),
                mk_rec(2, 1, 0, 50, 80, vec![]),
            ],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(600),
        };
        let order = log.per_source_order();
        assert_eq!(order[0], vec![MsgId(1), MsgId(0)]);
        assert_eq!(order[1], vec![MsgId(2)]);
    }

    #[test]
    fn capture_hook_roundtrip() {
        let mut cap = Capture::new();
        let msg = Message {
            id: MsgId(0),
            src: NodeId(0),
            dst: NodeId(1),
            class: MsgClass::Data,
            bytes: 72,
        };
        cap.on_inject(InjectRecord {
            msg,
            at: SimTime::from_ps(10),
            deps: vec![],
            prev_same_src: None,
            kind: "GetS",
        });
        cap.on_deliver(MsgId(0), SimTime::from_ps(90));
        let log = cap.finish("emesh", SimTime::from_ps(100));
        assert_eq!(log.len(), 1);
        assert_eq!(log.rec(MsgId(0)).t_deliver, SimTime::from_ps(90));
        assert_eq!(log.capture_net, "emesh");
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn capture_merge_canonicalizes_sparse_interleaved_ids() {
        // Two shard-style parts with sparse interleaved ids (seq·n + src,
        // n = 2): each part sees injections sourced at its node and
        // deliveries destined to it, exactly as in a sharded capture.
        let msg = |id, src, dst| Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: MsgClass::Control,
            bytes: 8,
        };
        let inj = |m, at, deps: Vec<u64>, prev: Option<u64>| InjectRecord {
            msg: m,
            at: SimTime::from_ps(at),
            deps: deps.into_iter().map(MsgId).collect(),
            prev_same_src: prev.map(MsgId),
            kind: "t",
        };
        let mut a = Capture::new();
        a.on_inject(inj(msg(0, 0, 1), 10, vec![], None));
        a.on_inject(inj(msg(2, 0, 1), 300, vec![1], Some(0)));
        a.on_deliver(MsgId(1), SimTime::from_ps(250));
        let mut b = Capture::new();
        b.on_inject(inj(msg(1, 1, 0), 150, vec![0], None));
        b.on_deliver(MsgId(0), SimTime::from_ps(100));
        b.on_deliver(MsgId(2), SimTime::from_ps(400));
        let log = Capture::merge([a, b]).finish("test", SimTime::from_ps(500));
        assert_eq!(log.validate(), Ok(()));
        assert_eq!(log.len(), 3);
        // Canonical (t_inject, id) order here maps old ids 0,1,2 → 0,1,2.
        assert_eq!(log.rec(MsgId(1)).msg.src, NodeId(1));
        assert_eq!(log.rec(MsgId(1)).t_deliver, SimTime::from_ps(250));
        assert_eq!(log.rec(MsgId(2)).deps, vec![MsgId(1)]);
        assert_eq!(log.rec(MsgId(2)).prev_same_src, Some(MsgId(0)));
    }

    #[test]
    fn capture_merge_is_order_invariant() {
        let build = |swap: bool| {
            let msg = |id, src, dst| Message {
                id: MsgId(id),
                src: NodeId(src),
                dst: NodeId(dst),
                class: MsgClass::Data,
                bytes: 72,
            };
            let mut a = Capture::new();
            a.on_inject(InjectRecord {
                msg: msg(0, 0, 1),
                at: SimTime::from_ps(5),
                deps: vec![],
                prev_same_src: None,
                kind: "t",
            });
            a.on_deliver(MsgId(1), SimTime::from_ps(90));
            let mut b = Capture::new();
            b.on_inject(InjectRecord {
                msg: msg(1, 1, 0),
                at: SimTime::from_ps(7),
                deps: vec![],
                prev_same_src: None,
                kind: "t",
            });
            b.on_deliver(MsgId(0), SimTime::from_ps(80));
            let parts = if swap { vec![b, a] } else { vec![a, b] };
            Capture::merge(parts).finish("test", SimTime::from_ps(100))
        };
        assert_eq!(format!("{:?}", build(false)), format!("{:?}", build(true)));
    }

    #[test]
    fn last_delivery() {
        assert_eq!(tiny_log().last_delivery(), SimTime::from_ps(400));
        assert_eq!(TraceLog::default().last_delivery(), SimTime::ZERO);
    }
}
