//! Optical link budget and energy solver.
//!
//! An [`OpticalPath`] is the physical inventory of one worst-case light
//! path: waveguide length, bends, crossings, rings passed and rings used.
//! From it and a [`DeviceKit`] the solver derives total insertion loss,
//! per-wavelength laser power, and the full energy-per-bit breakdown the
//! paper-style power table (experiment E7) reports.

use crate::devices::{Db, DeviceKit};

/// Physical inventory of one light path through the network.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpticalPath {
    pub length_mm: f64,
    pub bends: u32,
    pub crossings: u32,
    /// Off-resonance rings the light passes (through loss each).
    pub rings_passed: u32,
    /// On-resonance rings actually used (modulator + drop filter).
    pub rings_used: u32,
}

impl OpticalPath {
    /// Total insertion loss along this path for the given kit.
    pub fn insertion_loss_db(&self, kit: &DeviceKit) -> Db {
        kit.waveguide
            .path_loss(self.length_mm, self.bends, self.crossings)
            + kit.ring.through_loss_db * self.rings_passed as f64
            + kit.ring.drop_loss_db * self.rings_used as f64
    }

    /// Propagation delay in picoseconds.
    pub fn tof_ps(&self, kit: &DeviceKit) -> u64 {
        kit.waveguide.tof_ps(self.length_mm)
    }
}

/// Static + dynamic power decomposition for one link/network.
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerBreakdown {
    /// Electrical laser power (static, always on), milliwatts.
    pub laser_mw: f64,
    /// Ring thermal trimming (static), milliwatts.
    pub trimming_mw: f64,
    /// Modulator dynamic energy at the given utilisation, milliwatts.
    pub modulation_mw: f64,
    /// Receiver dynamic energy, milliwatts.
    pub receiver_mw: f64,
}

impl PowerBreakdown {
    pub fn total_mw(&self) -> f64 {
        self.laser_mw + self.trimming_mw + self.modulation_mw + self.receiver_mw
    }

    /// Energy per bit in picojoules at `gbps_total` aggregate traffic.
    pub fn pj_per_bit(&self, gbps_total: f64) -> f64 {
        if gbps_total <= 0.0 {
            return f64::INFINITY;
        }
        // mW / Gbps = pJ/bit
        self.total_mw() / gbps_total
    }
}

/// Solver tying a worst-case path, a device kit and a channel count into
/// loss, laser power and the power breakdown.
#[derive(Clone, Copy, Debug)]
pub struct LinkBudget {
    pub kit: DeviceKit,
    pub worst_path: OpticalPath,
    /// DWDM wavelengths per waveguide.
    pub lambdas: u32,
    /// Line rate per wavelength, Gb/s.
    pub gbps_per_lambda: f64,
    /// Total rings that need thermal trimming in the network.
    pub total_rings: u64,
    /// Number of laser-fed waveguides (each carries `lambdas` channels).
    pub waveguides: u32,
}

impl LinkBudget {
    /// Worst-case insertion loss, dB.
    pub fn worst_loss_db(&self) -> Db {
        self.worst_path.insertion_loss_db(&self.kit)
    }

    /// Total electrical laser power for the whole network, milliwatts.
    ///
    /// The laser must budget for the *worst-case* path on every channel
    /// of every powered waveguide (lasers are not modulated per packet).
    pub fn laser_mw(&self) -> f64 {
        let per_lambda = self
            .kit
            .laser
            .electrical_mw_per_lambda(self.worst_loss_db(), self.kit.detector.sensitivity_dbm);
        per_lambda * self.lambdas as f64 * self.waveguides as f64
    }

    /// Peak aggregate bandwidth of the photonic network, Gb/s.
    pub fn peak_gbps(&self) -> f64 {
        self.gbps_per_lambda * self.lambdas as f64 * self.waveguides as f64
    }

    /// Full power breakdown at fractional link utilisation `util` in `0..=1`.
    pub fn power(&self, util: f64) -> PowerBreakdown {
        let util = util.clamp(0.0, 1.0);
        let active_gbps = self.peak_gbps() * util;
        PowerBreakdown {
            laser_mw: self.laser_mw(),
            trimming_mw: self.kit.ring.trimming_uw * self.total_rings as f64 / 1000.0,
            // fJ/bit × Gbit/s = µW; /1000 → mW
            modulation_mw: self.kit.ring.modulation_fj_per_bit * active_gbps / 1_000_000.0 * 1000.0,
            receiver_mw: self.kit.detector.rx_fj_per_bit * active_gbps / 1_000_000.0 * 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> LinkBudget {
        LinkBudget {
            kit: DeviceKit::default(),
            worst_path: OpticalPath {
                length_mm: 30.0,
                bends: 8,
                crossings: 16,
                rings_passed: 128,
                rings_used: 2,
            },
            lambdas: 64,
            gbps_per_lambda: 10.0,
            total_rings: 64 * 64,
            waveguides: 8,
        }
    }

    #[test]
    fn loss_composition() {
        let b = budget();
        let kit = DeviceKit::default();
        let expect = kit.waveguide.path_loss(30.0, 8, 16)
            + 128.0 * kit.ring.through_loss_db
            + 2.0 * kit.ring.drop_loss_db;
        assert!((b.worst_loss_db() - expect).abs() < 1e-12);
        // loss should land in the usual ONoC ballpark (5–15 dB)
        assert!(b.worst_loss_db() > 3.0 && b.worst_loss_db() < 20.0);
    }

    #[test]
    fn peak_bandwidth() {
        let b = budget();
        assert!((b.peak_gbps() - 64.0 * 10.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn laser_power_scales_with_channels() {
        let mut b = budget();
        let p1 = b.laser_mw();
        b.lambdas *= 2;
        assert!((b.laser_mw() / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn static_power_dominates_at_low_utilisation() {
        let b = budget();
        let p = b.power(0.01);
        assert!(p.laser_mw + p.trimming_mw > p.modulation_mw + p.receiver_mw);
        assert!(p.total_mw() > 0.0);
    }

    #[test]
    fn dynamic_power_scales_with_utilisation() {
        let b = budget();
        let lo = b.power(0.1);
        let hi = b.power(0.8);
        assert!((hi.modulation_mw / lo.modulation_mw - 8.0).abs() < 1e-6);
        assert_eq!(hi.laser_mw, lo.laser_mw, "laser power is static");
    }

    #[test]
    fn energy_per_bit_sane() {
        let b = budget();
        let pj = b.power(0.5).pj_per_bit(b.peak_gbps() * 0.5);
        // Published ONoC numbers: 0.1–5 pJ/bit range.
        assert!(pj > 0.01 && pj < 20.0, "pj/bit = {pj}");
        assert!(b.power(0.5).pj_per_bit(0.0).is_infinite());
    }

    #[test]
    fn utilisation_is_clamped() {
        let b = budget();
        assert_eq!(b.power(2.0).modulation_mw, b.power(1.0).modulation_mw);
        assert_eq!(b.power(-1.0).modulation_mw, 0.0);
    }
}
