//! The content-addressed capture cache.
//!
//! A CMP capture depends only on the workload side of the experiment —
//! kernel, system size, ops per core, seed. It does **not** depend on
//! the target network (captures run on the analytic model) and it does
//! not depend on `SCTM_THREADS` (the parallel capture path is
//! byte-identical at any thread count, see `tests/parallel_capture.rs`).
//! The capture is therefore content-addressable: fifty network configs
//! swept over one workload share a single capture and differ only in
//! their replays.
//!
//! The cache is a single-flight LRU with a byte budget:
//!
//! - **Single-flight**: concurrent requests for the same key block on a
//!   `Condvar` while the first one captures, so a cold sweep performs
//!   exactly one capture per distinct workload — never N racing ones.
//! - **LRU byte budget**: entries hold the *sctf container itself*
//!   (the binary columnar form, several× smaller than the parsed
//!   row-struct log) and are charged exactly those bytes, so the
//!   budget measures true resident memory and the same budget keeps
//!   several× more workloads warm than caching parsed logs did. A hit
//!   decodes the container — microseconds-to-milliseconds work, orders
//!   of magnitude cheaper than the capture it replaces. Entries are
//!   evicted least-recently-used first when the budget is exceeded;
//!   the entry just inserted is never evicted by its own insertion — a
//!   trace larger than the whole budget still serves its requester,
//!   then goes first.

use sctm_core::trace::sctf;
use sctm_core::trace::TraceLog;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Stable identity of one capture: every field that can change the
/// captured trace, nothing that cannot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CaptureKey(pub u64);

impl CaptureKey {
    /// FNV-1a over the canonical `kernel|side|ops|seed` string. The
    /// label keeps the hash stable across enum reorderings.
    pub fn new(kernel: &str, side: usize, ops: usize, seed: u64) -> Self {
        let text = format!("{kernel}|{side}|{ops}|{seed}");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        CaptureKey(h)
    }
}

/// Counter snapshot for the `stats` verb and the run manifests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Callers that blocked on another request's in-flight capture
    /// (counted once per blocked caller, however many wakeups its
    /// `Condvar` wait takes).
    pub single_flight_waits: u64,
    pub entries: u64,
    pub bytes: u64,
}

enum Slot {
    /// A capture for this key is in flight on some thread.
    Pending,
    Ready {
        /// The capture as its sctf container — the compact resident
        /// form. Decoded per hit; see the module docs for the tradeoff.
        sctf: Arc<Vec<u8>>,
        last_used: u64,
    },
}

#[derive(Default)]
struct Inner {
    slots: HashMap<CaptureKey, Slot>,
    /// Logical clock for LRU recency (bumped on insert and hit).
    clock: u64,
    bytes: usize,
    stats: CacheStats,
}

/// See the module docs.
pub struct CaptureCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    byte_budget: usize,
}

/// Removes an in-flight `Pending` slot if the producing closure
/// panics, so waiters retry instead of blocking forever.
struct PendingGuard<'a> {
    cache: &'a CaptureCache,
    key: CaptureKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = lock(&self.cache.inner);
            inner.slots.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CaptureCache {
    pub fn new(byte_budget: usize) -> Self {
        CaptureCache {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            byte_budget,
        }
    }

    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    pub fn stats(&self) -> CacheStats {
        let inner = lock(&self.inner);
        CacheStats {
            entries: inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count() as u64,
            bytes: inner.bytes as u64,
            ..inner.stats
        }
    }

    /// Decode a resident container back into a log. Infallible by
    /// construction: every slot was encoded by this process, so a
    /// decode failure means memory corruption, not input.
    fn thaw(sctf: &[u8]) -> Arc<TraceLog> {
        Arc::new(sctf::from_sctf_bytes(sctf).expect("cache slot holds a valid sctf container"))
    }

    /// Non-blocking probe: the cached trace if `key` is `Ready`, else
    /// `None` (absent *or* in flight — the caller cannot tell, and must
    /// go through [`Self::try_get_or_capture`] to join the
    /// single-flight). A `Some` counts a hit and refreshes LRU recency,
    /// exactly like a hit inside `get_or_capture`, so a probe that
    /// short-circuits the capture stage leaves the same counter trail.
    pub fn try_get(&self, key: CaptureKey) -> Option<Arc<TraceLog>> {
        let sctf = {
            let mut inner = lock(&self.inner);
            inner.clock += 1;
            let now = inner.clock;
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready { sctf, last_used }) => {
                    let sctf = Arc::clone(sctf);
                    *last_used = now;
                    inner.stats.hits += 1;
                    sctf
                }
                _ => return None,
            }
        };
        // Decode outside the lock: a hit never serializes other
        // lookups behind its own thaw.
        Some(Self::thaw(&sctf))
    }

    /// Return the cached capture for `key`, or run `produce` to create
    /// it. Exactly one caller produces per key; concurrent callers for
    /// the same key block until the trace is ready. The bool is `true`
    /// on a cache hit.
    pub fn get_or_capture<F>(&self, key: CaptureKey, produce: F) -> (Arc<TraceLog>, bool)
    where
        F: FnOnce() -> TraceLog,
    {
        match self.try_get_or_capture(key, || Ok::<_, std::convert::Infallible>(produce())) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }

    /// [`Self::get_or_capture`] with a fallible producer — the shape the
    /// shard-forwarding path needs, where "produce" may be a network
    /// fetch from the owning peer that can fail with a typed error.
    ///
    /// On `Err` the `Pending` slot is released (same drop-guard that
    /// covers panics) and every waiter is woken: one of them becomes
    /// the new producer and retries. The error never poisons the key —
    /// a failed forward followed by a successful local capture is the
    /// normal degraded sequence, covered in `tests/protocol_fuzz.rs`.
    pub fn try_get_or_capture<F, E>(
        &self,
        key: CaptureKey,
        produce: F,
    ) -> Result<(Arc<TraceLog>, bool), E>
    where
        F: FnOnce() -> Result<TraceLog, E>,
    {
        let mut inner = lock(&self.inner);
        let mut waited = false;
        loop {
            inner.clock += 1;
            let now = inner.clock;
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready { sctf, last_used }) => {
                    let sctf = Arc::clone(sctf);
                    *last_used = now;
                    inner.stats.hits += 1;
                    drop(inner);
                    return Ok((Self::thaw(&sctf), true));
                }
                Some(Slot::Pending) => {
                    if !waited {
                        waited = true;
                        inner.stats.single_flight_waits += 1;
                    }
                    inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                None => break,
            }
        }
        inner.stats.misses += 1;
        inner.slots.insert(key, Slot::Pending);
        drop(inner);

        let mut guard = PendingGuard {
            cache: self,
            key,
            armed: true,
        };
        // `?` leaves the guard armed: its drop removes the Pending slot
        // and wakes the waiters, same as the panic path.
        let log = Arc::new(produce()?);
        guard.armed = false;
        // Freeze the capture into its compact resident form; the
        // producer's own caller gets the already-parsed log for free.
        let frozen = Arc::new(sctf::to_sctf_bytes(&log));
        let bytes = frozen.len();

        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let now = inner.clock;
        inner.slots.insert(
            key,
            Slot::Ready {
                sctf: frozen,
                last_used: now,
            },
        );
        inner.bytes += bytes;
        self.evict_to_budget(&mut inner, key);
        drop(inner);
        self.ready.notify_all();
        Ok((log, false))
    }

    /// Evict least-recently-used `Ready` entries until the byte budget
    /// holds, sparing `just_inserted` so an oversized trace still
    /// serves the request that produced it.
    fn evict_to_budget(&self, inner: &mut Inner, just_inserted: CaptureKey) {
        while inner.bytes > self.byte_budget {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } if *k != just_inserted => Some((*k, *last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready { sctf, .. }) = inner.slots.remove(&victim) {
                inner.bytes -= sctf.len();
                inner.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_core::trace::TraceLog;
    use sctm_core::workloads::Kernel;
    use sctm_core::{Experiment, NetworkKind, SystemConfig};

    fn capture(ops: usize) -> TraceLog {
        Experiment::new(SystemConfig::new(2, NetworkKind::Omesh), Kernel::Fft)
            .with_ops(ops)
            .capture()
    }

    #[test]
    fn keys_separate_every_field_and_ignore_nothing_else() {
        let base = CaptureKey::new("fft", 4, 600, 1);
        assert_eq!(base, CaptureKey::new("fft", 4, 600, 1));
        for other in [
            CaptureKey::new("lu", 4, 600, 1),
            CaptureKey::new("fft", 8, 600, 1),
            CaptureKey::new("fft", 4, 601, 1),
            CaptureKey::new("fft", 4, 600, 2),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn second_lookup_hits_and_returns_the_same_trace() {
        let cache = CaptureCache::new(usize::MAX);
        let key = CaptureKey::new("fft", 2, 120, 1);
        let (cold, hit_cold) = cache.get_or_capture(key, || capture(120));
        let (warm, hit_warm) = cache.get_or_capture(key, || panic!("must not re-capture"));
        assert!(!hit_cold);
        assert!(hit_warm);
        assert_eq!(cold.to_csv_string(), warm.to_csv_string());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn lru_eviction_honours_the_byte_budget() {
        let one = capture(120);
        let sz = sctf::encoded_size(&one);
        // Room for two traces of this size, not three.
        let cache = CaptureCache::new(2 * sz + sz / 2);
        for seed in 0..3u64 {
            let key = CaptureKey::new("fft", 2, 120, seed);
            cache.get_or_capture(key, || capture(120));
        }
        let s = cache.stats();
        assert_eq!(s.misses, 3);
        assert!(s.evictions >= 1, "{s:?}");
        assert!(s.bytes <= cache.byte_budget() as u64, "{s:?}");
        // The oldest key was the victim; re-fetching it misses...
        let (_, hit) = cache.get_or_capture(CaptureKey::new("fft", 2, 120, 0), || capture(120));
        assert!(!hit);
        // ...while the most recent is still resident.
        let (_, hit) = cache.get_or_capture(CaptureKey::new("fft", 2, 120, 2), || {
            panic!("recent entry was evicted")
        });
        assert!(hit);
    }

    #[test]
    fn oversized_entry_still_serves_its_requester() {
        let cache = CaptureCache::new(1); // nothing fits
        let key = CaptureKey::new("fft", 2, 120, 1);
        let (log, hit) = cache.get_or_capture(key, || capture(120));
        assert!(!hit);
        assert!(!log.is_empty());
        // It is evicted as soon as another insertion needs the room.
        cache.get_or_capture(CaptureKey::new("fft", 2, 120, 2), || capture(120));
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn concurrent_same_key_requests_capture_exactly_once() {
        let cache = std::sync::Arc::new(CaptureCache::new(usize::MAX));
        let key = CaptureKey::new("fft", 2, 150, 1);
        let captures = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                let captures = std::sync::Arc::clone(&captures);
                s.spawn(move || {
                    cache.get_or_capture(key, || {
                        captures.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        capture(150)
                    });
                });
            }
        });
        assert_eq!(captures.load(std::sync::atomic::Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
        // Each of the 7 blocked callers counts one single-flight wait,
        // at most — late arrivals that found the slot Ready count none.
        assert!(s.single_flight_waits <= 7, "{s:?}");
    }

    #[test]
    fn try_get_probes_without_blocking_or_capturing() {
        let cache = CaptureCache::new(usize::MAX);
        let key = CaptureKey::new("fft", 2, 120, 3);
        // Absent: no hit, no miss, no production.
        assert!(cache.try_get(key).is_none());
        assert_eq!(cache.stats(), CacheStats::default());
        // Ready: counts a hit and bumps recency, like get_or_capture.
        cache.get_or_capture(key, || capture(120));
        assert!(cache.try_get(key).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn failed_producer_frees_the_pending_slot() {
        let cache = CaptureCache::new(usize::MAX);
        let key = CaptureKey::new("fft", 2, 150, 5);
        let err = cache
            .try_get_or_capture(key, || Err::<TraceLog, &str>("peer hung up"))
            .unwrap_err();
        assert_eq!(err, "peer hung up");
        // The error did not poison the key: a fallback producer runs.
        let (_, hit) = cache.get_or_capture(key, || capture(150));
        assert!(!hit);
        let s = cache.stats();
        // Both attempts found no Ready entry, so both count as misses.
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn failed_producer_wakes_waiters_who_then_produce() {
        let cache = std::sync::Arc::new(CaptureCache::new(usize::MAX));
        let key = CaptureKey::new("fft", 2, 150, 7);
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (fail_tx, fail_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let c = std::sync::Arc::clone(&cache);
            s.spawn(move || {
                let _ = c.try_get_or_capture(key, || {
                    entered_tx.send(()).unwrap();
                    fail_rx.recv().unwrap();
                    Err::<TraceLog, &str>("forward failed")
                });
            });
            entered_rx.recv().unwrap(); // producer holds the Pending slot
            let c = std::sync::Arc::clone(&cache);
            let waiter = s.spawn(move || c.get_or_capture(key, || capture(150)));
            // Give the waiter time to block on the condvar, then fail
            // the first producer; the waiter must take over and finish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            fail_tx.send(()).unwrap();
            let (log, hit) = waiter.join().unwrap();
            assert!(!hit);
            assert!(!log.is_empty());
        });
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.misses, 2, "{s:?}");
    }

    #[test]
    fn a_panicking_capture_releases_waiters() {
        let cache = std::sync::Arc::new(CaptureCache::new(usize::MAX));
        let key = CaptureKey::new("fft", 2, 150, 9);
        let panicked = std::thread::scope(|s| {
            let c = std::sync::Arc::clone(&cache);
            let h = s.spawn(move || c.get_or_capture(key, || panic!("capture died")));
            h.join().is_err()
        });
        assert!(panicked);
        // The key is free again: the next request produces normally.
        let (_, hit) = cache.get_or_capture(key, || capture(150));
        assert!(!hit);
    }
}
