//! # sctm — Self-Correction Trace Model
//!
//! Umbrella crate for the SCTM workspace: a full-system simulator for
//! Optical Network-on-Chip, reproducing Zhang, He & Fan (IPDPSW 2012).
//! Everything re-exports from [`sctm_core`]; see that crate (and
//! `README.md` / `DESIGN.md`) for the guided tour.
//!
//! ```no_run
//! use sctm::{Experiment, Mode, NetworkKind, SystemConfig};
//! use sctm::workloads::Kernel;
//!
//! let system = SystemConfig::new(8, NetworkKind::Omesh); // 64 cores
//! let exp = Experiment::new(system, Kernel::Fft);
//! let report = exp.run(Mode::SelfCorrection { max_iters: 4 });
//! println!("estimated execution time: {}", report.exec_time);
//! ```

pub use sctm_core::*;
