//! Regenerate every table/figure of the evaluation.
//!
//! ```text
//! tables                    # all experiments, quick scale
//! tables --full             # paper scale (minutes)
//! tables --exp e3 e7       # a subset
//! tables --csv              # machine-readable tables as well
//! tables --json             # run manifest JSON on stdout
//! tables --obs-dir out/     # write trace/manifest/blame/flamegraph to out/
//! tables --bench-json f.json # per-phase wall times as sctm-bench-v1
//! tables --trace-out t.sctf  # save the flagship capture (format by extension)
//! SCTM_OBS=1 tables         # enable tracing without flags
//! ```
//!
//! With tracing enabled (any of `--json`, `--obs-dir`, `SCTM_OBS`),
//! every experiment runs under a `bench` span, sweep jobs and
//! self-correction iterations are traced, and the run ends with a
//! machine-readable manifest: config, per-phase wall times, metric
//! snapshots from every network touched, and per-iteration convergence
//! telemetry. `out/trace.json` loads directly in <https://ui.perfetto.dev>.
//!
//! `--obs-dir` additionally runs two instrumented profile passes
//! (fft on omesh and on oxbar) and writes `blame.json` — per-class
//! latency blame plus the critical path — and `critpath.folded`, a
//! folded-stack file for flamegraph tooling. The sampled per-node
//! counter series ride along as Perfetto counter tracks in
//! `trace.json` and as a `series` section in the manifest, joined by
//! `conv.*` tracks from every self-correction loop. The per-iteration
//! drift ledger itself lands in `convergence.json` — verdicts, top
//! movers, and incremental-replay decisions per run.

use sctm_bench::{num_threads, run_experiment, Scale, EXPERIMENT_IDS};
use sctm_core::{Experiment, NetworkKind, RunSpec, SystemConfig};
use sctm_obs as obs;
use sctm_prof as prof;
use sctm_workloads::Kernel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let obs_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--obs-dir")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.into());
    let bench_json: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.into());
    let trace_out: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.into());
    let wanted: Vec<String> = {
        let mut w = Vec::new();
        let mut take = false;
        for a in &args {
            if a == "--exp" {
                take = true;
            } else if a.starts_with("--") {
                take = false;
            } else if take {
                w.push(a.to_lowercase());
            }
        }
        w
    };
    obs::init_from_env();
    if json || obs_dir.is_some() {
        obs::set_enabled(true);
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    eprintln!(
        "# SCTM evaluation — scale: {scale:?} ({} cores flagship)",
        scale.side() * scale.side()
    );
    let t0 = std::time::Instant::now();
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    for id in EXPERIMENT_IDS {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let te = std::time::Instant::now();
        let table = {
            let _span = obs::span("bench", id);
            run_experiment(id, scale).unwrap()
        };
        // With --json, stdout is reserved for the manifest (pipeable);
        // human-readable tables move to stderr.
        if json {
            eprintln!("{}", table.render());
        } else {
            println!("{}", table.render());
        }
        if csv {
            println!("# CSV {id}\n{}", table.to_csv());
        }
        phases.push((id, te.elapsed().as_secs_f64() * 1e3));
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("# total wall time: {:.1}s", total_ms / 1e3);

    // One flagship capture to disk; the extension picks the container
    // (`.sctf` binary or CSV text — see `sctf --help` for conversion).
    if let Some(path) = &trace_out {
        let exp = Experiment::new(
            SystemConfig::new(scale.side(), NetworkKind::Omesh),
            Kernel::Fft,
        )
        .with_ops(scale.ops());
        let log = exp.capture();
        log.save(path)
            .unwrap_or_else(|e| panic!("write --trace-out {}: {e}", path.display()));
        eprintln!("# trace: wrote {} records to {}", log.len(), path.display());
    }

    if let Some(path) = &bench_json {
        let mut bf = prof::BenchFile::new();
        for &(id, wall_ms) in &phases {
            bf.benches.push(phase_record(id, wall_ms));
        }
        bf.benches.push(phase_record("total", total_ms));
        std::fs::write(path, bf.to_json()).expect("write --bench-json");
        eprintln!("# bench: wrote {}", path.display());
    }

    if !obs::enabled() {
        return;
    }

    // Instrumented profile passes: a self-correcting replay of fft on
    // each photonic target with lifecycle capture and per-node gauge
    // sampling on. Blame analysis and the counter tracks come from
    // these, not from the (uninstrumented) experiment runs above.
    let mut profiles = Vec::new();
    if obs_dir.is_some() {
        for kind in [NetworkKind::Omesh, NetworkKind::Oxbar] {
            let _span = obs::span("bench", "profile");
            let exp = Experiment::new(SystemConfig::new(scale.side(), kind), Kernel::Fft)
                .with_ops(scale.ops().min(400));
            let log = exp.capture();
            let spec = RunSpec::self_correction(1).replay_only().profiled();
            let profile = exp
                .execute_seeded(&spec, Some(&log))
                .expect("valid spec")
                .profile
                .expect("profiled run returns artefacts");
            let blame = prof::analyze(kind.label(), "fft", &profile.log, &profile.lifecycles);
            profiles.push((blame, profile.series));
        }
    }

    let mut manifest = obs::Manifest::new();
    manifest.config("scale", format!("{scale:?}").to_lowercase());
    manifest.config("threads", num_threads());
    manifest.config(
        "experiments",
        phases
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>()
            .join(","),
    );
    for &(id, wall_ms) in &phases {
        manifest.phase(id, wall_ms);
    }
    manifest.phase("total", total_ms);
    manifest.metrics = obs::global_snapshot();
    manifest.iterations = obs::iterations_snapshot();
    for (_, series) in &profiles {
        manifest.series.push(series.clone());
    }
    // Per-iteration convergence telemetry from every self-correction
    // loop traced above: drift/factor-move/sign-flip tracks plus
    // per-node error series, keyed by (network, workload).
    let conv_runs = obs::conv_snapshot();
    let conv_store = obs::conv_series(&conv_runs);
    if !conv_store.is_empty() {
        manifest.series.push(conv_store.clone());
    }
    let manifest_json = manifest.to_json();
    if json {
        println!("{manifest_json}");
    }
    if let Some(dir) = &obs_dir {
        std::fs::create_dir_all(dir).expect("create --obs-dir");
        // Counter tracks from the first (omesh) profile pass; a second
        // run's node gauges would collide with the same track names.
        let empty = obs::SeriesStore::default();
        let series = profiles.first().map_or(&empty, |(_, s)| s);
        // Convergence series ride along as extra counter tracks; their
        // `conv.<net>.<wl>.` prefix keeps them clear of the node gauges.
        let mut tracked = series.clone();
        tracked.series.extend(conv_store.series.iter().cloned());
        let trace = obs::chrome_trace_with_series(&obs::drain(), &tracked);
        std::fs::write(dir.join("trace.json"), trace).expect("write trace.json");
        std::fs::write(dir.join("manifest.json"), &manifest_json).expect("write manifest.json");
        std::fs::write(
            dir.join("convergence.json"),
            obs::conv_report_json(&conv_runs),
        )
        .expect("write convergence.json");
        let mut blame_doc = String::from("[\n");
        let mut folded = String::new();
        for (i, (blame, _)) in profiles.iter().enumerate() {
            if i > 0 {
                blame_doc.push_str(",\n");
            }
            blame_doc.push_str(&blame.to_json());
            folded.push_str(&blame.to_folded());
        }
        blame_doc.push_str("\n]\n");
        std::fs::write(dir.join("blame.json"), blame_doc).expect("write blame.json");
        std::fs::write(dir.join("critpath.folded"), folded).expect("write critpath.folded");
        eprintln!(
            "# obs: wrote trace.json, manifest.json, convergence.json, blame.json, critpath.folded to {} — open trace.json at https://ui.perfetto.dev",
            dir.display()
        );
    }
}

/// A single-sample bench record from one phase's wall time.
fn phase_record(id: &str, wall_ms: f64) -> prof::BenchRecord {
    let ns = wall_ms * 1e6;
    prof::BenchRecord {
        id: format!("tables/{id}"),
        samples: 1,
        min_ns: ns,
        p25_ns: ns,
        median_ns: ns,
        p75_ns: ns,
        max_ns: ns,
    }
}
