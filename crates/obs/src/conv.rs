//! Convergence observability for the self-correction loop.
//!
//! The loop's only first-class convergence signal used to be a scalar
//! `drift` per iteration: when a run oscillated, stalled, or silently
//! fell back to full replay every pass (the §P6 flagship), nothing in
//! the telemetry explained *why*. This module holds the three pieces
//! that change that:
//!
//! 1. a per-iteration **drift ledger** ([`IterLedger`]) decomposing the
//!    scalar drift into per-(src,dst,class) correction-factor movement,
//!    with top-K mover extraction and per-source-node error series;
//! 2. **divergence detectors** ([`classify_unconverged`]) that turn the
//!    drift/factor-movement history into a typed
//!    [`ConvergenceVerdict`] — oscillation (sign-alternating factor
//!    deltas), stall (sub-epsilon movement without an exit), blow-up
//!    (monotone drift growth);
//! 3. **incremental-replay decision telemetry** ([`IncrDecision`])
//!    recording why each pass chose splice/resume/full, so trace-length
//!    churn is a measured quantity instead of a hypothesis.
//!
//! The verdict itself is *always* computed — it rides on arithmetic
//! the loop already does — while the ledger is recorded only when
//! recording is enabled ([`crate::enabled`]), matching the crate's
//! disabled-path cost contract. Ledger attribution is conservative by
//! construction: each pair's share of the drift is proportional to its
//! message-weighted factor movement, so the shares (top-K movers plus
//! the `other` remainder) always sum back to the loop's scalar drift.

use crate::export::{json_escape, json_f64};
use crate::series::{CounterSeries, SeriesStore};
use crate::{enabled, lock_unpoisoned, with_global};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Whether the drift ledger is recorded at all (on top of the global
/// [`crate::enabled`] gate). On by default; the `conv_overhead` cost
/// gate flips it off to measure the ledger's marginal cost against an
/// otherwise-identical instrumented run.
static CONV_ENABLED: AtomicBool = AtomicBool::new(true);

pub fn conv_enabled() -> bool {
    CONV_ENABLED.load(Ordering::Relaxed)
}

pub fn set_conv_enabled(on: bool) {
    CONV_ENABLED.store(on, Ordering::Relaxed);
}

/// How (or whether) one self-correction run converged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConvergenceVerdict {
    /// Exited because the estimate moved < 0.5% between iterations.
    ConvergedDrift,
    /// Exited because the correction table moved less than the
    /// configured factor epsilon.
    ConvergedFactorEpsilon,
    /// Ran out of iterations with sign-alternating factor movement:
    /// each re-capture overshoots the contention the previous
    /// correction just absorbed (the classic undamped failure mode).
    Oscillating,
    /// Ran out of iterations with sub-epsilon factor movement that
    /// never tripped an exit (factor-ε exits disabled).
    Stalled,
    /// Ran out of iterations with monotonically growing drift.
    Diverging,
    /// Ran out of iterations without matching any detector.
    Exhausted,
}

impl ConvergenceVerdict {
    /// Every verdict, in a fixed order (stable metric/report schema).
    pub const ALL: [ConvergenceVerdict; 6] = [
        ConvergenceVerdict::ConvergedDrift,
        ConvergenceVerdict::ConvergedFactorEpsilon,
        ConvergenceVerdict::Oscillating,
        ConvergenceVerdict::Stalled,
        ConvergenceVerdict::Diverging,
        ConvergenceVerdict::Exhausted,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ConvergenceVerdict::ConvergedDrift => "converged-drift",
            ConvergenceVerdict::ConvergedFactorEpsilon => "converged-factor-epsilon",
            ConvergenceVerdict::Oscillating => "oscillating",
            ConvergenceVerdict::Stalled => "stalled",
            ConvergenceVerdict::Diverging => "diverging",
            ConvergenceVerdict::Exhausted => "exhausted",
        }
    }

    pub fn is_converged(self) -> bool {
        matches!(
            self,
            ConvergenceVerdict::ConvergedDrift | ConvergenceVerdict::ConvergedFactorEpsilon
        )
    }
}

/// Stall threshold when the run disabled the factor-ε exit: movement
/// this small would have tripped any reasonable epsilon.
pub const DEFAULT_STALL_EPSILON: f64 = 1e-3;

/// Signed factor movement below this is treated as noise by the
/// oscillation detector, so exactly-zero iterations never alternate.
const OSCILLATION_FLOOR: f64 = 1e-9;

/// Classify a run that exhausted its iteration budget without hitting
/// an exit, from the per-iteration drift history (ps), the
/// message-weighted *signed* factor movement history, and the final
/// (unsigned) factor movement. Detector priority: a blow-up outranks
/// oscillation outranks a stall — a diverging loop usually alternates
/// too, and naming the worse failure first is what a reader acts on.
pub fn classify_unconverged(
    drift_ps: &[u64],
    signed_moves: &[f64],
    last_factor_move: f64,
    stall_epsilon: f64,
) -> ConvergenceVerdict {
    let n = drift_ps.len();
    if n >= 3 {
        let d = &drift_ps[n - 3..];
        if d[0] < d[1] && d[1] < d[2] {
            return ConvergenceVerdict::Diverging;
        }
    }
    let m = signed_moves.len();
    if m >= 3 {
        let s = &signed_moves[m - 3..];
        if s.iter().all(|v| v.abs() > OSCILLATION_FLOOR)
            && s[0].signum() != s[1].signum()
            && s[1].signum() != s[2].signum()
        {
            return ConvergenceVerdict::Oscillating;
        }
    }
    if last_factor_move < stall_epsilon.max(0.0) {
        return ConvergenceVerdict::Stalled;
    }
    ConvergenceVerdict::Exhausted
}

/// One correction-factor update, as observed by the install loop:
/// the old installed factor, the freshly measured one, and what was
/// actually installed after damping/quantisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairMove {
    pub src: u32,
    pub dst: u32,
    /// Message-class label (`"ctrl"` / `"data"`).
    pub class: &'static str,
    pub factor_old: f64,
    pub factor_measured: f64,
    pub factor_new: f64,
    /// Messages this pair carried in the iteration's trace.
    pub messages: u64,
}

impl PairMove {
    /// Relative installed movement — the same quantity the loop's
    /// `factor_move` exit averages.
    fn rel_move(&self) -> f64 {
        (self.factor_new - self.factor_old).abs() / self.factor_old.abs().max(1e-12)
    }
}

/// A top-K mover in one iteration's ledger: a [`PairMove`] plus its
/// attributed share of the iteration's scalar drift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LedgerEntry {
    pub pair: PairMove,
    /// This pair's proportional share of the iteration drift, in ps.
    pub drift_contrib_ps: f64,
}

/// Why one incremental pass ran the way it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IncrDecision {
    /// `"full"`, `"spliced"` or `"resumed"`.
    pub kind: &'static str,
    /// Canonical full-replay fallback cause (`"length_churn"`,
    /// `"first_pass"`, ...), `None` when nothing fell back.
    pub cause: Option<&'static str>,
    /// Messages whose pass inputs moved since the previous pass.
    pub dirty: u64,
    /// This pass's trace length.
    pub trace_len: u64,
    /// The previous pass's trace length (0 on the first pass) — the
    /// churn the §P6 flagship fallback is about is `trace_len !=
    /// prev_len`.
    pub prev_len: u64,
    pub epochs_restored: u64,
    pub epochs_replayed: u64,
}

/// Movers kept per iteration; everything else folds into
/// [`IterLedger::other_drift_ps`].
pub const TOP_K_MOVERS: usize = 8;

/// One iteration of the drift ledger.
#[derive(Clone, Debug)]
pub struct IterLedger {
    pub iteration: u32,
    pub est_ps: u64,
    pub drift_ps: u64,
    /// The damping weight the install used (constant per run, repeated
    /// here so a ledger row is self-describing).
    pub damping: f64,
    /// Message-weighted mean |relative factor movement| (the exit
    /// quantity).
    pub factor_move: f64,
    /// Message-weighted mean *signed* relative factor movement — the
    /// oscillation detector's input.
    pub signed_move: f64,
    /// Pairs whose installed factor actually changed.
    pub pairs_moved: u64,
    /// Pairs whose factor delta flipped sign against the previous
    /// iteration.
    pub sign_flips: u64,
    /// Top-[`TOP_K_MOVERS`] pairs by attributed drift, descending.
    pub movers: Vec<LedgerEntry>,
    /// Drift attributed to every pair *not* in `movers`; `movers`
    /// contributions plus this always sum to `drift_ps`.
    pub other_drift_ps: f64,
    /// Attributed drift per source node, ascending node id.
    pub node_err_ps: Vec<(u32, f64)>,
    /// Incremental-replay decision, when the run used the engine.
    pub incr: Option<IncrDecision>,
}

/// The full convergence record of one self-correction run.
#[derive(Clone, Debug)]
pub struct ConvRun {
    pub network: &'static str,
    pub workload: &'static str,
    pub verdict: ConvergenceVerdict,
    pub iterations: Vec<IterLedger>,
}

/// Per-run ledger builder, owned by the correction loop. Create one
/// only while recording is enabled; every `record_iteration` call
/// publishes the `sctm.conv.*` counters and appends a ledger row, and
/// [`ConvTracker::finish`] files the completed run into the global
/// store ([`conv_snapshot`]).
pub struct ConvTracker {
    network: &'static str,
    workload: &'static str,
    damping: f64,
    /// Last nonzero factor-delta sign per pair, for sign-flip counting.
    prev_sign: BTreeMap<(u32, u32, &'static str), i8>,
    iterations: Vec<IterLedger>,
}

impl ConvTracker {
    pub fn new(network: &'static str, workload: &'static str, damping: f64) -> Self {
        ConvTracker {
            network,
            workload,
            damping,
            prev_sign: BTreeMap::new(),
            iterations: Vec::new(),
        }
    }

    /// Fold one iteration into the ledger and publish its counters.
    #[allow(clippy::too_many_arguments)]
    pub fn record_iteration(
        &mut self,
        iteration: u32,
        est_ps: u64,
        drift_ps: u64,
        factor_move: f64,
        signed_move: f64,
        pairs: &[PairMove],
        incr: Option<IncrDecision>,
    ) {
        // Attribution weights: message-weighted relative movement, the
        // same quantity `factor_move` averages. A pair that did not
        // move gets no share; if *nothing* moved the drift cannot be
        // attributed (it came from re-capture interleaving alone) and
        // lands wholly in `other_drift_ps`.
        let weights: Vec<f64> = pairs
            .iter()
            .map(|p| p.rel_move() * p.messages as f64)
            .collect();
        let total_w: f64 = weights.iter().sum();

        let mut pairs_moved = 0u64;
        let mut sign_flips = 0u64;
        let mut node_err: BTreeMap<u32, f64> = BTreeMap::new();
        let mut entries: Vec<LedgerEntry> = Vec::with_capacity(pairs.len());
        for (p, w) in pairs.iter().zip(&weights) {
            let contrib = if total_w > 0.0 {
                drift_ps as f64 * (w / total_w)
            } else {
                0.0
            };
            let delta = p.factor_new - p.factor_old;
            let sign: i8 = match delta.partial_cmp(&0.0) {
                Some(std::cmp::Ordering::Greater) => 1,
                Some(std::cmp::Ordering::Less) => -1,
                _ => 0,
            };
            if sign != 0 {
                pairs_moved += 1;
                let key = (p.src, p.dst, p.class);
                if self.prev_sign.insert(key, sign) == Some(-sign) {
                    sign_flips += 1;
                }
            }
            *node_err.entry(p.src).or_insert(0.0) += contrib;
            entries.push(LedgerEntry {
                pair: *p,
                drift_contrib_ps: contrib,
            });
        }
        // Largest attributed drift first; full (src,dst,class) tiebreak
        // keeps the ledger deterministic under equal contributions.
        entries.sort_by(|a, b| {
            b.drift_contrib_ps
                .total_cmp(&a.drift_contrib_ps)
                .then_with(|| {
                    (a.pair.src, a.pair.dst, a.pair.class).cmp(&(
                        b.pair.src,
                        b.pair.dst,
                        b.pair.class,
                    ))
                })
        });
        let tail: f64 = entries
            .iter()
            .skip(TOP_K_MOVERS)
            .map(|e| e.drift_contrib_ps)
            .sum();
        let other_drift_ps = if total_w > 0.0 { tail } else { drift_ps as f64 };
        entries.truncate(TOP_K_MOVERS);

        self.iterations.push(IterLedger {
            iteration,
            est_ps,
            drift_ps,
            damping: self.damping,
            factor_move,
            signed_move,
            pairs_moved,
            sign_flips,
            movers: entries,
            other_drift_ps,
            node_err_ps: node_err.into_iter().collect(),
            incr,
        });
    }

    /// Seal the run with its verdict: publish the `sctm.conv.*`
    /// counters and file the completed record into the global store.
    /// All registry traffic happens here, once per run, so the
    /// per-iteration path stays allocation- and lock-free on the
    /// registry side (the `conv_overhead` gate measures that).
    pub fn finish(self, verdict: ConvergenceVerdict) {
        if enabled() {
            let mut decisions: BTreeMap<&'static str, u64> = BTreeMap::new();
            let mut causes: BTreeMap<&'static str, u64> = BTreeMap::new();
            let mut pairs_moved = 0u64;
            let mut sign_flips = 0u64;
            for it in &self.iterations {
                pairs_moved += it.pairs_moved;
                sign_flips += it.sign_flips;
                if let Some(d) = &it.incr {
                    *decisions.entry(d.kind).or_insert(0) += 1;
                    if let Some(cause) = d.cause {
                        *causes.entry(cause).or_insert(0) += 1;
                    }
                }
            }
            with_global(|reg| {
                reg.counter_add("sctm.conv.iterations", self.iterations.len() as u64);
                reg.counter_add("sctm.conv.pairs_moved", pairs_moved);
                reg.counter_add("sctm.conv.sign_flips", sign_flips);
                if let Some(last) = self.iterations.last() {
                    reg.gauge_set("sctm.conv.last_drift_ps", last.drift_ps as f64);
                }
                for (kind, n) in &decisions {
                    reg.counter_add(format!("sctm.conv.decision.{kind}"), *n);
                }
                for (cause, n) in &causes {
                    reg.counter_add(format!("sctm.conv.cause.{cause}"), *n);
                }
                reg.counter_add(format!("sctm.conv.verdict.{}", verdict.label()), 1);
            });
        }
        record_conv_run(ConvRun {
            network: self.network,
            workload: self.workload,
            verdict,
            iterations: self.iterations,
        });
    }
}

static CONV_RUNS: Mutex<Vec<ConvRun>> = Mutex::new(Vec::new());

/// File one completed run into the process-wide store.
pub fn record_conv_run(run: ConvRun) {
    lock_unpoisoned(&CONV_RUNS).push(run);
}

/// Every recorded run, in a deterministic order (network, workload;
/// same-config runs keep arrival order).
pub fn conv_snapshot() -> Vec<ConvRun> {
    let mut v = lock_unpoisoned(&CONV_RUNS).clone();
    v.sort_by(|a, b| (a.network, a.workload).cmp(&(b.network, b.workload)));
    v
}

pub fn reset_conv() {
    lock_unpoisoned(&CONV_RUNS).clear();
}

/// One "iteration tick" on the conv series timeline (1 ms of trace
/// time per iteration): iterations are ordinal, not simulated time,
/// but Perfetto counter tracks need timestamps.
pub const CONV_INTERVAL_PS: u64 = 1_000_000_000;

/// Render runs as counter series (`conv.<net>.<wl>.drift_ps`,
/// `.factor_move`, `.sign_flips`, and per-node `.node<NNN>.err_ps`)
/// for the Perfetto trace and the manifest `series` section.
pub fn conv_series(runs: &[ConvRun]) -> SeriesStore {
    let mut store = SeriesStore {
        interval_ps: CONV_INTERVAL_PS,
        series: Vec::new(),
    };
    for run in runs {
        let prefix = format!("conv.{}.{}", run.network, run.workload);
        let at = |it: u32| it as u64 * CONV_INTERVAL_PS;
        let mut drift = Vec::with_capacity(run.iterations.len());
        let mut fmove = Vec::with_capacity(run.iterations.len());
        let mut flips = Vec::with_capacity(run.iterations.len());
        let mut per_node: BTreeMap<u32, Vec<(u64, f64)>> = BTreeMap::new();
        for it in &run.iterations {
            drift.push((at(it.iteration), it.drift_ps as f64));
            fmove.push((at(it.iteration), it.factor_move));
            flips.push((at(it.iteration), it.sign_flips as f64));
            for &(node, err) in &it.node_err_ps {
                per_node
                    .entry(node)
                    .or_default()
                    .push((at(it.iteration), err));
            }
        }
        for (suffix, points) in [
            ("drift_ps", drift),
            ("factor_move", fmove),
            ("sign_flips", flips),
        ] {
            store.series.push(CounterSeries {
                name: format!("{prefix}.{suffix}"),
                node: 0,
                points,
            });
        }
        for (node, points) in per_node {
            store.series.push(CounterSeries {
                name: format!("{prefix}.node{node:03}.err_ps"),
                node,
                points,
            });
        }
    }
    store
}

/// The `convergence.json` report: every run's verdict and full ledger,
/// machine-readable. Schema kept flat and stable for the CI validator.
pub fn conv_report_json(runs: &[ConvRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"runs\": [");
    for (ri, run) in runs.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"network\": \"{}\", \"workload\": \"{}\", \"verdict\": \"{}\", \"iterations\": [",
            json_escape(run.network),
            json_escape(run.workload),
            run.verdict.label(),
        );
        for (ii, it) in run.iterations.iter().enumerate() {
            if ii > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"iteration\": {}, \"est_ps\": {}, \"drift_ps\": {}, \"damping\": {}, \
                 \"factor_move\": {}, \"signed_move\": {}, \"pairs_moved\": {}, \"sign_flips\": {}, \
                 \"other_drift_ps\": {}, \"movers\": [",
                it.iteration,
                it.est_ps,
                it.drift_ps,
                json_f64(it.damping),
                json_f64(it.factor_move),
                json_f64(it.signed_move),
                it.pairs_moved,
                it.sign_flips,
                json_f64(it.other_drift_ps),
            );
            for (mi, m) in it.movers.iter().enumerate() {
                if mi > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"src\": {}, \"dst\": {}, \"class\": \"{}\", \"factor_old\": {}, \
                     \"factor_measured\": {}, \"factor_new\": {}, \"messages\": {}, \
                     \"drift_contrib_ps\": {}}}",
                    m.pair.src,
                    m.pair.dst,
                    json_escape(m.pair.class),
                    json_f64(m.pair.factor_old),
                    json_f64(m.pair.factor_measured),
                    json_f64(m.pair.factor_new),
                    m.pair.messages,
                    json_f64(m.drift_contrib_ps),
                );
            }
            out.push_str("], \"node_err_ps\": [");
            for (ni, (node, err)) in it.node_err_ps.iter().enumerate() {
                if ni > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{}, {}]", node, json_f64(*err));
            }
            out.push(']');
            match &it.incr {
                Some(d) => {
                    let _ = write!(
                        out,
                        ", \"incr\": {{\"kind\": \"{}\", \"cause\": {}, \"dirty\": {}, \
                         \"trace_len\": {}, \"prev_len\": {}, \"epochs_restored\": {}, \
                         \"epochs_replayed\": {}}}",
                        d.kind,
                        match d.cause {
                            Some(c) => format!("\"{c}\""),
                            None => "null".into(),
                        },
                        d.dirty,
                        d.trace_len,
                        d.prev_len,
                        d.epochs_restored,
                        d.epochs_replayed,
                    );
                }
                None => out.push_str(", \"incr\": null"),
            }
            out.push('}');
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pm(src: u32, dst: u32, old: f64, new: f64, messages: u64) -> PairMove {
        PairMove {
            src,
            dst,
            class: "data",
            factor_old: old,
            factor_measured: new,
            factor_new: new,
            messages,
        }
    }

    /// Drive a tracker without touching the global store/registry.
    fn ledger_for(pairs: &[PairMove], drift_ps: u64) -> IterLedger {
        let mut t = ConvTracker::new("omesh", "fft", 1.0);
        t.record_iteration(1, 10 * drift_ps.max(1), drift_ps, 0.1, 0.1, pairs, None);
        t.iterations.pop().expect("one iteration recorded")
    }

    #[test]
    fn ledger_attribution_sums_to_drift_exactly_when_nothing_moves() {
        let it = ledger_for(&[pm(0, 1, 1.0, 1.0, 50)], 777);
        assert!(it.movers.iter().all(|e| e.drift_contrib_ps == 0.0));
        assert_eq!(it.other_drift_ps, 777.0);
        assert_eq!(it.pairs_moved, 0);
    }

    #[test]
    fn top_k_extraction_orders_by_contribution_and_folds_the_tail() {
        let pairs: Vec<PairMove> = (0..TOP_K_MOVERS as u32 + 4)
            .map(|i| pm(i, i + 1, 1.0, 1.0 + 0.01 * (i + 1) as f64, 100))
            .collect();
        let it = ledger_for(&pairs, 1_000_000);
        assert_eq!(it.movers.len(), TOP_K_MOVERS);
        for w in it.movers.windows(2) {
            assert!(w[0].drift_contrib_ps >= w[1].drift_contrib_ps);
        }
        // The biggest mover is the pair with the largest relative move.
        assert_eq!(it.movers[0].pair.src, TOP_K_MOVERS as u32 + 3);
        assert!(it.other_drift_ps > 0.0);
    }

    #[test]
    fn sign_flips_count_alternating_pairs_across_iterations() {
        let mut t = ConvTracker::new("omesh", "fft", 1.0);
        t.record_iteration(1, 100, 50, 0.1, 0.1, &[pm(0, 1, 1.0, 1.2, 10)], None);
        t.record_iteration(2, 100, 50, 0.1, -0.1, &[pm(0, 1, 1.2, 0.9, 10)], None);
        t.record_iteration(3, 100, 50, 0.1, 0.1, &[pm(0, 1, 0.9, 1.1, 10)], None);
        assert_eq!(
            t.iterations
                .iter()
                .map(|i| i.sign_flips)
                .collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn node_error_series_attributes_by_source_node() {
        let it = ledger_for(
            &[
                pm(3, 1, 1.0, 2.0, 10),
                pm(3, 2, 1.0, 2.0, 10),
                pm(5, 1, 1.0, 2.0, 20),
            ],
            1000,
        );
        assert_eq!(it.node_err_ps.len(), 2);
        assert_eq!(it.node_err_ps[0].0, 3);
        assert_eq!(it.node_err_ps[1].0, 5);
        let total: f64 = it.node_err_ps.iter().map(|(_, e)| e).sum();
        assert!((total - 1000.0).abs() < 1e-6, "{total}");
    }

    #[test]
    fn detector_priority_diverging_beats_oscillating_beats_stall() {
        // Monotone growth wins even with alternating signs.
        assert_eq!(
            classify_unconverged(&[10, 20, 40], &[0.5, -0.5, 0.5], 0.5, 0.0),
            ConvergenceVerdict::Diverging
        );
        assert_eq!(
            classify_unconverged(&[40, 20, 40], &[0.5, -0.5, 0.5], 0.5, 0.0),
            ConvergenceVerdict::Oscillating
        );
        assert_eq!(
            classify_unconverged(&[40, 20, 10], &[0.5, 0.5, 0.5], 1e-6, DEFAULT_STALL_EPSILON),
            ConvergenceVerdict::Stalled
        );
        assert_eq!(
            classify_unconverged(&[40, 20, 10], &[0.5, 0.5, 0.5], 0.5, DEFAULT_STALL_EPSILON),
            ConvergenceVerdict::Exhausted
        );
        // Too short a history for the pattern detectors.
        assert_eq!(
            classify_unconverged(&[10, 20], &[0.5, -0.5], 0.5, 0.0),
            ConvergenceVerdict::Exhausted
        );
    }

    #[test]
    fn verdict_labels_are_unique_and_stable() {
        let labels: Vec<&str> = ConvergenceVerdict::ALL.iter().map(|v| v.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(ConvergenceVerdict::ConvergedDrift.is_converged());
        assert!(!ConvergenceVerdict::Oscillating.is_converged());
    }

    #[test]
    fn series_and_report_cover_every_iteration() {
        let mut t = ConvTracker::new("oxbar", "lu", 0.5);
        t.record_iteration(1, 100, 50, 0.1, 0.1, &[pm(0, 1, 1.0, 1.5, 10)], None);
        t.record_iteration(2, 100, 10, 0.05, -0.05, &[pm(0, 1, 1.5, 1.4, 10)], None);
        let run = ConvRun {
            network: "oxbar",
            workload: "lu",
            verdict: ConvergenceVerdict::ConvergedDrift,
            iterations: t.iterations,
        };
        let store = conv_series(std::slice::from_ref(&run));
        assert_eq!(store.interval_ps, CONV_INTERVAL_PS);
        let drift = store
            .series
            .iter()
            .find(|s| s.name == "conv.oxbar.lu.drift_ps")
            .expect("drift series");
        assert_eq!(drift.points.len(), 2);
        assert!(store
            .series
            .iter()
            .any(|s| s.name == "conv.oxbar.lu.node000.err_ps"));

        let json = conv_report_json(std::slice::from_ref(&run));
        assert!(json.contains("\"verdict\": \"converged-drift\""));
        assert!(json.contains("\"iteration\": 2"));
        assert!(json.contains("\"incr\": null"));
        crate::export::check_json(&json);
    }

    proptest! {
        /// The acceptance invariant: top-K mover contributions plus the
        /// folded remainder always reconstruct the loop's scalar drift.
        #[test]
        fn ledger_entries_sum_to_scalar_drift(
            drift_ps in 0u64..10_000_000_000,
            pairs in proptest::collection::vec(
                ((0u32..64, 0u32..64), (0.01f64..100.0, 0.01f64..100.0), 1u64..100_000),
                0..40,
            ),
        ) {
            let pairs: Vec<PairMove> = pairs
                .into_iter()
                .map(|((s, d), (old, new), msgs)| pm(s, d, old, new, msgs))
                .collect();
            let it = ledger_for(&pairs, drift_ps);
            let movers: f64 = it.movers.iter().map(|e| e.drift_contrib_ps).sum();
            let total = movers + it.other_drift_ps;
            let tol = 1e-9 * (drift_ps as f64).max(1.0);
            prop_assert!(
                (total - drift_ps as f64).abs() <= tol,
                "movers {movers} + other {} != drift {drift_ps}",
                it.other_drift_ps
            );
            // Node attribution is the same decomposition by source.
            let nodes: f64 = it.node_err_ps.iter().map(|(_, e)| e).sum();
            let unattributed = if it.pairs_moved == 0 && nodes == 0.0 {
                it.other_drift_ps
            } else {
                0.0
            };
            prop_assert!((nodes + unattributed - drift_ps as f64).abs() <= tol);
        }
    }
}
