//! # sctm-trace — the self-correction trace model
//!
//! The paper's primary contribution, reconstructed (see DESIGN.md §3):
//! trace-driven ONoC simulation that recovers the network→core timing
//! feedback loop execution-driven simulation has and classic
//! trace-driven simulation loses.
//!
//! * [`log`] — dependency-carrying trace format and the capture hook
//!   that plugs into the full-system simulator.
//! * [`replay`] — the three replay engines: classic fixed-timestamp
//!   ([`replay::replay_fixed`]), the self-correcting gated pass
//!   ([`replay::replay_sctm_pass`], the paper's replay mechanism; the
//!   outer capture-correction loop lives in `sctm-core`), and the
//!   full-causality oracle ([`replay::replay_oracle`]) that bounds
//!   achievable trace-driven accuracy.
//! * [`online`] — the online epoch-corrected variant: an analytic
//!   network that continuously calibrates itself against a shadow
//!   detailed model while the full-system run proceeds.
//! * [`persist`] — the unified trace store: save/load with format
//!   autodetection, CSV as the interchange codec.
//! * [`sctf`] — the binary columnar container (storage format): fixed
//!   LE header, per-field column sections, delta+varint timestamps, a
//!   replay-ready dependency CSR, and a zero-copy reader.

pub mod incr;
pub mod log;
pub mod online;
pub mod persist;
pub mod replay;
pub mod sctf;

pub use incr::{IncrPassStats, IncrReplayer, PassKind};
pub use log::{Capture, TraceLog, TraceRecord};
pub use online::{OnlineCorrected, ShadowFactory};
pub use persist::{TraceError, TraceFormat, TraceStore};
pub use replay::{
    pair_corrections, replay_fixed, replay_fixed_budgeted, replay_fixed_with, replay_oracle,
    replay_oracle_preloaded, replay_oracle_with, replay_sctm_pass, replay_sctm_pass_ordered,
    replay_sctm_pass_ordered_with, replay_sctm_pass_with, ReplayResult, ReplayScratch,
};
pub use sctf::SctfReader;
