//! Using the simulator the way an architect would: sweep every
//! interconnect across all application kernels (execution-driven) and
//! print performance plus the optical power bill.
//!
//! ```text
//! cargo run --release --example design_sweep
//! ```

use sctm::engine::par::par_map;
use sctm::engine::table::{fnum, Table};
use sctm::onoc::{ObusConfig, OmeshConfig, OxbarConfig};
use sctm::prelude::*;

fn main() {
    let side = 4;
    let ops = 400;

    let mut perf = Table::new(
        format!("Execution time by interconnect ({} cores)", side * side),
        &[
            "application",
            "emesh",
            "omesh",
            "oxbar",
            "hybrid",
            "obus",
            "best",
        ],
    );
    // The whole kernel × interconnect grid runs on the deterministic
    // parallel executor — each cell is an independent simulation, and
    // results come back in input order, so the table is identical to a
    // serial sweep at any thread count.
    let jobs: Vec<_> = Kernel::ALL
        .iter()
        .flat_map(|&kernel| {
            NetworkKind::DETAILED.iter().map(move |&kind| {
                move || {
                    Experiment::new(SystemConfig::new(side, kind), kernel)
                        .with_ops(ops)
                        .execute(&RunSpec::exec_driven())
                        .expect("valid spec")
                        .report
                }
            })
        })
        .collect();
    let results = par_map(jobs);
    let width = NetworkKind::DETAILED.len();
    for (ki, kernel) in Kernel::ALL.iter().enumerate() {
        let mut cells = vec![kernel.label().to_string()];
        let mut best = ("", f64::INFINITY);
        for (ni, kind) in NetworkKind::DETAILED.iter().enumerate() {
            let us = results[ki * width + ni].exec_time.as_us_f64();
            if us < best.1 {
                best = (kind.label(), us);
            }
            cells.push(format!("{us:.2}us"));
        }
        cells.push(best.0.to_string());
        perf.row(&cells);
    }
    println!("{}", perf.render());

    // The other axis of the trade-off: static optical power.
    let mut power = Table::new(
        "Optical power at 10% utilisation",
        &[
            "architecture",
            "worst loss (dB)",
            "total power (mW)",
            "pJ/bit",
        ],
    );
    for (name, budget) in [
        ("photonic mesh", OmeshConfig::new(side).budget()),
        ("MWSR crossbar", OxbarConfig::new(side).budget()),
        ("SWMR broadcast bus", ObusConfig::new(side).budget()),
    ] {
        let p = budget.power(0.1);
        power.row(&[
            name.to_string(),
            fnum(budget.worst_loss_db()),
            fnum(p.total_mw()),
            fnum(p.pj_per_bit(budget.peak_gbps() * 0.1)),
        ]);
    }
    println!("{}", power.render());
}
