//! §P5 regression guard: open-loop classic replay on a detailed
//! optical model driven past its saturation point must stay bounded.
//!
//! Classic trace replay injects at capture timestamps regardless of
//! what the target can drain — on a shared-medium optical design
//! (obus: one wavelength-arbitrated bus) a burst-heavy workload can
//! push the replay timeline into congestion collapse, where every
//! simulated instant costs real work and the run takes effectively
//! forever. The `replay_batch_budget` knob turns that into a typed
//! [`SctmError::BudgetExhausted`]. This test pins the contract both
//! ways: with a *generous* budget the run either completes or returns
//! the typed error — it may not panic and may not hang (a test-side
//! watchdog enforces wall-clock sanity, since a stalled simulator
//! would otherwise stall CI with it).

use sctm::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

/// A deliberately hostile setup for open-loop replay: all-to-all
/// burst traffic captured on the fast analytic model, replayed on the
/// serialising optical bus.
fn saturated() -> (Experiment, TraceLog) {
    let e = Experiment::new(SystemConfig::new(8, NetworkKind::Obus), Kernel::Canneal).with_ops(400);
    let log = e.capture();
    (e, log)
}

#[test]
fn saturated_replay_completes_or_errors_within_budget() {
    // Generous: healthy replays process a handful of event timestamps
    // per message; 200× that is far beyond anything but collapse.
    let (tx, rx) = mpsc::channel();
    let watched = std::thread::spawn(move || {
        let (e, log) = saturated();
        let budget = 200 * log.len() as u64;
        let spec = RunSpec::classic().with_replay_budget(budget);
        let out = e.execute_seeded(&spec, Some(&log));
        let verdict = match out {
            Ok(r) => {
                assert!(r.report.exec_time > sctm::engine::SimTime::ZERO);
                format!("completed: est {:?}", r.report.exec_time)
            }
            Err(SctmError::BudgetExhausted { batches }) => {
                assert_eq!(batches, budget);
                format!("typed budget error after {batches} batches")
            }
            Err(other) => panic!("unexpected error: {other}"),
        };
        let _ = tx.send(verdict);
    });
    // Watchdog: either outcome above is acceptable, silence is not.
    match rx.recv_timeout(Duration::from_secs(180)) {
        Ok(verdict) => {
            watched.join().expect("replay thread panicked");
            eprintln!("congestion-collapse guard: {verdict}");
        }
        Err(_) => panic!(
            "saturated classic replay neither finished nor returned a typed \
             error within 180s — congestion collapse is unbounded again"
        ),
    }
}

#[test]
fn budget_errors_are_deterministic() {
    // The same starved budget must trip at the same point every time,
    // and an unbudgeted healthy run must be unaffected by a budget
    // large enough to never fire.
    let (e, log) = saturated();
    let starved = RunSpec::classic().with_replay_budget(3);
    let a = e.execute_seeded(&starved, Some(&log)).unwrap_err();
    let b = e.execute_seeded(&starved, Some(&log)).unwrap_err();
    assert_eq!(a, b);
    assert!(
        matches!(a, SctmError::BudgetExhausted { batches: 3 }),
        "{a}"
    );
}
