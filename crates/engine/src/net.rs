//! Network-model interface shared by every interconnect in the workspace.
//!
//! The CMP full-system simulator, the trace capture/replay engines and
//! the bench harness all talk to interconnects exclusively through
//! [`NetworkModel`], so the electrical baseline (`sctm-enoc`), both
//! optical architectures (`sctm-onoc`) and the analytic stand-in model
//! below are interchangeable — which is precisely the experiment the
//! paper runs (same workload, different network simulator).
//!
//! The interface is *pull-based co-simulation*: the owner injects
//! messages, asks the network when it next has internal work
//! ([`NetworkModel::next_time`]), and advances it to a chosen timestamp,
//! collecting completed [`Delivery`] records. This lets an owning event
//! loop interleave network time with core/cache time without callbacks.

use crate::stats::Histogram;
use crate::time::SimTime;

/// A network endpoint (one per tile/core).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unique message identifier, assigned by the producer of the message.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// Coherence-protocol-visible message class.
///
/// The class determines size (and therefore flit count / optical burst
/// length) and is reported separately in statistics because the
/// trace-model error behaves differently for short control and long data
/// messages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// Requests, invalidations, acks: header only.
    Control,
    /// Cache-line-bearing replies and writebacks.
    Data,
}

impl MsgClass {
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Control => "ctrl",
            MsgClass::Data => "data",
        }
    }
}

/// One network message (a coherence transaction hop, or a synthetic
/// packet in microbenchmarks).
#[derive(Clone, Copy, Debug)]
pub struct Message {
    pub id: MsgId,
    pub src: NodeId,
    pub dst: NodeId,
    pub class: MsgClass,
    /// Payload size in bytes (header is added by the network model).
    pub bytes: u32,
}

/// A completed message delivery.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    pub msg: Message,
    /// When the message was injected at the source NI.
    pub injected_at: SimTime,
    /// When the last flit/bit was ejected at the destination NI.
    pub delivered_at: SimTime,
}

impl Delivery {
    #[inline]
    pub fn latency(&self) -> SimTime {
        self.delivered_at.saturating_since(self.injected_at)
    }
}

/// Aggregate network statistics, kept per message class.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    pub injected: u64,
    pub delivered: u64,
    pub ctrl_latency_ps: Histogram,
    pub data_latency_ps: Histogram,
    /// Total payload bytes delivered (throughput numerator).
    pub bytes_delivered: u64,
    /// Network-specific energy estimate in picojoules, if modelled.
    pub energy_pj: f64,
}

impl NetStats {
    pub fn record_delivery(&mut self, d: &Delivery) {
        self.delivered += 1;
        self.bytes_delivered += d.msg.bytes as u64;
        let l = d.latency().as_ps();
        match d.msg.class {
            MsgClass::Control => self.ctrl_latency_ps.record(l),
            MsgClass::Data => self.data_latency_ps.record(l),
        }
    }

    /// Mean latency over both classes, in picoseconds.
    pub fn mean_latency_ps(&self) -> f64 {
        let n = self.ctrl_latency_ps.count() + self.data_latency_ps.count();
        if n == 0 {
            return 0.0;
        }
        let sum = self.ctrl_latency_ps.mean() * self.ctrl_latency_ps.count() as f64
            + self.data_latency_ps.mean() * self.data_latency_ps.count() as f64;
        sum / n as f64
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> u64 {
        self.injected - self.delivered
    }

    /// Fold another partition's statistics into this one. Exact for the
    /// integer counters and the histograms (bucket-wise integer merge),
    /// so statistics collected across shard-partitioned deliveries
    /// aggregate to precisely the unpartitioned values.
    pub fn merge(&mut self, other: &NetStats) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.ctrl_latency_ps.merge(&other.ctrl_latency_ps);
        self.data_latency_ps.merge(&other.data_latency_ps);
        self.bytes_delivered += other.bytes_delivered;
        self.energy_pj += other.energy_pj;
    }
}

/// A point-in-time observation of one network endpoint, for external
/// metric collection. Produced by [`NetworkModel::observe_nodes`];
/// consumed by the observability layer, which the engine deliberately
/// knows nothing about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeObs {
    pub node: u32,
    /// Messages/flits currently queued at this node's interface.
    pub queue_depth: u64,
    /// Cumulative busy time of this node's outbound link/channel, in
    /// picoseconds (divide by elapsed sim time for utilisation).
    pub link_busy_ps: u64,
}

/// Where one message's end-to-end latency went, in picoseconds.
///
/// Every model decomposes into the same five bins so blame totals are
/// comparable across architectures; the invariant — checked by
/// `tests/prof_properties.rs` — is that the five components sum
/// *exactly* to `delivered_at - injected_at`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Waiting for a resource held by *other* traffic (source/dest
    /// serialisation, blocked path segments, router buffers).
    pub queue_ps: u64,
    /// Deciding who goes next: token wait, setup-path arbitration,
    /// router allocation stages, circuit acknowledgements.
    pub arbitration_ps: u64,
    /// Pushing the payload through the bottleneck link (burst or flit
    /// serialisation, ejection).
    pub serialization_ps: u64,
    /// Time of flight: waveguide/wire propagation, per-hop link
    /// traversal.
    pub propagation_ps: u64,
    /// Fixed interface costs that fit no other bin (NI latency,
    /// rounding residue of corrected analytic latencies).
    pub overhead_ps: u64,
}

impl LatencyBreakdown {
    #[inline]
    pub fn total_ps(&self) -> u64 {
        self.queue_ps
            + self.arbitration_ps
            + self.serialization_ps
            + self.propagation_ps
            + self.overhead_ps
    }

    /// `(label, value)` pairs in a fixed report order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("queue", self.queue_ps),
            ("arbitration", self.arbitration_ps),
            ("serialization", self.serialization_ps),
            ("propagation", self.propagation_ps),
            ("overhead", self.overhead_ps),
        ]
    }
}

/// One message's full journey through a network model: the [`Delivery`]
/// endpoints plus the per-component latency decomposition. Collected by
/// models only while [`NetworkModel::set_lifecycle_capture`] is on, and
/// harvested with [`NetworkModel::take_lifecycles`].
#[derive(Clone, Copy, Debug)]
pub struct MsgLifecycle {
    pub msg: Message,
    pub injected_at: SimTime,
    pub delivered_at: SimTime,
    pub breakdown: LatencyBreakdown,
}

impl MsgLifecycle {
    #[inline]
    pub fn latency_ps(&self) -> u64 {
        self.delivered_at.saturating_since(self.injected_at).as_ps()
    }
}

/// Pull-based co-simulation interface implemented by every interconnect.
///
/// `Send` is a supertrait so boxed models can move across the shard
/// worker threads of the parallel capture runner; every implementor is
/// plain owned data, so this costs nothing.
pub trait NetworkModel: Send {
    /// Number of endpoints.
    fn num_nodes(&self) -> usize;

    /// Hand a message to the source network interface at time `at`
    /// (must be ≥ the model's current time).
    fn inject(&mut self, at: SimTime, msg: Message);

    /// Inject a message whose source-side timestamp may precede the
    /// model's current time, *without* clamping it forward. Used by the
    /// parallel capture runner, which hands cross-shard messages to the
    /// destination shard's model at the epoch barrier: the injection
    /// time is in the barrier's past, but the conservative lookahead
    /// guarantees the *delivery* is still in the future. Models whose
    /// `inject` does not clamp can keep this default.
    fn inject_backdated(&mut self, at: SimTime, msg: Message) {
        self.inject(at, msg);
    }

    /// Earliest future instant at which the model has internal work
    /// (a pending injection, a flit to move, an arbitration slot...).
    /// `None` means the network is quiescent.
    fn next_time(&self) -> Option<SimTime>;

    /// Advance internal state up to and including time `t`, appending
    /// any completed deliveries to `out`.
    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>);

    /// Run until quiescent (all injected messages delivered), appending
    /// deliveries. Returns the time of the last processed event.
    fn drain(&mut self, out: &mut Vec<Delivery>) -> SimTime {
        let mut last = SimTime::ZERO;
        while let Some(t) = self.next_time() {
            self.advance_until(t, out);
            last = t;
        }
        last
    }

    /// Advance through whole event-timestamp batches until one produces
    /// a delivery, the next event time reaches `stop` (exclusive: the
    /// batch at `stop` is *not* processed), or the model goes quiescent.
    /// Returns the model's next event time after stopping.
    ///
    /// This is the replay engines' inner loop hoisted across the trait
    /// boundary: driving a boxed model per-timestamp costs two virtual
    /// calls per event round, while here the `next_time`/`advance_until`
    /// calls devirtualize inside the (monomorphic) implementation. The
    /// default must keep exactly the semantics of the caller-side loop
    /// it replaces — same pop order on the same queue — so overriding
    /// implementations can only restate it, never reorder it.
    fn advance_batches(
        &mut self,
        stop: Option<SimTime>,
        out: &mut Vec<Delivery>,
    ) -> Option<SimTime> {
        loop {
            let t = self.next_time()?;
            if let Some(s) = stop {
                if t >= s {
                    return Some(t);
                }
            }
            let before = out.len();
            self.advance_until(t, out);
            if out.len() > before {
                return self.next_time();
            }
        }
    }

    /// Clone the model's complete state behind a fresh box, or `None`
    /// if the model does not support checkpointing. Used by incremental
    /// replay to record epoch checkpoints; a snapshot must behave
    /// exactly like the original from this point on (same event order,
    /// same tiebreaks, same statistics).
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        None
    }

    /// Aggregate statistics since construction (or the last reset).
    fn stats(&self) -> &NetStats;

    /// Reset statistics (e.g. after warmup) without touching state.
    fn reset_stats(&mut self);

    /// Short architecture label for reports ("emesh", "omesh", "oxbar"...).
    fn label(&self) -> &'static str;

    /// Append one [`NodeObs`] per endpoint describing current queue
    /// depths and cumulative link busy time. Models without per-node
    /// state (analytic, hybrid wrappers) may report nothing — the
    /// default.
    fn observe_nodes(&self, _out: &mut Vec<NodeObs>) {}

    /// Turn per-message lifecycle capture on or off. Off by default;
    /// models that do not implement capture ignore the call (and
    /// [`Self::lifecycle_capture`] stays `false`).
    fn set_lifecycle_capture(&mut self, _on: bool) {}

    /// Whether this model is currently recording [`MsgLifecycle`]s.
    fn lifecycle_capture(&self) -> bool {
        false
    }

    /// Move every lifecycle recorded since the last call into `out`
    /// (appending). Models without capture append nothing.
    fn take_lifecycles(&mut self, _out: &mut Vec<MsgLifecycle>) {}
}

/// A contention-free analytic latency model.
///
/// Used (a) as the cheap provisional model during trace capture in
/// SCTM's first iteration, and (b) as the in-loop model that the online
/// correction variant adjusts epoch by epoch. Latency =
/// `base + per_hop × hops(src,dst) + bytes × per_byte`, all configurable,
/// plus an optional multiplicative correction factor table.
#[derive(Clone, Debug)]
pub struct AnalyticNetwork {
    nodes: usize,
    mesh_w: usize,
    base: SimTime,
    per_hop: SimTime,
    per_byte_ps: u64,
    /// Multiplicative correction per (class, src, dst), fixed-point
    /// 1/1024. Kept per message class because real interconnects treat
    /// short control and long data messages very differently (hybrid
    /// optical designs even route them through different planes).
    correction_q10: Vec<u32>,
    /// Optional per-destination serialisation: minimum spacing between
    /// consecutive deliveries at one node, in ps/byte (models finite
    /// ejection bandwidth — e.g. an MWSR home channel's single reader).
    /// Zero = infinite ejection bandwidth (the default).
    dst_service_ps_per_byte: Vec<u64>,
    /// Earliest time each destination can accept its next delivery.
    dst_free: Vec<SimTime>,
    pending: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize)>>,
    queue: Vec<(Message, SimTime, LatencyBreakdown)>,
    free: Vec<usize>,
    stats: NetStats,
    now: SimTime,
    capture: bool,
    lifecycles: Vec<MsgLifecycle>,
}

impl AnalyticNetwork {
    /// `nodes` must be a perfect square (mesh hop distance is used).
    pub fn new(nodes: usize, base: SimTime, per_hop: SimTime, per_byte_ps: u64) -> Self {
        let mesh_w = (nodes as f64).sqrt() as usize;
        assert_eq!(
            mesh_w * mesh_w,
            nodes,
            "AnalyticNetwork wants a square node count"
        );
        AnalyticNetwork {
            nodes,
            mesh_w,
            base,
            per_hop,
            per_byte_ps,
            correction_q10: vec![1024; 2 * nodes * nodes],
            dst_service_ps_per_byte: vec![0; nodes],
            dst_free: vec![SimTime::ZERO; nodes],
            pending: Default::default(),
            queue: Vec::new(),
            free: Vec::new(),
            stats: NetStats::default(),
            now: SimTime::ZERO,
            capture: false,
            lifecycles: Vec::new(),
        }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = (a.idx() % self.mesh_w, a.idx() / self.mesh_w);
        let (bx, by) = (b.idx() % self.mesh_w, b.idx() / self.mesh_w);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The uncorrected model latency for a message.
    pub fn model_latency(&self, msg: &Message) -> SimTime {
        let hops = self.hops(msg.src, msg.dst);
        let raw =
            self.base.as_ps() + self.per_hop.as_ps() * hops + self.per_byte_ps * msg.bytes as u64;
        let q = self.correction_q10[self.corr_idx(msg.src, msg.dst, msg.class)] as u64;
        SimTime::from_ps(raw * q / 1024)
    }

    #[inline]
    fn corr_idx(&self, src: NodeId, dst: NodeId, class: MsgClass) -> usize {
        let c = match class {
            MsgClass::Control => 0,
            MsgClass::Data => 1,
        };
        c * self.nodes * self.nodes + src.idx() * self.nodes + dst.idx()
    }

    /// The model latency with the correction factor stripped (what the
    /// uncorrected formula would predict) — the denominator the online
    /// correction loop needs when re-deriving factors.
    pub fn base_latency(&self, msg: &Message) -> SimTime {
        let hops = self.hops(msg.src, msg.dst);
        SimTime::from_ps(
            self.base.as_ps() + self.per_hop.as_ps() * hops + self.per_byte_ps * msg.bytes as u64,
        )
    }

    /// Install a multiplicative correction factor for one (src, dst,
    /// class) flow.
    pub fn set_correction(&mut self, src: NodeId, dst: NodeId, class: MsgClass, factor: f64) {
        let q = (factor.clamp(1.0 / 64.0, 64.0) * 1024.0) as u32;
        let idx = self.corr_idx(src, dst, class);
        self.correction_q10[idx] = q;
    }

    pub fn correction(&self, src: NodeId, dst: NodeId, class: MsgClass) -> f64 {
        self.correction_q10[self.corr_idx(src, dst, class)] as f64 / 1024.0
    }

    /// Model finite ejection bandwidth at `dst`: consecutive deliveries
    /// are spaced by at least `bytes × ps_per_byte`. Pass 0 to disable.
    pub fn set_dst_service(&mut self, dst: NodeId, ps_per_byte: u64) {
        self.dst_service_ps_per_byte[dst.idx()] = ps_per_byte;
    }

    pub fn dst_service(&self, dst: NodeId) -> u64 {
        self.dst_service_ps_per_byte[dst.idx()]
    }

    /// Minimum corrected latency over all cross-node pairs and the given
    /// `(class, payload bytes)` combinations — the conservative lookahead
    /// bound for epoch-parallel simulation: no message injected at time
    /// `t` can be delivered before `t + min_cross_latency`.
    ///
    /// Iterates every (src, dst) pair because correction factors are
    /// per-pair; with n ≤ a few hundred nodes this is microseconds and is
    /// called once per capture, not per epoch.
    pub fn min_cross_latency(&self, classes: &[(MsgClass, u32)]) -> SimTime {
        let mut min = SimTime::MAX;
        for s in 0..self.nodes {
            for d in 0..self.nodes {
                if s == d {
                    continue;
                }
                for &(class, bytes) in classes {
                    let m = Message {
                        id: MsgId(0),
                        src: NodeId(s as u32),
                        dst: NodeId(d as u32),
                        class,
                        bytes,
                    };
                    let l = self.model_latency(&m);
                    if l < min {
                        min = l;
                    }
                }
            }
        }
        min
    }

    /// Shared body of `inject` / `inject_backdated`: everything except
    /// the forward clamp of `at`.
    fn inject_at(&mut self, at: SimTime, msg: Message) {
        self.stats.injected += 1;
        let model_lat = self.model_latency(&msg);
        let mut deliver = at + model_lat;
        let mut bd = LatencyBreakdown::default();
        if self.capture {
            // The correction factor scales the whole analytic formula;
            // scale serialization/propagation by the same factor and
            // let the flooring residue land in overhead alongside the
            // base term, so the five bins sum exactly to the latency.
            let q = self.correction_q10[self.corr_idx(msg.src, msg.dst, msg.class)] as u64;
            let hops = self.hops(msg.src, msg.dst);
            bd.serialization_ps = self.per_byte_ps * msg.bytes as u64 * q / 1024;
            bd.propagation_ps = self.per_hop.as_ps() * hops * q / 1024;
            bd.overhead_ps = model_lat
                .as_ps()
                .saturating_sub(bd.serialization_ps + bd.propagation_ps);
        }
        let service_per_byte = self.dst_service_ps_per_byte[msg.dst.idx()];
        if service_per_byte > 0 {
            // Finite ejection bandwidth: serialise behind earlier
            // deliveries at this destination (approximated in injection
            // order, which is time order for both co-simulation and
            // replay callers).
            let service = SimTime::from_ps(service_per_byte * msg.bytes.max(1) as u64);
            let start = deliver.max(self.dst_free[msg.dst.idx()]);
            if self.capture {
                bd.queue_ps = start.saturating_since(deliver).as_ps();
                bd.serialization_ps += service.as_ps();
            }
            deliver = start + service;
            self.dst_free[msg.dst.idx()] = deliver;
        }
        let slot = if let Some(i) = self.free.pop() {
            self.queue[i] = (msg, at, bd);
            i
        } else {
            self.queue.push((msg, at, bd));
            self.queue.len() - 1
        };
        self.pending
            .push(std::cmp::Reverse((deliver, msg.id.0, slot)));
    }
}

impl NetworkModel for AnalyticNetwork {
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        Some(Box::new(self.clone()))
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        let at = at.max(self.now);
        self.inject_at(at, msg);
    }

    fn inject_backdated(&mut self, at: SimTime, msg: Message) {
        // No forward clamp: `at` is the true source-side injection time,
        // which at an epoch barrier may lie before `self.now`. The
        // caller (parallel capture) guarantees delivery is still in the
        // future, so the pending heap stays consistent. In sequential
        // co-simulation the clamp in `inject` never fires anyway (every
        // send carries a handler timestamp ≥ the model's time), which is
        // why both paths compute identical delivery times.
        self.inject_at(at, msg);
    }

    fn next_time(&self) -> Option<SimTime> {
        self.pending.peek().map(|std::cmp::Reverse((t, _, _))| *t)
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        while let Some(std::cmp::Reverse((dt, _, slot))) = self.pending.peek().copied() {
            if dt > t {
                break;
            }
            self.pending.pop();
            let (msg, injected_at, bd) = self.queue[slot];
            self.free.push(slot);
            let d = Delivery {
                msg,
                injected_at,
                delivered_at: dt,
            };
            self.stats.record_delivery(&d);
            if self.capture {
                self.lifecycles.push(MsgLifecycle {
                    msg,
                    injected_at,
                    delivered_at: dt,
                    breakdown: bd,
                });
            }
            out.push(d);
            self.now = dt;
        }
        if t > self.now {
            self.now = t;
        }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    fn label(&self) -> &'static str {
        "analytic"
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.capture = on;
    }

    fn lifecycle_capture(&self) -> bool {
        self.capture
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        out.append(&mut self.lifecycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, src: u32, dst: u32, bytes: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if bytes > 16 {
                MsgClass::Data
            } else {
                MsgClass::Control
            },
            bytes,
        }
    }

    fn net() -> AnalyticNetwork {
        AnalyticNetwork::new(16, SimTime::from_ps(1000), SimTime::from_ps(400), 10)
    }

    #[test]
    fn latency_formula() {
        let n = net();
        // node 0 -> node 5 in a 4x4 mesh: dx=1, dy=1 => 2 hops
        let m = msg(1, 0, 5, 8);
        assert_eq!(n.model_latency(&m).as_ps(), 1000 + 2 * 400 + 80);
    }

    #[test]
    fn delivers_in_order_of_completion() {
        let mut n = net();
        n.inject(SimTime::ZERO, msg(1, 0, 15, 64)); // 6 hops, slow
        n.inject(SimTime::ZERO, msg(2, 0, 1, 8)); // 1 hop, fast
        let mut out = Vec::new();
        n.drain(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].msg.id, MsgId(2));
        assert_eq!(out[1].msg.id, MsgId(1));
        assert_eq!(n.stats().delivered, 2);
        assert_eq!(n.stats().in_flight(), 0);
    }

    #[test]
    fn correction_scales_latency() {
        let mut n = net();
        let m = msg(1, 0, 1, 0); // 0 bytes → Control class
        let base = n.model_latency(&m).as_ps();
        n.set_correction(NodeId(0), NodeId(1), MsgClass::Control, 2.0);
        assert_eq!(n.model_latency(&m).as_ps(), base * 2);
        assert!((n.correction(NodeId(0), NodeId(1), MsgClass::Control) - 2.0).abs() < 1e-3);
        // other pairs unaffected
        let m2 = msg(2, 1, 0, 0);
        assert_eq!(n.model_latency(&m2).as_ps(), base);
    }

    #[test]
    fn corrections_are_per_class() {
        let mut n = net();
        let ctrl = msg(1, 0, 1, 0);
        let data = msg(2, 0, 1, 64);
        let base_data = n.model_latency(&data).as_ps();
        n.set_correction(NodeId(0), NodeId(1), MsgClass::Control, 3.0);
        // Data on the same pair is untouched.
        assert_eq!(n.model_latency(&data).as_ps(), base_data);
        assert!(n.model_latency(&ctrl).as_ps() > base_data / 2);
    }

    #[test]
    fn correction_is_clamped() {
        let mut n = net();
        n.set_correction(NodeId(0), NodeId(1), MsgClass::Data, 1e9);
        assert!(n.correction(NodeId(0), NodeId(1), MsgClass::Data) <= 64.0);
        n.set_correction(NodeId(0), NodeId(1), MsgClass::Data, 0.0);
        assert!(n.correction(NodeId(0), NodeId(1), MsgClass::Data) >= 1.0 / 64.0);
    }

    #[test]
    fn advance_until_respects_deadline() {
        let mut n = net();
        n.inject(SimTime::ZERO, msg(1, 0, 1, 0)); // 1400 ps
        let mut out = Vec::new();
        n.advance_until(SimTime::from_ps(1000), &mut out);
        assert!(out.is_empty());
        n.advance_until(SimTime::from_ps(2000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delivered_at.as_ps(), 1400);
    }

    #[test]
    fn stats_split_by_class() {
        let mut n = net();
        n.inject(SimTime::ZERO, msg(1, 0, 1, 8)); // ctrl
        n.inject(SimTime::ZERO, msg(2, 0, 1, 64)); // data
        let mut out = Vec::new();
        n.drain(&mut out);
        assert_eq!(n.stats().ctrl_latency_ps.count(), 1);
        assert_eq!(n.stats().data_latency_ps.count(), 1);
        assert!(n.stats().mean_latency_ps() > 0.0);
        assert_eq!(n.stats().bytes_delivered, 72);
    }

    #[test]
    fn reset_stats_keeps_state() {
        let mut n = net();
        n.inject(SimTime::ZERO, msg(1, 0, 1, 8));
        n.reset_stats();
        let mut out = Vec::new();
        n.drain(&mut out);
        // the in-flight message still delivers after reset
        assert_eq!(out.len(), 1);
        assert_eq!(n.stats().delivered, 1);
        assert_eq!(n.stats().injected, 0, "injected counter was reset");
    }

    #[test]
    fn slot_reuse_does_not_corrupt() {
        let mut n = net();
        let mut out = Vec::new();
        for round in 0..10u64 {
            for i in 0..16u64 {
                n.inject(
                    n.next_time().unwrap_or(SimTime::ZERO),
                    msg(round * 16 + i, (i % 16) as u32, ((i + 3) % 16) as u32, 8),
                );
            }
            n.drain(&mut out);
        }
        assert_eq!(out.len(), 160);
        let mut ids: Vec<_> = out.iter().map(|d| d.msg.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 160, "every message delivered exactly once");
    }

    #[test]
    fn lifecycle_breakdown_sums_exactly() {
        let mut n = net();
        n.set_lifecycle_capture(true);
        assert!(n.lifecycle_capture());
        n.set_dst_service(NodeId(1), 5);
        n.set_correction(NodeId(2), NodeId(15), MsgClass::Control, 1.37);
        n.inject(SimTime::ZERO, msg(1, 0, 1, 64));
        n.inject(SimTime::ZERO, msg(2, 0, 1, 64));
        n.inject(SimTime::ZERO, msg(3, 2, 15, 8));
        let mut out = Vec::new();
        n.drain(&mut out);
        let mut lc = Vec::new();
        n.take_lifecycles(&mut lc);
        assert_eq!(lc.len(), 3);
        for l in &lc {
            assert_eq!(l.breakdown.total_ps(), l.latency_ps(), "{l:?}");
        }
        // The second message to the serialised destination queued
        // behind the first.
        assert!(lc.iter().any(|l| l.breakdown.queue_ps > 0));
        // take_lifecycles drains.
        let mut again = Vec::new();
        n.take_lifecycles(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn delivery_latency_helper() {
        let d = Delivery {
            msg: msg(1, 0, 1, 8),
            injected_at: SimTime::from_ps(100),
            delivered_at: SimTime::from_ps(350),
        };
        assert_eq!(d.latency().as_ps(), 250);
    }
}
