//! Named metrics: counters, gauges and latency histograms.
//!
//! The primitives are the engine's own streaming statistics
//! ([`sctm_engine::stats`]); this module gives them *names* and a merge
//! discipline so independent workers can aggregate deterministically.
//! All three merge operations are exactly associative and commutative
//! (integer adds, bucket-wise histogram adds, max for gauges), so a
//! `par_map` sweep merging worker snapshots in any order produces the
//! same registry bit for bit — the property `tests/obs_properties.rs`
//! checks.

use crate::{enabled, lock_unpoisoned};
use sctm_engine::net::{NetworkModel, NodeObs};
use sctm_engine::stats::Histogram;
use sctm_engine::time::SimTime;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One registered metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone count; merge adds (saturating, so aggregation can
    /// never panic and stays associative).
    Counter(u64),
    /// Last-observed level; merge takes the max (associative, unlike
    /// last-write-wins, so parallel aggregation stays order-free).
    Gauge(f64),
    /// Value distribution; merge is bucket-wise addition.
    Hist(Histogram),
}

/// A name → metric map with snapshot/merge semantics. Names sort
/// lexicographically (`BTreeMap`), so iteration, export and merge order
/// are all deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    map: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    pub const fn new() -> Self {
        MetricsRegistry {
            map: BTreeMap::new(),
        }
    }

    pub fn counter_add(&mut self, name: impl Into<String>, k: u64) {
        match self
            .map
            .entry(name.into())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(n) => *n = n.saturating_add(k),
            other => debug_assert!(false, "counter_add on {other:?}"),
        }
    }

    pub fn gauge_set(&mut self, name: impl Into<String>, v: f64) {
        self.map.insert(name.into(), MetricValue::Gauge(v));
    }

    pub fn hist_record(&mut self, name: impl Into<String>, v: u64) {
        match self
            .map
            .entry(name.into())
            .or_insert_with(|| MetricValue::Hist(Histogram::new()))
        {
            MetricValue::Hist(h) => h.record(v),
            other => debug_assert!(false, "hist_record on {other:?}"),
        }
    }

    /// Merge a whole histogram under `name` (publishing a model's
    /// already-accumulated latency distribution).
    pub fn hist_merge(&mut self, name: impl Into<String>, h: &Histogram) {
        match self
            .map
            .entry(name.into())
            .or_insert_with(|| MetricValue::Hist(Histogram::new()))
        {
            MetricValue::Hist(mine) => mine.merge(h),
            other => debug_assert!(false, "hist_merge on {other:?}"),
        }
    }

    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.map.get(name)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// An owned copy suitable for sending to an aggregator thread.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// Merge another registry into this one. Same-named metrics combine
    /// per [`MetricValue`] kind; a kind mismatch is a caller bug
    /// (debug-asserted, ignored in release).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, theirs) in &other.map {
            match self.map.get_mut(name) {
                None => {
                    self.map.insert(name.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                        if *b > *a {
                            *a = *b;
                        }
                    }
                    (MetricValue::Hist(a), MetricValue::Hist(b)) => a.merge(b),
                    (mine, theirs) => {
                        debug_assert!(
                            false,
                            "metric kind mismatch for {name}: {mine:?} vs {theirs:?}"
                        )
                    }
                },
            }
        }
    }
}

static GLOBAL: Mutex<MetricsRegistry> = Mutex::new(MetricsRegistry::new());

/// Run `f` against the process-wide registry.
pub fn with_global<R>(f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
    f(&mut lock_unpoisoned(&GLOBAL))
}

/// Copy of the process-wide registry.
pub fn global_snapshot() -> MetricsRegistry {
    lock_unpoisoned(&GLOBAL).snapshot()
}

/// Clear the process-wide registry.
pub fn reset_global() {
    lock_unpoisoned(&GLOBAL).map.clear();
}

/// Publish a network model's aggregate stats and per-node observations
/// into `reg` under `net.<label>.*`. `elapsed` scales cumulative link
/// busy time into a utilisation gauge.
pub fn publish_network(reg: &mut MetricsRegistry, model: &dyn NetworkModel, elapsed: SimTime) {
    let label = model.label();
    let s = model.stats();
    reg.counter_add(format!("net.{label}.injected"), s.injected);
    reg.counter_add(format!("net.{label}.delivered"), s.delivered);
    reg.counter_add(format!("net.{label}.bytes_delivered"), s.bytes_delivered);
    reg.gauge_set(format!("net.{label}.energy_pj"), s.energy_pj);
    reg.hist_merge(format!("net.{label}.lat_ctrl_ps"), &s.ctrl_latency_ps);
    reg.hist_merge(format!("net.{label}.lat_data_ps"), &s.data_latency_ps);
    let mut nodes: Vec<NodeObs> = Vec::new();
    model.observe_nodes(&mut nodes);
    let el = elapsed.as_ps().max(1) as f64;
    for o in &nodes {
        reg.gauge_set(
            format!("net.{label}.node{:03}.queue_depth", o.node),
            o.queue_depth as f64,
        );
        reg.gauge_set(
            format!("net.{label}.node{:03}.link_util", o.node),
            (o.link_busy_ps as f64 / el).min(1.0),
        );
    }
}

/// One iteration of the self-correction loop, as telemetry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterTelemetry {
    pub network: &'static str,
    pub workload: &'static str,
    pub iteration: u32,
    pub est_ps: u64,
    pub drift_ps: u64,
    pub corrections: u64,
    pub messages: u64,
    pub wall_ns: u64,
}

static ITERATIONS: Mutex<Vec<IterTelemetry>> = Mutex::new(Vec::new());

/// Record one self-correction iteration: kept structured for the run
/// manifest and mirrored into the global registry as gauges under
/// `sctm.<network>.<workload>.iterNN.*` so it is queryable like any
/// other metric. No-op while recording is disabled.
pub fn record_iteration(t: IterTelemetry) {
    if !enabled() {
        return;
    }
    lock_unpoisoned(&ITERATIONS).push(t);
    with_global(|reg| {
        let p = format!("sctm.{}.{}.iter{:02}", t.network, t.workload, t.iteration);
        reg.gauge_set(format!("{p}.est_ps"), t.est_ps as f64);
        reg.gauge_set(format!("{p}.drift_ps"), t.drift_ps as f64);
        reg.gauge_set(format!("{p}.corrections"), t.corrections as f64);
        reg.gauge_set(format!("{p}.messages"), t.messages as f64);
        reg.gauge_set(format!("{p}.wall_ns"), t.wall_ns as f64);
    });
}

/// Every iteration recorded since the last reset, in a deterministic
/// order (network, workload, iteration — not arrival order, which
/// parallel sweeps scramble).
pub fn iterations_snapshot() -> Vec<IterTelemetry> {
    let mut v = lock_unpoisoned(&ITERATIONS).clone();
    v.sort_by(|a, b| {
        (a.network, a.workload, a.iteration).cmp(&(b.network, b.workload, b.iteration))
    });
    v
}

pub fn reset_iterations() {
    lock_unpoisoned(&ITERATIONS).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_hist_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", 1.5);
        r.hist_record("h", 100);
        r.hist_record("h", 200);
        assert_eq!(r.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(r.get("g"), Some(&MetricValue::Gauge(1.5)));
        match r.get("h") {
            Some(MetricValue::Hist(h)) => assert_eq!(h.count(), 2),
            other => panic!("bad metric {other:?}"),
        }
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn merge_combines_per_kind() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 2.0);
        a.hist_record("h", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 4);
        b.gauge_set("g", 1.0);
        b.hist_record("h", 20);
        b.counter_add("only_b", 7);
        a.merge(&b);
        assert_eq!(a.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(a.get("g"), Some(&MetricValue::Gauge(2.0)));
        assert_eq!(a.get("only_b"), Some(&MetricValue::Counter(7)));
        match a.get("h") {
            Some(MetricValue::Hist(h)) => assert_eq!(h.count(), 2),
            other => panic!("bad metric {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_independent() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        let snap = a.snapshot();
        a.counter_add("c", 1);
        assert_eq!(snap.get("c"), Some(&MetricValue::Counter(1)));
        assert_eq!(a.get("c"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn global_registry_survives_poisoning() {
        with_global(|r| r.counter_add("poison.survivor", 1));
        // Panic while holding the global lock (from another thread, so
        // this test's own unwind is clean).
        std::thread::spawn(|| {
            with_global(|_| panic!("metrics user dies mid-update"));
        })
        .join()
        .unwrap_err();
        // All global entry points must still work and see the data.
        with_global(|r| r.counter_add("poison.survivor", 1));
        let snap = global_snapshot();
        assert_eq!(snap.get("poison.survivor"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn iteration_telemetry_gated_and_mirrored() {
        crate::set_enabled(false);
        record_iteration(IterTelemetry {
            network: "none",
            workload: "none",
            iteration: 1,
            est_ps: 1,
            drift_ps: 1,
            corrections: 0,
            messages: 0,
            wall_ns: 0,
        });
        assert!(!iterations_snapshot().iter().any(|t| t.network == "none"));

        crate::set_enabled(true);
        record_iteration(IterTelemetry {
            network: "testnet",
            workload: "testwl",
            iteration: 2,
            est_ps: 123,
            drift_ps: 4,
            corrections: 5,
            messages: 6,
            wall_ns: 7,
        });
        crate::set_enabled(false);
        assert!(iterations_snapshot()
            .iter()
            .any(|t| t.network == "testnet" && t.est_ps == 123));
        let g = global_snapshot();
        assert_eq!(
            g.get("sctm.testnet.testwl.iter02.est_ps"),
            Some(&MetricValue::Gauge(123.0))
        );
    }
}
