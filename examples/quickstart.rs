//! Quickstart: simulate one application on an optical NoC three ways
//! and see why the self-correction trace model exists.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sctm::prelude::*;

fn main() {
    // A 16-core tiled CMP whose interconnect is the circuit-switched
    // photonic mesh (swap for NetworkKind::Oxbar or Emesh freely).
    let system = SystemConfig::new(4, NetworkKind::Omesh);
    println!("{}", system.config_table().render());

    let exp = Experiment::new(system, Kernel::Fft).with_ops(600);

    // 1. The accurate-but-slow reference: full co-simulation of cores,
    //    caches, coherence and the photonic network.
    let reference = exp.execute(&RunSpec::exec_driven()).unwrap().report;
    println!(
        "execution-driven: exec={}  data-lat={:.1}ns  wall={:?}",
        reference.exec_time, reference.mean_lat_data_ns, reference.wall
    );

    // 2. The classic trace model: capture once on a cheap model, replay
    //    timestamps verbatim. Fast, but the timing feedback loop is
    //    gone and the estimate drifts.
    let classic = exp.execute(&RunSpec::classic()).unwrap().report;
    let acc = accuracy(&classic, &reference);
    println!(
        "classic trace:    exec={}  err={:.1}%  wall={:?}",
        classic.exec_time, acc.exec_time_err_pct, classic.wall
    );

    // 3. The paper's self-correction trace model: the replay corrects
    //    the timeline against the detailed network, and the capture
    //    model corrects itself between iterations.
    let sctm = exp.execute(&RunSpec::self_correction(4)).unwrap().report;
    let acc = accuracy(&sctm, &reference);
    println!(
        "self-correction:  exec={}  err={:.1}%  wall={:?}",
        sctm.exec_time, acc.exec_time_err_pct, sctm.wall
    );
    for it in sctm.iterations.as_deref().unwrap_or_default() {
        println!(
            "   iteration {}: estimate={}  drift={}",
            it.iteration, it.est_exec_time, it.drift
        );
    }
}
