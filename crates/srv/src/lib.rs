//! # sctm-srv — the `sctmd` batch simulation service
//!
//! A long-running, std-only front-end for the SCTM simulator: clients
//! send newline-delimited requests (over TCP, or over stdin for CI
//! pipelines) describing simulations in the [`RunSpec`] vocabulary, and
//! get back one single-line JSON response per request, ending with a
//! run manifest in the `sctm-obs` schema.
//!
//! The piece that makes a *service* worth running over a CLI is the
//! [`CaptureCache`]: CMP captures are content-addressed by
//! (kernel, side, ops, seed) — the capture runs on the analytic model
//! and is byte-identical at any `SCTM_THREADS`, so the target network
//! is *not* part of the identity. A design sweep of fifty network
//! configurations over one workload therefore costs one capture plus
//! fifty replays, and the cache counters in every response prove it.
//!
//! Scheduling rides the workspace's deterministic worker pool
//! (`sctm_engine::par::par_map`): a batch of queued requests runs in
//! parallel yet answers bit-identically to serial execution. The
//! request queue is bounded with explicit backpressure (`busy` +
//! `retry_after_ms`), each request has a queue deadline, and shutdown
//! drains gracefully.
//!
//! ```text
//! $ printf 'run kernel=fft net=omesh ops=300 id=a\nstats\n' | sctmd --stdin
//! {"status":"ok","id":"a",...,"result":{...}}
//! {"status":"ok","stats":{...}}
//! ```
//!
//! [`RunSpec`]: sctm_core::RunSpec

pub mod cache;
pub mod proto;
pub mod server;
pub mod shard;

pub use cache::{CacheStats, CaptureCache, CaptureKey};
pub use proto::{
    parse_fwd_response, parse_request, result_json, CacheOutcome, FwdRequest, Request, RunRequest,
};
pub use server::{serve_lines, serve_tcp, SchedMode, Server, ServerConfig};
pub use shard::{Shard, ShardRing};
