//! # sctm-enoc — cycle-accurate electrical NoC simulator
//!
//! The **baseline NoC simulator** the paper compares against: a classic
//! wormhole virtual-channel mesh/torus network with credit-based flow
//! control, the reference interconnect for the CMP full-system model and
//! one of the two comparators in every SCTM experiment.
//!
//! * [`topology`] — mesh/torus geometry, XY/YX dimension-order and
//!   odd-even adaptive routing, torus datelines.
//! * [`packet`] — message packetisation into flits and reassembly.
//! * [`network`] — the router microarchitecture and the
//!   [`sctm_engine::net::NetworkModel`] implementation.
//! * [`traffic`] — synthetic traffic patterns and the open-loop
//!   load-latency measurement harness used for network validation.

pub mod network;
pub mod packet;
pub mod topology;
pub mod traffic;

pub use network::{NocConfig, NocSim};
pub use packet::{Flit, FlitKind, PacketizeConfig};
pub use topology::{Port, Routing, Topology};
pub use traffic::{LoadLatencyPoint, Pattern, TrafficConfig, TrafficRunner};
