//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) with real
//! wall-clock measurement: each benchmark is calibrated during a short
//! warm-up, then timed for `sample_size` samples, and the min / median /
//! max per-iteration times are printed in criterion's familiar
//! `time: [low mid high]` shape. No plots, no statistics beyond the
//! order statistics, no baseline persistence.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, p: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{p}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Calibrate, sample, and report one benchmark.
fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Calibration / warm-up: run until ~80 ms of work has executed,
    // tracking the cheapest observed per-iteration cost.
    f(&mut b);
    let mut per_iter_ns = (b.elapsed.as_nanos().max(1)) as f64;
    let mut warmed = b.elapsed;
    while warmed < Duration::from_millis(80) {
        let want = (20_000_000.0 / per_iter_ns).clamp(1.0, 4_000_000.0) as u64;
        b.iters = want;
        f(&mut b);
        warmed += b.elapsed;
        per_iter_ns = per_iter_ns.min(b.elapsed.as_nanos() as f64 / want as f64);
    }

    // Aim for ~25 ms per sample so cheap benchmarks average over many
    // iterations while expensive ones still run at least once.
    let iters = (25_000_000.0 / per_iter_ns).clamp(1.0, 16_000_000.0) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
    };
    println!(
        "{:<40} time: [{} {} {}]  ({} samples x {} iters)",
        id,
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        sample_size,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }`
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64 + 2));
        });
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            ran += 1;
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert!(ran > 0);
    }
}
