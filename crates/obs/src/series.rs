//! Time-series sampling of per-node network gauges.
//!
//! [`publish_network`] captures one end-of-run snapshot per node; this
//! module captures the *trajectory*: a [`SampledNetwork`] wraps any
//! [`NetworkModel`] and, while the simulation advances, records each
//! node's queue depth and link utilisation at a fixed sim-time cadence.
//! The result is a [`SeriesStore`] of compact `(t_ps, value)` series
//! that export as Perfetto counter tracks (see
//! [`crate::chrome_trace_with_series`]) and as a `series` section of
//! the run manifest.
//!
//! Sampling is a pure observer: the wrapper only splits `advance_until`
//! calls at sample boundaries, which every model already supports at
//! arbitrary horizons, so wrapped and bare runs produce identical
//! deliveries — asserted by the tests below.
//!
//! [`publish_network`]: crate::publish_network

use sctm_engine::net::{Delivery, Message, MsgLifecycle, NetStats, NetworkModel, NodeObs};
use sctm_engine::time::SimTime;

/// One per-node gauge over sim time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterSeries {
    /// Metric name, e.g. `node003.queue_depth`.
    pub name: String,
    pub node: u32,
    /// `(sim time ps, value)`, strictly increasing in time.
    pub points: Vec<(u64, f64)>,
}

/// All series sampled during one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesStore {
    /// Sampling cadence in picoseconds of sim time.
    pub interval_ps: u64,
    pub series: Vec<CounterSeries>,
}

impl SeriesStore {
    pub fn is_empty(&self) -> bool {
        self.series.iter().all(|s| s.points.is_empty())
    }

    /// Total sample points across all series.
    pub fn num_points(&self) -> usize {
        self.series.iter().map(|s| s.points.len()).sum()
    }
}

/// A [`NetworkModel`] decorator that samples per-node gauges every
/// `interval` of sim time while delegating all simulation to the
/// wrapped model.
pub struct SampledNetwork {
    inner: Box<dyn NetworkModel>,
    interval: SimTime,
    next_sample: SimTime,
    /// Last seen cumulative busy time per node, to turn the monotone
    /// counter into a per-interval utilisation.
    last_busy: Vec<u64>,
    scratch: Vec<NodeObs>,
    store: SeriesStore,
}

impl SampledNetwork {
    pub fn new(inner: Box<dyn NetworkModel>, interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "sampling interval must be > 0");
        let n = inner.num_nodes();
        let mut series = Vec::with_capacity(2 * n);
        for node in 0..n as u32 {
            series.push(CounterSeries {
                name: format!("node{node:03}.queue_depth"),
                node,
                points: Vec::new(),
            });
            series.push(CounterSeries {
                name: format!("node{node:03}.link_util"),
                node,
                points: Vec::new(),
            });
        }
        SampledNetwork {
            inner,
            interval,
            next_sample: interval,
            last_busy: vec![0; n],
            scratch: Vec::new(),
            store: SeriesStore {
                interval_ps: interval.as_ps(),
                series,
            },
        }
    }

    pub fn series(&self) -> &SeriesStore {
        &self.store
    }

    /// Unwrap, returning the inner model and the sampled series.
    pub fn into_parts(self) -> (Box<dyn NetworkModel>, SeriesStore) {
        (self.inner, self.store)
    }

    fn sample(&mut self, at: SimTime) {
        self.scratch.clear();
        self.inner.observe_nodes(&mut self.scratch);
        let at_ps = at.as_ps();
        let iv = self.interval.as_ps().max(1) as f64;
        for o in &self.scratch {
            let i = o.node as usize;
            if 2 * i + 1 >= self.store.series.len() {
                continue; // model reported a node it never declared
            }
            let busy = o.link_busy_ps.saturating_sub(self.last_busy[i]);
            self.last_busy[i] = o.link_busy_ps;
            self.store.series[2 * i]
                .points
                .push((at_ps, o.queue_depth as f64));
            self.store.series[2 * i + 1]
                .points
                .push((at_ps, (busy as f64 / iv).min(1.0)));
        }
    }
}

impl NetworkModel for SampledNetwork {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        self.inner.inject(at, msg);
    }

    fn next_time(&self) -> Option<SimTime> {
        self.inner.next_time()
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        while self.next_sample <= t {
            let s = self.next_sample;
            self.inner.advance_until(s, out);
            self.sample(s);
            self.next_sample = s + self.interval;
        }
        self.inner.advance_until(t, out);
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
        self.inner.observe_nodes(out);
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.inner.set_lifecycle_capture(on);
    }

    fn lifecycle_capture(&self) -> bool {
        self.inner.lifecycle_capture()
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        self.inner.take_lifecycles(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{AnalyticNetwork, MsgClass, MsgId, NodeId};

    fn msg(id: u64, src: u32, dst: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: MsgClass::Data,
            bytes: 64,
        }
    }

    fn run(mut net: Box<dyn NetworkModel>) -> Vec<(u64, u64)> {
        for i in 0..200u64 {
            net.inject(
                SimTime::from_ns(i % 50),
                msg(i, (i % 16) as u32, ((i * 7 + 1) % 16) as u32),
            );
        }
        let mut out = Vec::new();
        net.drain(&mut out);
        out.iter()
            .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
            .collect()
    }

    #[test]
    fn sampling_does_not_change_deliveries() {
        let bare = run(Box::new(AnalyticNetwork::new(
            16,
            SimTime::from_ns(8),
            SimTime::from_ns(2),
            40,
        )));
        let sampled = run(Box::new(SampledNetwork::new(
            Box::new(AnalyticNetwork::new(
                16,
                SimTime::from_ns(8),
                SimTime::from_ns(2),
                40,
            )),
            SimTime::from_ns(3),
        )));
        assert_eq!(bare, sampled);
    }

    #[test]
    fn samples_land_on_the_grid() {
        let mut net = SampledNetwork::new(
            Box::new(AnalyticNetwork::new(
                16,
                SimTime::from_ns(8),
                SimTime::from_ns(2),
                40,
            )),
            SimTime::from_ns(5),
        );
        for i in 0..50u64 {
            net.inject(SimTime::from_ns(i), msg(i, 0, 5));
        }
        let mut out = Vec::new();
        net.drain(&mut out);
        let store = net.series();
        assert_eq!(store.interval_ps, 5_000);
        assert_eq!(store.series.len(), 32);
        // AnalyticNetwork reports no per-node observations, so series
        // exist but stay empty — the wrapper must not invent data.
        assert!(store.is_empty());
    }

    #[test]
    fn detailed_model_produces_points() {
        use sctm_enoc_smoke::*;
        let (deliveries, store) = sampled_emesh_run();
        assert!(!deliveries.is_empty());
        assert!(!store.is_empty(), "no samples from a busy emesh run");
        let qd = &store.series[0];
        assert_eq!(qd.name, "node000.queue_depth");
        // Timestamps strictly increase along every series.
        for s in &store.series {
            assert!(s.points.windows(2).all(|w| w[0].0 < w[1].0));
            // Utilisation stays in [0, 1].
            if s.name.ends_with("link_util") {
                assert!(s.points.iter().all(|p| (0.0..=1.0).contains(&p.1)));
            }
        }
    }

    /// Tiny indirection so the obs crate does not depend on sctm-enoc:
    /// the "detailed model" here is a stub with real per-node counters.
    mod sctm_enoc_smoke {
        use super::*;

        struct Stubbed {
            stats: NetStats,
            queue: Vec<(SimTime, Message)>,
            busy: u64,
            now: SimTime,
        }

        impl NetworkModel for Stubbed {
            fn num_nodes(&self) -> usize {
                4
            }
            fn inject(&mut self, at: SimTime, msg: Message) {
                self.stats.injected += 1;
                self.queue.push((at + SimTime::from_ns(40), msg));
            }
            fn next_time(&self) -> Option<SimTime> {
                self.queue.iter().map(|(t, _)| *t).min()
            }
            fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
                self.now = self.now.max(t);
                let due: Vec<_> = {
                    let (due, keep) = std::mem::take(&mut self.queue)
                        .into_iter()
                        .partition(|(dt, _)| *dt <= t);
                    self.queue = keep;
                    due
                };
                for (dt, msg) in due {
                    self.busy += 500;
                    let d = Delivery {
                        msg,
                        injected_at: dt.saturating_since(SimTime::from_ns(40)),
                        delivered_at: dt,
                    };
                    self.stats.record_delivery(&d);
                    out.push(d);
                }
            }
            fn stats(&self) -> &NetStats {
                &self.stats
            }
            fn reset_stats(&mut self) {
                self.stats = NetStats::default();
            }
            fn label(&self) -> &'static str {
                "stub"
            }
            fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
                for node in 0..4 {
                    out.push(NodeObs {
                        node,
                        queue_depth: self.queue.len() as u64,
                        link_busy_ps: self.busy,
                    });
                }
            }
        }

        pub fn sampled_emesh_run() -> (Vec<Delivery>, SeriesStore) {
            let mut net = SampledNetwork::new(
                Box::new(Stubbed {
                    stats: NetStats::default(),
                    queue: Vec::new(),
                    busy: 0,
                    now: SimTime::ZERO,
                }),
                SimTime::from_ns(10),
            );
            for i in 0..40u64 {
                net.inject(SimTime::from_ns(i * 3), msg(i, (i % 4) as u32, 0));
            }
            let mut out = Vec::new();
            net.drain(&mut out);
            let (_, store) = net.into_parts();
            (out, store)
        }
    }
}
