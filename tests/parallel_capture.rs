//! Determinism contract of the epoch-parallel capture path: any thread
//! count must produce byte-identical traces and reports (PR4 tentpole).
//!
//! The parallel runner shards the CMP across worker threads with
//! conservative epoch barriers; these tests pin the user-visible
//! guarantee — `SCTM_THREADS` changes wall time, never results.

use sctm::prelude::*;

fn exp(kind: NetworkKind, kernel: Kernel) -> Experiment {
    Experiment::new(SystemConfig::new(4, kind), kernel).with_ops(200)
}

fn go(e: &Experiment, mode: Mode) -> RunReport {
    e.execute(&RunSpec::new(mode)).expect("valid spec").report
}

/// Debug-format a report with the host-dependent wall clock removed;
/// every simulated quantity must match exactly.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "mode={} net={} wl={} exec={:?} ctrl={:?} data={:?} msgs={} iters={:?}",
        r.mode,
        r.network,
        r.workload,
        r.exec_time,
        r.mean_lat_ctrl_ns.to_bits(),
        r.mean_lat_data_ns.to_bits(),
        r.messages,
        r.iterations,
    )
}

#[test]
fn capture_is_byte_identical_at_any_thread_count() {
    for kernel in Kernel::ALL {
        let seq = format!("{:?}", exp(NetworkKind::Omesh, kernel).capture());
        for threads in [2, 4, 8] {
            let par = format!(
                "{:?}",
                exp(NetworkKind::Omesh, kernel)
                    .with_capture_threads(threads)
                    .capture()
            );
            assert_eq!(
                seq,
                par,
                "{}: capture diverged at {} threads",
                kernel.label(),
                threads
            );
        }
    }
}

#[test]
fn self_correction_report_is_byte_identical_across_thread_counts() {
    for kind in NetworkKind::DETAILED {
        let mode = Mode::SelfCorrection { max_iters: 2 };
        let seq = go(&exp(kind, Kernel::Fft).with_capture_threads(1), mode);
        let par = go(&exp(kind, Kernel::Fft).with_capture_threads(4), mode);
        assert_eq!(
            fingerprint(&seq),
            fingerprint(&par),
            "{}: SelfCorrection report diverged between 1 and 4 capture threads",
            kind.label()
        );
    }
}

#[test]
fn all_modes_match_sequential_with_parallel_capture() {
    // Trace-driven modes all consume the capture; each must be immune
    // to the thread count. (ExecutionDriven ignores it by design.)
    for mode in [
        Mode::ClassicTrace,
        Mode::OracleTrace,
        Mode::SelfCorrection { max_iters: 1 },
    ] {
        let seq = go(
            &exp(NetworkKind::Hybrid, Kernel::Lu).with_capture_threads(1),
            mode,
        );
        let par = go(
            &exp(NetworkKind::Hybrid, Kernel::Lu).with_capture_threads(8),
            mode,
        );
        assert_eq!(fingerprint(&seq), fingerprint(&par), "{}", mode.label());
    }
}
