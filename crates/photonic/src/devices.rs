//! Photonic component models.
//!
//! Each component contributes optical insertion loss (dB) on the light
//! path and electrical power for its drive/tuning circuitry. Parameter
//! defaults follow the values commonly used in the 2010–2013 ONoC
//! literature (Corona, Firefly, FlexiShare, PhoenixSim/DSENT studies);
//! everything is configurable so experiment E7 can sweep them.

/// Decibel value (positive = loss).
pub type Db = f64;
/// Optical power in dBm.
pub type Dbm = f64;

/// Convert milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> Dbm {
    assert!(mw > 0.0, "dBm of non-positive power");
    10.0 * mw.log10()
}

/// Convert dBm to milliwatts.
pub fn dbm_to_mw(dbm: Dbm) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Straight + bent silicon waveguide segments.
#[derive(Clone, Copy, Debug)]
pub struct Waveguide {
    /// Propagation loss per centimetre.
    pub loss_db_per_cm: Db,
    /// Loss per 90° bend.
    pub bend_loss_db: Db,
    /// Loss per waveguide crossing.
    pub crossing_loss_db: Db,
    /// Group index (determines time of flight).
    pub group_index: f64,
}

impl Default for Waveguide {
    fn default() -> Self {
        Waveguide {
            loss_db_per_cm: 1.0,
            bend_loss_db: 0.005,
            crossing_loss_db: 0.05,
            group_index: 4.2,
        }
    }
}

impl Waveguide {
    /// Loss of a path with the given geometry.
    pub fn path_loss(&self, length_mm: f64, bends: u32, crossings: u32) -> Db {
        self.loss_db_per_cm * (length_mm / 10.0)
            + self.bend_loss_db * bends as f64
            + self.crossing_loss_db * crossings as f64
    }

    /// Time of flight over `length_mm`, in picoseconds.
    /// v = c / n_g;  c = 0.2998 mm/ps.
    pub fn tof_ps(&self, length_mm: f64) -> u64 {
        const C_MM_PER_PS: f64 = 0.299_792_458;
        (length_mm * self.group_index / C_MM_PER_PS).ceil() as u64
    }
}

/// Microring resonator used as modulator or drop filter.
#[derive(Clone, Copy, Debug)]
pub struct Microring {
    /// Loss through an on-resonance ring (modulator insertion / drop).
    pub drop_loss_db: Db,
    /// Loss passing an off-resonance ring on the same waveguide.
    pub through_loss_db: Db,
    /// Dynamic modulation energy, femtojoules per bit.
    pub modulation_fj_per_bit: f64,
    /// Static thermal trimming power per ring, microwatts.
    pub trimming_uw: f64,
}

impl Default for Microring {
    fn default() -> Self {
        Microring {
            drop_loss_db: 1.0,
            through_loss_db: 0.01,
            modulation_fj_per_bit: 85.0,
            trimming_uw: 20.0,
        }
    }
}

/// Germanium photodetector + receiver front-end.
#[derive(Clone, Copy, Debug)]
pub struct Photodetector {
    /// Minimum optical power for the target BER, dBm.
    pub sensitivity_dbm: Dbm,
    /// Receiver circuit energy, femtojoules per bit.
    pub rx_fj_per_bit: f64,
}

impl Default for Photodetector {
    fn default() -> Self {
        Photodetector {
            sensitivity_dbm: -20.0,
            rx_fj_per_bit: 50.0,
        }
    }
}

/// Off-chip comb laser feeding the chip through a coupler.
#[derive(Clone, Copy, Debug)]
pub struct Laser {
    /// Wall-plug efficiency (optical out / electrical in).
    pub efficiency: f64,
    /// Fibre-to-chip coupler loss.
    pub coupler_loss_db: Db,
}

impl Default for Laser {
    fn default() -> Self {
        Laser {
            efficiency: 0.3,
            coupler_loss_db: 1.0,
        }
    }
}

impl Laser {
    /// Electrical power (mW) needed so that `required_dbm_at_detector`
    /// arrives after `path_loss_db` of on-chip loss, per wavelength.
    pub fn electrical_mw_per_lambda(&self, path_loss_db: Db, required_dbm_at_detector: Dbm) -> f64 {
        let launch_dbm = required_dbm_at_detector + path_loss_db + self.coupler_loss_db;
        dbm_to_mw(launch_dbm) / self.efficiency
    }
}

/// A complete device kit — the process design kit for an architecture.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceKit {
    pub waveguide: Waveguide,
    pub ring: Microring,
    pub detector: Photodetector,
    pub laser: Laser,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_roundtrip() {
        for mw in [0.01, 0.5, 1.0, 10.0, 250.0] {
            let back = dbm_to_mw(mw_to_dbm(mw));
            assert!((back - mw).abs() / mw < 1e-12);
        }
        assert_eq!(mw_to_dbm(1.0), 0.0);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn dbm_of_zero_rejected() {
        mw_to_dbm(0.0);
    }

    #[test]
    fn waveguide_path_loss_adds_up() {
        let wg = Waveguide::default();
        let loss = wg.path_loss(20.0, 4, 10);
        // 2 cm * 1 dB + 4*0.005 + 10*0.05 = 2.52
        assert!((loss - 2.52).abs() < 1e-12);
        assert_eq!(wg.path_loss(0.0, 0, 0), 0.0);
    }

    #[test]
    fn time_of_flight_scale() {
        let wg = Waveguide::default();
        // 1 mm at n_g=4.2 → ~14 ps
        let t = wg.tof_ps(1.0);
        assert!((13..=15).contains(&t), "tof 1mm = {t} ps");
        // 20 mm die crossing → ~280 ps
        let t20 = wg.tof_ps(20.0);
        assert!((270..=290).contains(&t20), "tof 20mm = {t20} ps");
    }

    #[test]
    fn laser_power_grows_exponentially_with_loss() {
        let l = Laser::default();
        let p10 = l.electrical_mw_per_lambda(10.0, -20.0);
        let p20 = l.electrical_mw_per_lambda(20.0, -20.0);
        assert!((p20 / p10 - 10.0).abs() < 1e-9, "10 dB = 10x power");
        // sanity magnitude: 10 dB loss, -20 dBm sensitivity, 1 dB coupler,
        // 30% efficiency → 10^(-0.9)/0.3 ≈ 0.42 mW
        assert!((p10 - dbm_to_mw(-9.0) / 0.3).abs() < 1e-9);
    }

    #[test]
    fn default_kit_is_physically_plausible() {
        let kit = DeviceKit::default();
        assert!(kit.waveguide.loss_db_per_cm > 0.0);
        assert!(kit.ring.through_loss_db < kit.ring.drop_loss_db);
        assert!(kit.detector.sensitivity_dbm < 0.0);
        assert!(kit.laser.efficiency > 0.0 && kit.laser.efficiency < 1.0);
    }
}
