//! A fast, deterministic hasher for interior hash maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs real time on the
//! simulator's hottest maps (directory state, in-flight transactions),
//! whose keys are line addresses we generate ourselves — there is no
//! untrusted input to defend against. This is the Fx multiply-rotate
//! scheme (as used by rustc): a few ALU ops per word, identical results
//! on every host, and no per-process seed, so map *behavior* (though
//! never observable iteration order — see the callers) is reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over native words; see module docs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(0xdead_beef), h(0xdead_beef));
        assert_ne!(h(1), h(2));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 0x9e37_79b9, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 0x9e37_79b9)), Some(&i));
        }
    }
}
