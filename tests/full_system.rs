//! Cross-crate integration: every workload kernel on every interconnect,
//! end to end through the public API.

use sctm::prelude::*;
use sctm_engine::time::SimTime;

fn exp(kind: NetworkKind, kernel: Kernel) -> Experiment {
    Experiment::new(SystemConfig::new(4, kind), kernel).with_ops(250)
}

fn go(e: &Experiment, mode: Mode) -> RunReport {
    e.execute(&RunSpec::new(mode)).expect("valid spec").report
}

#[test]
fn every_kernel_runs_on_every_network() {
    for kernel in Kernel::ALL {
        for kind in NetworkKind::DETAILED {
            let r = go(&exp(kind, kernel), Mode::ExecutionDriven);
            assert!(
                r.exec_time > SimTime::from_us(1),
                "{}/{}: exec time {} too small",
                kernel.label(),
                kind.label(),
                r.exec_time
            );
            assert!(
                r.messages > 500,
                "{}/{}: {} messages",
                kernel.label(),
                kind.label(),
                r.messages
            );
            assert!(r.mean_lat_data_ns > 0.0);
        }
    }
}

#[test]
fn execution_is_deterministic_across_repeats() {
    for kind in NetworkKind::DETAILED {
        let a = go(&exp(kind, Kernel::Canneal), Mode::ExecutionDriven);
        let b = go(&exp(kind, Kernel::Canneal), Mode::ExecutionDriven);
        assert_eq!(a.exec_time, b.exec_time, "{}", kind.label());
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.mean_lat_data_ns, b.mean_lat_data_ns);
    }
}

#[test]
fn network_choice_changes_the_answer() {
    // The whole point of ONoC simulation: interconnects disagree.
    let times: Vec<u64> = NetworkKind::DETAILED
        .iter()
        .map(|&k| {
            go(&exp(k, Kernel::Fft), Mode::ExecutionDriven)
                .exec_time
                .as_ps()
        })
        .collect();
    assert!(
        times.windows(2).any(|w| w[0] != w[1]),
        "all interconnects produced identical timing: {times:?}"
    );
}

#[test]
fn seeds_change_stochastic_workloads_but_not_structure() {
    let a = go(
        &exp(NetworkKind::Emesh, Kernel::Barnes).with_seed(1),
        Mode::ExecutionDriven,
    );
    let b = go(
        &exp(NetworkKind::Emesh, Kernel::Barnes).with_seed(2),
        Mode::ExecutionDriven,
    );
    assert_ne!(a.exec_time, b.exec_time, "seed had no effect");
    // Same order of magnitude though.
    let ratio = a.exec_time.as_ps() as f64 / b.exec_time.as_ps() as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "seeds changed workload scale: {ratio}"
    );
}

#[test]
fn headline_claim_sctm_accurate_and_reasonably_fast() {
    // The paper's abstract, as a test: "high precision, while not
    // substantially extending the total simulation time" (vs the
    // baseline NoC simulator).
    let omesh = exp(NetworkKind::Omesh, Kernel::Fft);
    let reference = go(&omesh, Mode::ExecutionDriven);
    let sctm = go(&omesh, Mode::SelfCorrection { max_iters: 4 });
    let baseline = go(&exp(NetworkKind::Emesh, Kernel::Fft), Mode::ExecutionDriven);

    let acc = accuracy(&sctm, &reference);
    assert!(
        acc.exec_time_err_pct < 8.0,
        "precision: {:.1}%",
        acc.exec_time_err_pct
    );
    let vs_baseline = sctm.wall.as_secs_f64() / baseline.wall.as_secs_f64();
    assert!(
        vs_baseline < 10.0,
        "simulation time blew up {vs_baseline:.1}x vs the baseline simulator"
    );
}

#[test]
fn trace_modes_agree_with_execution_on_message_population() {
    let e = exp(NetworkKind::Oxbar, Kernel::Lu);
    let reference = go(&e, Mode::ExecutionDriven);
    let log = e.capture();
    // Same deterministic workload: capture and execution-driven see
    // populations of the same order (timing shifts protocol details
    // slightly, so exact equality is not expected).
    let ratio = log.len() as f64 / reference.messages as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "message population ratio {ratio}"
    );
}

#[test]
fn wide_sharing_at_64_cores_does_not_deadlock() {
    // Regression: an Inv reaching a stale sharer whose re-request was
    // queued behind the invalidating transaction used to deadlock the
    // directory (grant-in-flight vs queued-request deferral ambiguity).
    // streamcluster's centre lines are shared by all 64 cores and
    // rewritten by the master every phase — the worst case.
    let e = Experiment::new(
        SystemConfig::new(8, NetworkKind::Emesh),
        Kernel::Streamcluster,
    )
    .with_ops(150);
    let r = go(&e, Mode::ExecutionDriven);
    assert!(r.messages > 10_000);
    assert!(r.exec_time > SimTime::ZERO);
}

#[test]
fn online_mode_beats_uncorrected_analytic_estimate() {
    let e = exp(NetworkKind::Oxbar, Kernel::Fft);
    let reference = go(&e, Mode::ExecutionDriven);
    // Uncorrected analytic estimate = the capture's own exec time.
    let log = e.capture();
    let uncorrected_err = sctm_engine::stats::rel_err_pct(
        log.capture_exec_time.as_ps() as f64,
        reference.exec_time.as_ps() as f64,
    );
    let online = go(
        &e,
        Mode::Online {
            epoch: SimTime::from_us(2),
        },
    );
    let online_err = accuracy(&online, &reference).exec_time_err_pct;
    assert!(
        online_err < uncorrected_err + 1.0,
        "online ({online_err:.1}%) worse than never correcting ({uncorrected_err:.1}%)"
    );
}
