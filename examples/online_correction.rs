//! The online self-correction variant (experiment E9): run the
//! full-system simulation against the analytic model while a shadow
//! detailed network corrects it epoch by epoch — no offline trace pass.
//!
//! ```text
//! cargo run --release --example online_correction
//! ```

use sctm::engine::table::{fnum, Table};
use sctm::engine::time::SimTime;
use sctm::prelude::*;

fn main() {
    let exp = Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Fft).with_ops(600);

    eprintln!("running the execution-driven reference...");
    let reference = exp
        .execute(&RunSpec::exec_driven())
        .expect("valid spec")
        .report;

    let mut t = Table::new(
        "Online epoch correction: accuracy vs epoch length",
        &["epoch", "exec time", "err %", "wall (ms)"],
    );
    for epoch_us in [1u64, 2, 5, 10, 20] {
        let r = exp
            .execute(&RunSpec::online(SimTime::from_us(epoch_us)))
            .expect("valid spec")
            .report;
        t.row(&[
            format!("{epoch_us} us"),
            r.exec_time.to_string(),
            fnum(accuracy(&r, &reference).exec_time_err_pct),
            fnum(r.wall.as_secs_f64() * 1e3),
        ]);
    }
    t.row(&[
        "(reference)".into(),
        reference.exec_time.to_string(),
        "0".into(),
        fnum(reference.wall.as_secs_f64() * 1e3),
    ]);
    println!("{}", t.render());
    println!(
        "shorter epochs feed corrections back sooner (usually lower error, more\n\
         shadow replays) — but per-pair factors also absorb transient contention,\n\
         so the trend is workload-dependent; see EXPERIMENTS.md E9 for discussion."
    );
}
