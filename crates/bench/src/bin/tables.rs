//! Regenerate every table/figure of the evaluation.
//!
//! ```text
//! tables                 # all experiments, quick scale
//! tables --full          # paper scale (minutes)
//! tables --exp e3 e7     # a subset
//! tables --csv           # machine-readable output as well
//! ```

use sctm_bench::{run_experiment, Scale, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let wanted: Vec<String> = {
        let mut w = Vec::new();
        let mut take = false;
        for a in &args {
            if a == "--exp" {
                take = true;
            } else if a.starts_with("--") {
                take = false;
            } else if take {
                w.push(a.to_lowercase());
            }
        }
        w
    };
    let scale = if full { Scale::Full } else { Scale::Quick };
    eprintln!(
        "# SCTM evaluation — scale: {scale:?} ({} cores flagship)",
        scale.side() * scale.side()
    );
    let t0 = std::time::Instant::now();
    for id in EXPERIMENT_IDS {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let te = std::time::Instant::now();
        let table = run_experiment(id, scale).unwrap();
        println!("{}", table.render());
        if csv {
            println!("# CSV {id}\n{}", table.to_csv());
        }
        eprintln!("# {id} done in {:.1}s", te.elapsed().as_secs_f64());
    }
    eprintln!("# total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
