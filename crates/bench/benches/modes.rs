//! End-to-end cost of each simulation mode (the wall-time axis of
//! E2/E5): execution-driven co-simulation on each network vs the full
//! self-correction loop vs classic trace capture+replay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_core::{Experiment, NetworkKind, RunSpec, SystemConfig};
use sctm_engine::time::SimTime;
use sctm_workloads::Kernel;

fn exp(kind: NetworkKind) -> Experiment {
    Experiment::new(SystemConfig::new(4, kind), Kernel::Fft).with_ops(300)
}

fn go(e: &Experiment, spec: &RunSpec) -> sctm_core::RunReport {
    e.execute(spec).expect("valid spec").report
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation_mode_fft16");
    g.bench_function(BenchmarkId::from_parameter("exec_omesh"), |b| {
        b.iter(|| black_box(go(&exp(NetworkKind::Omesh), &RunSpec::exec_driven()).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("exec_emesh_baseline"), |b| {
        b.iter(|| black_box(go(&exp(NetworkKind::Emesh), &RunSpec::exec_driven()).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("sctm_loop_omesh"), |b| {
        b.iter(|| black_box(go(&exp(NetworkKind::Omesh), &RunSpec::self_correction(3)).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("classic_trace_omesh"), |b| {
        b.iter(|| black_box(go(&exp(NetworkKind::Omesh), &RunSpec::classic()).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("online_omesh_5us"), |b| {
        b.iter(|| {
            black_box(
                go(
                    &exp(NetworkKind::Omesh),
                    &RunSpec::online(SimTime::from_us(5)),
                )
                .exec_time,
            )
        })
    });
    g.finish();
}

fn bench_capture_64(c: &mut Criterion) {
    // The PR4 target workload: capture and the full self-correction
    // loop on a 64-core fft, sequential vs epoch-parallel capture.
    let exp64 = |threads: usize| {
        Experiment::new(SystemConfig::new(8, NetworkKind::Omesh), Kernel::Fft)
            .with_ops(300)
            .with_capture_threads(threads)
    };
    let mut g = c.benchmark_group("capture_fft64");
    for threads in [1usize, 2, 4] {
        g.bench_function(
            BenchmarkId::from_parameter(format!("capture_t{threads}")),
            |b| b.iter(|| black_box(exp64(threads).capture().records.len())),
        );
    }
    g.bench_function(BenchmarkId::from_parameter("sctm_loop_omesh_t1"), |b| {
        b.iter(|| black_box(go(&exp64(1), &RunSpec::self_correction(4)).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("sctm_loop_omesh_t4"), |b| {
        b.iter(|| black_box(go(&exp64(4), &RunSpec::self_correction(4)).exec_time))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modes, bench_capture_64
}
criterion_main!(benches);
