//! Incremental self-correction replay (PR6): dirty-frontier replay
//! with epoch checkpoints vs the from-scratch loop.
//!
//! `spliced` is the incremental engine's best case — with damping off
//! and the factor-movement exit disabled, iterations 2..N see inputs
//! identical to iteration 1 and splice the previous result without
//! re-simulating. `full` is the identical workload with the engine
//! disabled; `damped` is the default damped loop, where consecutive
//! captures genuinely differ and the engine's job is to cost ~nothing
//! on top of full replay (checkpoint recording is skipped once a
//! length change is detected).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_core::{Experiment, NetworkKind, RunSpec, SystemConfig};
use sctm_workloads::Kernel;

fn exp() -> Experiment {
    Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Fft)
        .with_ops(300)
        .with_capture_threads(1)
}

fn go(e: &Experiment, spec: &RunSpec) -> sctm_core::RunReport {
    e.execute(spec).expect("valid spec").report
}

fn splice_spec(incremental: bool) -> RunSpec {
    RunSpec::self_correction(4)
        .with_damping(0.0)
        .with_factor_epsilon(0.0)
        .with_incremental(incremental)
}

fn bench_incr(c: &mut Criterion) {
    let mut g = c.benchmark_group("incr_replay_fft16");
    g.bench_function(BenchmarkId::from_parameter("full_t1"), |b| {
        b.iter(|| black_box(go(&exp(), &splice_spec(false)).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("spliced_t1"), |b| {
        b.iter(|| black_box(go(&exp(), &splice_spec(true)).exec_time))
    });
    g.bench_function(BenchmarkId::from_parameter("damped_t1"), |b| {
        b.iter(|| {
            black_box(go(&exp(), &RunSpec::self_correction(4).with_incremental(true)).exec_time)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_incr
}
criterion_main!(benches);
