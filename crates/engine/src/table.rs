//! Paper-style table rendering.
//!
//! The bench harness prints every reproduced table/figure as an aligned
//! ASCII table plus a machine-readable CSV line per row, so results can
//! be both eyeballed and post-processed.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Shorter rows are padded with empty cells; longer
    /// rows panic, because that is always a harness bug.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but table '{}' has {} columns",
            cells.len(),
            self.title,
            self.headers.len()
        );
        let mut r = cells.to_vec();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 3 * ncol + 1;
        let _ = writeln!(out, "{}", "=".repeat(total));
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "-".repeat(total));
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "| {h:<w$} ");
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "| {c:<w$} ");
            }
            line.push('|');
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "{}", "=".repeat(total));
        out
    }

    /// Render as CSV (header line + rows), suitable for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", csv_row(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", csv_row(row));
        }
        out
    }
}

/// Join cells into a CSV line, quoting cells that contain separators.
pub fn csv_row<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| {
            let c = c.as_ref();
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Format a float with a sensible number of digits for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.1 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yyyy".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| x    | 1    |"));
        assert!(s.contains("| yyyy | 2    |"));
        assert!(s.contains("T\n"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(&["1".into()]);
        assert_eq!(t.n_rows(), 1);
        assert!(t.render().contains("| 1 |"));
    }

    #[test]
    #[should_panic(expected = "has 3 columns")]
    fn rejects_long_rows() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(&["1".into(), "2".into(), "3".into(), "4".into()]);
    }

    #[test]
    fn csv_quotes_specials() {
        assert_eq!(csv_row(&["a", "b,c", "d\"e"]), "a,\"b,c\",\"d\"\"e\"");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("T", &["h1", "h2"]);
        t.row(&["1".into(), "2".into()]);
        let csv = t.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines, vec!["h1,h2", "1,2"]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1.234), "1.23");
        assert_eq!(fnum(0.01234), "0.0123");
    }
}
