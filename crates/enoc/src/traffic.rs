//! Synthetic traffic patterns and the open-loop measurement harness.
//!
//! Network-validation experiments (E6) and the trace-model sensitivity
//! study (E8) drive interconnects with the classic synthetic patterns
//! from the NoC literature. The harness is generic over
//! [`NetworkModel`], so the same workload runs unchanged on the
//! electrical mesh and both optical architectures.

use sctm_engine::net::{Message, MsgClass, MsgId, NetworkModel, NodeId};
use sctm_engine::rng::StreamRng;
use sctm_engine::stats::Running;
use sctm_engine::time::{Freq, SimTime};

/// Destination selection pattern.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Pattern {
    /// Uniform random over all other nodes.
    Uniform,
    /// `(x, y) → (y, x)`; requires a square node count.
    Transpose,
    /// Bitwise complement of the node index.
    BitComplement,
    /// Bit-reversed node index.
    BitReverse,
    /// A fraction `frac` of traffic goes to `node`, rest uniform.
    Hotspot { node: u32, frac: f64 },
    /// Right neighbour in the same row (short-distance traffic).
    Neighbor,
    /// Half-way around the ring in X (adversarial for torus DOR).
    Tornado,
}

impl Pattern {
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Transpose => "transpose",
            Pattern::BitComplement => "bitcomp",
            Pattern::BitReverse => "bitrev",
            Pattern::Hotspot { .. } => "hotspot",
            Pattern::Neighbor => "neighbor",
            Pattern::Tornado => "tornado",
        }
    }

    /// Pick a destination for `src` under this pattern.
    pub fn dest(&self, src: NodeId, nodes: usize, width: usize, rng: &mut StreamRng) -> NodeId {
        let n = nodes as u64;
        let s = src.0 as u64;
        let d = match *self {
            Pattern::Uniform => {
                let mut d = rng.below(n);
                if d == s {
                    d = (d + 1) % n;
                }
                d
            }
            Pattern::Transpose => {
                let w = width as u64;
                let (x, y) = (s % w, s / w);
                x * w + y
            }
            Pattern::BitComplement => (!s) & (n - 1),
            Pattern::BitReverse => {
                let bits = n.trailing_zeros();
                let mut r = 0u64;
                for b in 0..bits {
                    if s & (1 << b) != 0 {
                        r |= 1 << (bits - 1 - b);
                    }
                }
                r
            }
            Pattern::Hotspot { node, frac } => {
                if rng.chance(frac) && node as u64 != s {
                    node as u64
                } else {
                    let mut d = rng.below(n);
                    if d == s {
                        d = (d + 1) % n;
                    }
                    d
                }
            }
            Pattern::Neighbor => {
                let w = width as u64;
                let (x, y) = (s % w, s / w);
                y * w + (x + 1) % w
            }
            Pattern::Tornado => {
                let w = width as u64;
                let (x, y) = (s % w, s / w);
                y * w + (x + w / 2) % w
            }
        };
        let d = if d == s { (d + 1) % n } else { d };
        NodeId(d as u32)
    }
}

/// Open-loop workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    pub pattern: Pattern,
    /// Probability a node starts a new message per network cycle.
    pub msg_rate: f64,
    /// Fraction of messages that are cache-line-sized data.
    pub data_fraction: f64,
    /// Payload bytes for control / data messages.
    pub ctrl_bytes: u32,
    pub data_bytes: u32,
    /// Burstiness ≥ 1: 1 = smooth Bernoulli; k = on/off process that is
    /// ON 1/k of the time injecting at k× the rate (mean preserved).
    pub burstiness: f64,
    /// Mean burst length in cycles while ON.
    pub burst_len: f64,
    /// Warmup before statistics count.
    pub warmup: SimTime,
    /// Measurement window after warmup.
    pub measure: SimTime,
    /// Clock used to convert `msg_rate` per-cycle into times.
    pub clock: Freq,
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            pattern: Pattern::Uniform,
            msg_rate: 0.02,
            data_fraction: 0.5,
            ctrl_bytes: 8,
            data_bytes: 64,
            burstiness: 1.0,
            burst_len: 8.0,
            warmup: SimTime::from_us(2),
            measure: SimTime::from_us(10),
            clock: Freq::from_ghz(2),
            seed: 1,
        }
    }
}

/// One measured operating point.
#[derive(Clone, Copy, Debug)]
pub struct LoadLatencyPoint {
    /// Offered load in messages/node/cycle.
    pub offered: f64,
    /// Fraction of injected (post-warmup) messages actually delivered
    /// within the drain budget; < 1 indicates saturation.
    pub delivered_frac: f64,
    /// Mean end-to-end message latency in ns (delivered messages only).
    pub avg_latency_ns: f64,
    pub p99_latency_ns: f64,
    /// Accepted throughput in messages/node/cycle.
    pub throughput: f64,
}

/// Drives a [`NetworkModel`] with synthetic traffic and measures the
/// load-latency operating point.
pub struct TrafficRunner {
    cfg: TrafficConfig,
}

impl TrafficRunner {
    pub fn new(cfg: TrafficConfig) -> Self {
        assert!(cfg.msg_rate > 0.0 && cfg.msg_rate <= 1.0);
        assert!((0.0..=1.0).contains(&cfg.data_fraction));
        assert!(cfg.burstiness >= 1.0);
        TrafficRunner { cfg }
    }

    /// Generate the injection schedule for one node.
    fn node_schedule(
        &self,
        node: NodeId,
        nodes: usize,
        width: usize,
        horizon_cycles: u64,
        rng: &mut StreamRng,
        sink: &mut Vec<(SimTime, NodeId, NodeId, MsgClass, u32)>,
    ) {
        let c = &self.cfg;
        let on_rate = (c.msg_rate * c.burstiness).min(1.0);
        let mut cycle = 0u64;
        let mut on = c.burstiness <= 1.0 || rng.chance(1.0 / c.burstiness);
        // Mean OFF period keeping duty cycle = 1/burstiness.
        let off_len = c.burst_len * (c.burstiness - 1.0);
        while cycle < horizon_cycles {
            if c.burstiness > 1.0 {
                // Advance the on/off state machine.
                if on {
                    if rng.chance(1.0 / c.burst_len) {
                        on = false;
                    }
                } else if rng.chance(1.0 / off_len.max(1.0)) {
                    on = true;
                }
            }
            if on && rng.chance(on_rate) {
                let dst = c.pattern.dest(node, nodes, width, rng);
                let (class, bytes) = if rng.chance(c.data_fraction) {
                    (MsgClass::Data, c.data_bytes)
                } else {
                    (MsgClass::Control, c.ctrl_bytes)
                };
                sink.push((c.clock.cycles(cycle), node, dst, class, bytes));
            }
            cycle += 1;
        }
    }

    /// Run the workload on `net` and measure.
    ///
    /// `width` is the mesh width used by geometric patterns (pass the
    /// topology width; for non-mesh networks pass `sqrt(nodes)`).
    pub fn run(&self, net: &mut dyn NetworkModel, width: usize) -> LoadLatencyPoint {
        let c = &self.cfg;
        let nodes = net.num_nodes();
        let root = StreamRng::new(c.seed);
        let horizon = c.warmup + c.measure;
        let horizon_cycles = horizon.as_ps() / c.clock.period().as_ps();

        // Build the full injection schedule, deterministically per node.
        let mut sched = Vec::new();
        for i in 0..nodes {
            let mut rng = root.stream("traffic", i as u64);
            self.node_schedule(
                NodeId(i as u32),
                nodes,
                width,
                horizon_cycles,
                &mut rng,
                &mut sched,
            );
        }
        sched.sort_by_key(|&(t, src, ..)| (t, src.0));

        let mut next_id = 0u64;
        let mut measured_ids_start = u64::MAX;
        for &(t, src, dst, class, bytes) in &sched {
            let id = next_id;
            next_id += 1;
            if t >= c.warmup && measured_ids_start == u64::MAX {
                measured_ids_start = id;
            }
            net.inject(
                t,
                Message {
                    id: MsgId(id),
                    src,
                    dst,
                    class,
                    bytes,
                },
            );
        }
        let measured_injected = if measured_ids_start == u64::MAX {
            0
        } else {
            next_id - measured_ids_start
        };

        // Advance through the horizon, then allow a bounded drain.
        let mut deliveries = Vec::new();
        net.advance_until(horizon, &mut deliveries);
        let drain_budget = horizon + c.measure; // same again
        while let Some(t) = net.next_time() {
            if t > drain_budget {
                break;
            }
            net.advance_until(t, &mut deliveries);
        }

        let mut lat = Running::new();
        let mut lat_ns: Vec<f64> = Vec::new();
        let mut measured_delivered = 0u64;
        for d in &deliveries {
            if d.msg.id.0 >= measured_ids_start {
                measured_delivered += 1;
                let l = d.latency().as_ns_f64();
                lat.push(l);
                lat_ns.push(l);
            }
        }
        lat_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = if lat_ns.is_empty() {
            0.0
        } else {
            lat_ns[((lat_ns.len() - 1) as f64 * 0.99) as usize]
        };
        let measure_cycles = c.measure.as_ps() / c.clock.period().as_ps();
        LoadLatencyPoint {
            offered: c.msg_rate,
            delivered_frac: if measured_injected == 0 {
                1.0
            } else {
                measured_delivered as f64 / measured_injected as f64
            },
            avg_latency_ns: lat.mean(),
            p99_latency_ns: p99,
            throughput: measured_delivered as f64 / (measure_cycles as f64 * nodes as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NocConfig, NocSim};
    use crate::topology::Topology;

    #[test]
    fn patterns_stay_in_range_and_avoid_self() {
        let mut rng = StreamRng::new(3);
        let patterns = [
            Pattern::Uniform,
            Pattern::Transpose,
            Pattern::BitComplement,
            Pattern::BitReverse,
            Pattern::Hotspot { node: 5, frac: 0.3 },
            Pattern::Neighbor,
            Pattern::Tornado,
        ];
        for p in patterns {
            for s in 0..64u32 {
                for _ in 0..8 {
                    let d = p.dest(NodeId(s), 64, 8, &mut rng);
                    assert!(d.idx() < 64, "{p:?} out of range");
                    assert_ne!(d, NodeId(s), "{p:?} self-send from {s}");
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = StreamRng::new(1);
        let p = Pattern::Transpose;
        for s in 0..16u32 {
            let d = p.dest(NodeId(s), 16, 4, &mut rng);
            if d != NodeId(s) {
                let back = p.dest(d, 16, 4, &mut rng);
                // transpose(transpose(s)) == s, unless remapped off-diagonal
                let (x, y) = (s % 4, s / 4);
                if x != y {
                    assert_eq!(back, NodeId(s));
                }
            }
        }
    }

    #[test]
    fn bitreverse_examples() {
        let mut rng = StreamRng::new(1);
        // 16 nodes: 4 bits. 0b0001 -> 0b1000
        assert_eq!(
            Pattern::BitReverse.dest(NodeId(1), 16, 4, &mut rng),
            NodeId(8)
        );
        assert_eq!(
            Pattern::BitComplement.dest(NodeId(0), 16, 4, &mut rng),
            NodeId(15)
        );
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = StreamRng::new(5);
        let p = Pattern::Hotspot { node: 3, frac: 0.5 };
        let hits = (0..1000)
            .filter(|_| p.dest(NodeId(0), 16, 4, &mut rng) == NodeId(3))
            .count();
        assert!(hits > 400, "hotspot hits only {hits}/1000");
    }

    #[test]
    fn low_load_runs_near_zero_load_latency() {
        let cfg = NocConfig {
            topology: Topology::mesh(4, 4),
            ..NocConfig::default()
        };
        let mut net = NocSim::new(cfg);
        let t = TrafficConfig {
            msg_rate: 0.005,
            warmup: SimTime::from_us(1),
            measure: SimTime::from_us(4),
            ..TrafficConfig::default()
        };
        let pt = TrafficRunner::new(t).run(&mut net, 4);
        assert!(
            pt.delivered_frac > 0.99,
            "lost traffic at 0.5% load: {pt:?}"
        );
        assert!(pt.avg_latency_ns > 0.0);
        // Average hop count ~2.67, ~6 cycles zero-load + serialization;
        // anything above 50 ns at this load means congestion collapse.
        assert!(pt.avg_latency_ns < 50.0, "latency {} ns", pt.avg_latency_ns);
    }

    #[test]
    fn latency_rises_with_load() {
        let run_at = |rate: f64| {
            let cfg = NocConfig {
                topology: Topology::mesh(4, 4),
                ..NocConfig::default()
            };
            let mut net = NocSim::new(cfg);
            let t = TrafficConfig {
                msg_rate: rate,
                warmup: SimTime::from_us(1),
                measure: SimTime::from_us(4),
                ..TrafficConfig::default()
            };
            TrafficRunner::new(t).run(&mut net, 4)
        };
        let low = run_at(0.005);
        let high = run_at(0.08);
        assert!(
            high.avg_latency_ns > low.avg_latency_ns,
            "latency did not rise: low={} high={}",
            low.avg_latency_ns,
            high.avg_latency_ns
        );
    }

    #[test]
    fn saturation_shows_as_lost_delivery_fraction_or_high_latency() {
        let cfg = NocConfig {
            topology: Topology::mesh(4, 4),
            ..NocConfig::default()
        };
        let mut net = NocSim::new(cfg);
        let t = TrafficConfig {
            msg_rate: 0.5,
            data_fraction: 1.0,
            warmup: SimTime::from_us(1),
            measure: SimTime::from_us(3),
            ..TrafficConfig::default()
        };
        let pt = TrafficRunner::new(t).run(&mut net, 4);
        assert!(
            pt.delivered_frac < 0.999 || pt.avg_latency_ns > 100.0,
            "network absorbed saturation load implausibly: {pt:?}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = NocConfig {
                topology: Topology::mesh(4, 4),
                ..NocConfig::default()
            };
            let mut net = NocSim::new(cfg);
            let t = TrafficConfig {
                msg_rate: 0.03,
                warmup: SimTime::from_us(1),
                measure: SimTime::from_us(2),
                ..TrafficConfig::default()
            };
            let p = TrafficRunner::new(t).run(&mut net, 4);
            (p.avg_latency_ns, p.throughput, p.delivered_frac)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn adaptive_routing_competitive_under_transpose() {
        // Transpose concentrates traffic on the diagonal; minimal
        // adaptive routing must at least match deterministic XY within
        // a modest margin (and both must deliver everything).
        let run_with = |routing| {
            let cfg = NocConfig {
                topology: Topology::mesh(4, 4),
                routing,
                ..NocConfig::default()
            };
            let mut net = NocSim::new(cfg);
            let t = TrafficConfig {
                pattern: Pattern::Transpose,
                msg_rate: 0.06,
                warmup: SimTime::from_us(1),
                measure: SimTime::from_us(5),
                ..TrafficConfig::default()
            };
            TrafficRunner::new(t).run(&mut net, 4)
        };
        let xy = run_with(crate::topology::Routing::XY);
        let oe = run_with(crate::topology::Routing::OddEven);
        assert!(xy.delivered_frac > 0.95 && oe.delivered_frac > 0.95);
        assert!(
            oe.avg_latency_ns < xy.avg_latency_ns * 1.5,
            "odd-even collapsed under transpose: {} vs {}",
            oe.avg_latency_ns,
            xy.avg_latency_ns
        );
    }

    #[test]
    fn bursty_traffic_has_higher_latency_than_smooth() {
        let run_with = |burstiness: f64| {
            let cfg = NocConfig {
                topology: Topology::mesh(4, 4),
                ..NocConfig::default()
            };
            let mut net = NocSim::new(cfg);
            let t = TrafficConfig {
                msg_rate: 0.05,
                burstiness,
                warmup: SimTime::from_us(1),
                measure: SimTime::from_us(5),
                ..TrafficConfig::default()
            };
            TrafficRunner::new(t).run(&mut net, 4)
        };
        let smooth = run_with(1.0);
        let bursty = run_with(8.0);
        assert!(
            bursty.p99_latency_ns > smooth.p99_latency_ns,
            "bursty p99 {} <= smooth p99 {}",
            bursty.p99_latency_ns,
            smooth.p99_latency_ns
        );
    }
}
