//! Trace persistence: capture once, save to disk, reload, and replay
//! the same trace against several target networks — the workflow the
//! trace model exists for (the capture is the expensive part).
//!
//! ```text
//! cargo run --release --example trace_reuse
//! ```

use sctm::engine::table::{fnum, Table};
use sctm::prelude::*;
use sctm::trace::replay_sctm_pass;

fn main() {
    let exp =
        Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Barnes).with_ops(500);

    // 1. One full-system capture on the analytic model...
    eprintln!("capturing...");
    let t0 = std::time::Instant::now();
    let log = exp.capture();
    eprintln!(
        "captured {} messages in {:?} (exec time {})",
        log.len(),
        t0.elapsed(),
        log.capture_exec_time
    );

    // 2. ...saved as a self-describing CSV...
    let path = std::env::temp_dir().join("sctm_barnes_16c.trace.csv");
    log.save(&path).expect("save trace");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "saved to {} ({:.1} MiB)",
        path.display(),
        bytes as f64 / (1 << 20) as f64
    );

    // 3. ...reloaded (possibly by another process, days later)...
    let log = TraceLog::load(&path).expect("load trace");

    // 4. ...and replayed against every detailed interconnect.
    let mut t = Table::new(
        "One capture, five targets (self-correcting replay)",
        &[
            "target",
            "est exec time",
            "mean data lat (ns)",
            "replay wall (ms)",
        ],
    );
    for kind in NetworkKind::DETAILED {
        let t0 = std::time::Instant::now();
        let mut net = SystemConfig::make_network_kind(4, kind);
        let r = replay_sctm_pass(&log, net.as_mut());
        t.row(&[
            kind.label().to_string(),
            r.est_exec_time.to_string(),
            fnum(r.mean_latency_ns(&log, Some(sctm::engine::net::MsgClass::Data))),
            fnum(t0.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    let _ = std::fs::remove_file(path);
}
