//! Mesh / torus topology and routing functions.
//!
//! Coordinates are `(x, y)` with node id `y * width + x`; port order is
//! fixed (N, E, S, W, Local) and iterated in that order everywhere, which
//! is part of the determinism contract.

use sctm_engine::net::NodeId;

/// Router port indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Port {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    Local = 4,
}

pub const NUM_PORTS: usize = 5;
/// The four direction ports, in fixed iteration order.
pub const DIRS: [Port; 4] = [Port::North, Port::East, Port::South, Port::West];

impl Port {
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    pub fn from_idx(i: usize) -> Port {
        match i {
            0 => Port::North,
            1 => Port::East,
            2 => Port::South,
            3 => Port::West,
            4 => Port::Local,
            _ => panic!("bad port index {i}"),
        }
    }

    /// The port on the neighbouring router that this port's link feeds.
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
            Port::Local => Port::Local,
        }
    }
}

/// Routing algorithm selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Dimension-order, X first. Deadlock-free on mesh; on torus it is
    /// combined with dateline VC switching (see `dateline_crossed`).
    XY,
    /// Dimension-order, Y first.
    YX,
    /// Odd-even turn model, minimal adaptive (mesh only).
    OddEven,
}

/// A rectangular mesh or torus.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    pub width: usize,
    pub height: usize,
    pub torus: bool,
}

impl Topology {
    pub fn mesh(width: usize, height: usize) -> Self {
        assert!(
            width >= 2 && height >= 1,
            "degenerate mesh {width}x{height}"
        );
        Topology {
            width,
            height,
            torus: false,
        }
    }

    pub fn torus(width: usize, height: usize) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "degenerate torus {width}x{height}"
        );
        Topology {
            width,
            height,
            torus: true,
        }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    #[inline]
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        let i = n.idx();
        debug_assert!(i < self.num_nodes());
        (i % self.width, i / self.width)
    }

    #[inline]
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height);
        NodeId((y * self.width + x) as u32)
    }

    /// Neighbour of `n` through direction port `p`, if the link exists.
    pub fn neighbor(&self, n: NodeId, p: Port) -> Option<NodeId> {
        let (x, y) = self.coords(n);
        let (w, h) = (self.width, self.height);
        let (nx, ny) = match p {
            Port::North => {
                if y == 0 {
                    if self.torus {
                        (x, h - 1)
                    } else {
                        return None;
                    }
                } else {
                    (x, y - 1)
                }
            }
            Port::South => {
                if y + 1 == h {
                    if self.torus {
                        (x, 0)
                    } else {
                        return None;
                    }
                } else {
                    (x, y + 1)
                }
            }
            Port::West => {
                if x == 0 {
                    if self.torus {
                        (w - 1, y)
                    } else {
                        return None;
                    }
                } else {
                    (x - 1, y)
                }
            }
            Port::East => {
                if x + 1 == w {
                    if self.torus {
                        (0, y)
                    } else {
                        return None;
                    }
                } else {
                    (x + 1, y)
                }
            }
            Port::Local => return None,
        };
        Some(self.node_at(nx, ny))
    }

    /// Minimal hop distance.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        if self.torus {
            dx.min(self.width - dx) + dy.min(self.height - dy)
        } else {
            dx + dy
        }
    }

    /// Which direction X-dimension-order routing takes next (shortest way
    /// around on a torus; ties go East/South to stay deterministic).
    fn x_dir(&self, from_x: usize, to_x: usize) -> Option<Port> {
        if from_x == to_x {
            return None;
        }
        if !self.torus {
            return Some(if to_x > from_x {
                Port::East
            } else {
                Port::West
            });
        }
        let right = (to_x + self.width - from_x) % self.width;
        let left = (from_x + self.width - to_x) % self.width;
        Some(if right <= left {
            Port::East
        } else {
            Port::West
        })
    }

    fn y_dir(&self, from_y: usize, to_y: usize) -> Option<Port> {
        if from_y == to_y {
            return None;
        }
        if !self.torus {
            return Some(if to_y > from_y {
                Port::South
            } else {
                Port::North
            });
        }
        let down = (to_y + self.height - from_y) % self.height;
        let up = (from_y + self.height - to_y) % self.height;
        Some(if down <= up { Port::South } else { Port::North })
    }

    /// Deterministic output port for dimension-order routing.
    pub fn route_dor(&self, here: NodeId, dst: NodeId, y_first: bool) -> Port {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if here == dst {
            return Port::Local;
        }
        if y_first {
            self.y_dir(hy, dy)
                .or_else(|| self.x_dir(hx, dx))
                .unwrap_or(Port::Local)
        } else {
            self.x_dir(hx, dx)
                .or_else(|| self.y_dir(hy, dy))
                .unwrap_or(Port::Local)
        }
    }

    /// Candidate output ports under the odd-even turn model (minimal,
    /// mesh only). Always returns at least one port, and every returned
    /// port makes progress toward `dst`.
    ///
    /// Odd-even restrictions (Chiu 2000): in even columns no East→North /
    /// East→South turns *end* (equivalently: a packet may not turn from
    /// East... the usual formulation): EN/ES turns are forbidden in even
    /// columns, NW/SW turns are forbidden in odd columns. The practical
    /// encoding below follows the canonical implementation: west-bound
    /// traffic must finish its Y movement before moving west of the
    /// destination column region, etc.
    pub fn route_odd_even(&self, here: NodeId, src: NodeId, dst: NodeId) -> Vec<Port> {
        assert!(!self.torus, "odd-even routing is defined for meshes");
        if here == dst {
            return vec![Port::Local];
        }
        let (cx, cy) = self.coords(here);
        let (sx, _sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let ex = dx as isize - cx as isize;
        let ey = dy as isize - cy as isize;
        let mut avail = Vec::with_capacity(2);
        if ex == 0 {
            // Only Y movement remains.
            avail.push(if ey > 0 { Port::South } else { Port::North });
        } else if ex > 0 {
            // East-bound.
            if ey == 0 {
                avail.push(Port::East);
            } else {
                // EN/ES turns happen at the *next* column; they are
                // allowed only when that column is odd, i.e. turning out
                // of east in an even column is forbidden => may go east
                // only if dx is odd column or more than one column away.
                if cx % 2 == 1 || cx == sx {
                    avail.push(if ey > 0 { Port::South } else { Port::North });
                }
                if dx as isize - cx as isize != 1 || dx % 2 == 1 {
                    avail.push(Port::East);
                }
                if avail.is_empty() {
                    avail.push(if ey > 0 { Port::South } else { Port::North });
                }
            }
        } else {
            // West-bound: NW/SW turns forbidden in odd columns — take Y
            // movement only in even columns.
            if ey != 0 && cx % 2 == 0 {
                avail.push(if ey > 0 { Port::South } else { Port::North });
            }
            avail.push(Port::West);
        }
        avail
    }

    /// True when the hop `here → next` through `p` crosses a wrap-around
    /// link (torus dateline) in its dimension. Packets switch to the
    /// escape VC class after crossing, which breaks the ring cycle.
    pub fn dateline_crossed(&self, here: NodeId, p: Port) -> bool {
        if !self.torus {
            return false;
        }
        let (x, y) = self.coords(here);
        match p {
            Port::East => x + 1 == self.width,
            Port::West => x == 0,
            Port::South => y + 1 == self.height,
            Port::North => y == 0,
            Port::Local => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Topology::mesh(4, 4);
        for i in 0..16u32 {
            let (x, y) = t.coords(NodeId(i));
            assert_eq!(t.node_at(x, y), NodeId(i));
        }
    }

    #[test]
    fn mesh_neighbors_and_edges() {
        let t = Topology::mesh(4, 4);
        assert_eq!(t.neighbor(NodeId(0), Port::North), None);
        assert_eq!(t.neighbor(NodeId(0), Port::West), None);
        assert_eq!(t.neighbor(NodeId(0), Port::East), Some(NodeId(1)));
        assert_eq!(t.neighbor(NodeId(0), Port::South), Some(NodeId(4)));
        assert_eq!(t.neighbor(NodeId(5), Port::North), Some(NodeId(1)));
        assert_eq!(t.neighbor(NodeId(15), Port::East), None);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.neighbor(NodeId(0), Port::North), Some(NodeId(12)));
        assert_eq!(t.neighbor(NodeId(0), Port::West), Some(NodeId(3)));
        assert_eq!(t.neighbor(NodeId(15), Port::East), Some(NodeId(12)));
        assert_eq!(t.neighbor(NodeId(15), Port::South), Some(NodeId(3)));
    }

    #[test]
    fn opposite_ports_pair_up() {
        let t = Topology::mesh(3, 3);
        for n in 0..9u32 {
            for p in DIRS {
                if let Some(m) = t.neighbor(NodeId(n), p) {
                    assert_eq!(t.neighbor(m, p.opposite()), Some(NodeId(n)));
                }
            }
        }
    }

    #[test]
    fn hops_mesh_vs_torus() {
        let mesh = Topology::mesh(8, 8);
        let torus = Topology::torus(8, 8);
        let a = NodeId(0);
        let b = NodeId(7); // same row, opposite corner
        assert_eq!(mesh.hops(a, b), 7);
        assert_eq!(torus.hops(a, b), 1);
        assert_eq!(mesh.hops(a, a), 0);
    }

    #[test]
    fn dor_reaches_destination() {
        for topo in [Topology::mesh(5, 4), Topology::torus(4, 4)] {
            for s in 0..topo.num_nodes() as u32 {
                for d in 0..topo.num_nodes() as u32 {
                    let (src, dst) = (NodeId(s), NodeId(d));
                    let mut here = src;
                    let mut steps = 0;
                    loop {
                        let p = topo.route_dor(here, dst, false);
                        if p == Port::Local {
                            break;
                        }
                        here = topo.neighbor(here, p).expect("DOR picked a dead port");
                        steps += 1;
                        assert!(steps <= topo.num_nodes(), "DOR loop {src}->{dst}");
                    }
                    assert_eq!(here, dst);
                    assert_eq!(steps, topo.hops(src, dst), "DOR not minimal {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn dor_yx_reaches_destination() {
        let topo = Topology::mesh(4, 4);
        for s in 0..16u32 {
            for d in 0..16u32 {
                let mut here = NodeId(s);
                let mut steps = 0;
                while here != NodeId(d) {
                    let p = topo.route_dor(here, NodeId(d), true);
                    here = topo.neighbor(here, p).unwrap();
                    steps += 1;
                    assert!(steps <= 32);
                }
                assert_eq!(steps, topo.hops(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn odd_even_always_makes_progress() {
        let topo = Topology::mesh(6, 6);
        for s in 0..36u32 {
            for d in 0..36u32 {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId(s), NodeId(d));
                // Follow every branch greedily (first candidate) and
                // check progress + arrival.
                let mut here = src;
                let mut steps = 0;
                while here != dst {
                    let cands = topo.route_odd_even(here, src, dst);
                    assert!(!cands.is_empty());
                    for &c in &cands {
                        let next = topo.neighbor(here, c).expect("odd-even picked dead port");
                        assert_eq!(
                            topo.hops(next, dst),
                            topo.hops(here, dst) - 1,
                            "non-minimal candidate {src}->{dst} at {here}"
                        );
                    }
                    here = topo.neighbor(here, cands[0]).unwrap();
                    steps += 1;
                    assert!(steps <= 64, "odd-even loop {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn dateline_only_on_wraps() {
        let torus = Topology::torus(4, 4);
        assert!(torus.dateline_crossed(NodeId(3), Port::East));
        assert!(!torus.dateline_crossed(NodeId(2), Port::East));
        assert!(torus.dateline_crossed(NodeId(0), Port::West));
        assert!(torus.dateline_crossed(NodeId(0), Port::North));
        assert!(torus.dateline_crossed(NodeId(12), Port::South));
        let mesh = Topology::mesh(4, 4);
        assert!(!mesh.dateline_crossed(NodeId(3), Port::East));
    }
}
