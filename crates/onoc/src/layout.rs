//! Physical layout shared by the optical architectures.
//!
//! Converts logical topology distances into millimetres of waveguide,
//! and builds the worst-case [`OpticalPath`] inventories that feed the
//! photonic loss/power solver (experiment E7).

use sctm_engine::net::NodeId;
use sctm_photonic::{ChannelPlan, DeviceKit, LinkBudget, OpticalPath};

/// Die floorplan for a tiled CMP.
#[derive(Clone, Copy, Debug)]
pub struct Floorplan {
    /// Tiles per mesh edge (mesh width == height).
    pub side: usize,
    /// Centre-to-centre tile pitch in millimetres.
    pub tile_pitch_mm: f64,
}

impl Floorplan {
    pub fn new(side: usize, tile_pitch_mm: f64) -> Self {
        assert!(side >= 2);
        assert!(tile_pitch_mm > 0.0);
        Floorplan {
            side,
            tile_pitch_mm,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.side * self.side
    }

    /// Manhattan waveguide distance between two tiles, mm.
    pub fn mesh_distance_mm(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = (a.idx() % self.side, a.idx() / self.side);
        let (bx, by) = (b.idx() % self.side, b.idx() / self.side);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as f64 * self.tile_pitch_mm
    }

    /// Distance along the serpentine crossbar waveguide from node
    /// position `from` to `to` (the waveguide snake visits every tile
    /// once; light travels one way around).
    pub fn serpentine_distance_mm(&self, from: NodeId, to: NodeId) -> f64 {
        let n = self.num_nodes();
        let d = (to.idx() + n - from.idx()) % n;
        d as f64 * self.tile_pitch_mm
    }

    /// Full serpentine length, mm.
    pub fn serpentine_length_mm(&self) -> f64 {
        (self.num_nodes() - 1) as f64 * self.tile_pitch_mm
    }

    /// Worst-case optical path for the circuit-switched photonic mesh:
    /// corner-to-corner Manhattan route passing a ring switch per hop.
    pub fn omesh_worst_path(&self) -> OpticalPath {
        let hops = 2 * (self.side - 1);
        OpticalPath {
            length_mm: hops as f64 * self.tile_pitch_mm,
            // One 90° turn at the XY corner plus NI bends at both ends.
            bends: 4,
            // Mesh waveguides cross at every tile the path passes.
            crossings: hops as u32,
            // Each intermediate router parks its switching rings
            // off-resonance on the through path.
            rings_passed: (hops as u32).saturating_sub(1) * 2,
            // Source modulator bank + destination drop filter.
            rings_used: 2,
        }
    }

    /// Worst-case path for the MWSR crossbar: all the way around the
    /// serpentine, passing every other writer's modulator.
    ///
    /// Per *wavelength*: each writer parks one ring tuned to each λ on
    /// the bus, but light of wavelength k only sees the rings tuned to
    /// k — so the worst path passes `N−2` off-resonance rings, not the
    /// whole `(N−2)·λ` bank (that classic overcount explodes the loss
    /// budget by ~40 dB at 64 nodes).
    pub fn oxbar_worst_path(&self, _lambdas: u32) -> OpticalPath {
        let n = self.num_nodes() as u32;
        OpticalPath {
            length_mm: self.serpentine_length_mm(),
            bends: (self.side as u32).saturating_sub(1) * 2,
            crossings: 0,
            rings_passed: n - 2,
            rings_used: 2,
        }
    }

    /// Link-budget solver for the photonic mesh.
    pub fn omesh_budget(&self, kit: DeviceKit, plan: ChannelPlan) -> LinkBudget {
        let n = self.num_nodes() as u64;
        LinkBudget {
            kit,
            worst_path: self.omesh_worst_path(),
            lambdas: plan.lambdas,
            gbps_per_lambda: plan.gbps_per_lambda,
            // Per tile: modulator bank + drop bank + 4 switch rings.
            total_rings: n * (2 * plan.lambdas as u64 + 4),
            // One powered waveguide per mesh row and column.
            waveguides: (2 * self.side) as u32,
        }
    }

    /// Link-budget solver for the MWSR crossbar.
    pub fn oxbar_budget(&self, kit: DeviceKit, plan: ChannelPlan) -> LinkBudget {
        let n = self.num_nodes() as u64;
        LinkBudget {
            kit,
            worst_path: self.oxbar_worst_path(plan.lambdas),
            lambdas: plan.lambdas,
            gbps_per_lambda: plan.gbps_per_lambda,
            // Each of the N home channels has a modulator bank at every
            // other node plus one drop bank: N * (N-1+1) * λ rings.
            total_rings: n * n * plan.lambdas as u64,
            // One home-channel waveguide per destination.
            waveguides: n as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Floorplan {
        Floorplan::new(8, 2.5)
    }

    #[test]
    fn mesh_distance() {
        let f = fp();
        assert_eq!(f.mesh_distance_mm(NodeId(0), NodeId(0)), 0.0);
        // 0 -> 63: corner to corner = 14 hops * 2.5mm
        assert!((f.mesh_distance_mm(NodeId(0), NodeId(63)) - 35.0).abs() < 1e-12);
        assert!((f.mesh_distance_mm(NodeId(0), NodeId(1)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn serpentine_wraps_one_way() {
        let f = fp();
        assert!((f.serpentine_distance_mm(NodeId(0), NodeId(1)) - 2.5).abs() < 1e-12);
        // going "backwards" means almost all the way around
        assert!((f.serpentine_distance_mm(NodeId(1), NodeId(0)) - 63.0 * 2.5).abs() < 1e-12);
        assert!((f.serpentine_length_mm() - 157.5).abs() < 1e-12);
    }

    #[test]
    fn worst_paths_have_sane_loss() {
        let f = fp();
        let kit = DeviceKit::default();
        let mesh_loss = f.omesh_worst_path().insertion_loss_db(&kit);
        assert!(
            mesh_loss > 2.0 && mesh_loss < 25.0,
            "omesh loss {mesh_loss}"
        );
        let xbar_loss = f.oxbar_worst_path(64).insertion_loss_db(&kit);
        assert!(xbar_loss > 5.0, "oxbar loss {xbar_loss}");
        // The crossbar's full-serpentine propagation dominates: it must
        // lose more than the short Manhattan mesh path.
        assert!(xbar_loss > mesh_loss);
    }

    #[test]
    fn budgets_power_ordering() {
        let f = fp();
        let kit = DeviceKit::default();
        let plan = ChannelPlan::default();
        let omesh = f.omesh_budget(kit, plan);
        let oxbar = f.oxbar_budget(kit, plan);
        // Corona-style crossbar burns far more static power (N
        // waveguides, N² ring banks) than the circuit-switched mesh.
        assert!(oxbar.power(0.1).total_mw() > omesh.power(0.1).total_mw());
    }

    #[test]
    fn ring_counts_scale() {
        let f = Floorplan::new(4, 2.5);
        let plan = ChannelPlan {
            lambdas: 16,
            gbps_per_lambda: 10.0,
        };
        let b = f.oxbar_budget(DeviceKit::default(), plan);
        assert_eq!(b.total_rings, 16 * 16 * 16);
    }
}
