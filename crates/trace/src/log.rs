//! Trace log format and capture.
//!
//! A [`TraceLog`] is everything the trace model knows about one
//! execution-driven run: per message — endpoints, size/class, capture
//! injection & delivery times, *full* causal dependencies (which the
//! capture instrumentation can see because it lives inside the
//! full-system simulator), and per-endpoint program order.
//!
//! The replay engines deliberately use different *subsets* of this
//! knowledge (see `replay.rs`): the classic trace model uses only
//! timestamps; the paper's self-correction model uses timestamps +
//! per-endpoint order + the arrival-gating heuristic; the oracle replay
//! uses the full dependency DAG. Capturing everything once and
//! down-sampling knowledge per engine is what makes the accuracy
//! comparison (experiment E3) apples-to-apples.

use sctm_cmp::protocol::{InjectRecord, TraceHook};
use sctm_engine::net::{Message, MsgId};
use sctm_engine::time::SimTime;

/// One message in the trace.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub msg: Message,
    /// Capture-time injection instant.
    pub t_inject: SimTime,
    /// Capture-time delivery instant.
    pub t_deliver: SimTime,
    /// Deliveries whose completion enabled this injection.
    pub deps: Vec<MsgId>,
    /// Previous message injected by the same source node.
    pub prev_same_src: Option<MsgId>,
    /// Protocol kind label (diagnostics only).
    pub kind: &'static str,
}

/// A complete captured trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Indexed by dense message id (`MsgId(i)` ↔ `records[i]`).
    pub records: Vec<TraceRecord>,
    /// Label of the network the capture ran on.
    pub capture_net: &'static str,
    /// Execution time of the capture run (set by the caller).
    pub capture_exec_time: SimTime,
}

impl TraceLog {
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    #[inline]
    pub fn rec(&self, id: MsgId) -> &TraceRecord {
        &self.records[id.0 as usize]
    }

    /// Latest capture delivery instant (used to translate replay
    /// deliveries into an execution-time estimate).
    pub fn last_delivery(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.t_deliver)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Sanity-check structural invariants; returns a human-readable
    /// error instead of panicking so property tests can assert on it.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if r.msg.id.0 as usize != i {
                return Err(format!("record {i} has id {:?}", r.msg.id));
            }
            if r.t_deliver < r.t_inject {
                return Err(format!("msg {i} delivered before injection"));
            }
            for d in &r.deps {
                if d.0 as usize >= self.records.len() {
                    return Err(format!("msg {i} depends on unknown {d:?}"));
                }
                let dep = self.rec(*d);
                if dep.t_deliver > r.t_inject {
                    return Err(format!(
                        "msg {i} injected at {:?} before its dep {d:?} delivered at {:?}",
                        r.t_inject, dep.t_deliver
                    ));
                }
            }
            if let Some(p) = r.prev_same_src {
                let prev = self.rec(p);
                if prev.msg.src != r.msg.src {
                    return Err(format!("msg {i} prev_same_src from a different node"));
                }
                // Note: prev_same_src is *decision* order, not timestamp
                // order — a node can commit to a far-future send (e.g. a
                // memory response) before deciding a nearer-term one, so
                // no t_inject monotonicity is required here. Replay
                // engines use the time-sorted `per_source_order`.
            }
        }
        Ok(())
    }

    /// For each message, the id of the *most recent delivery to its
    /// source node* at or before its injection — the arrival-gating
    /// relation the self-correction model pairs departures with. `None`
    /// when the node had received nothing yet.
    ///
    /// This is exactly the knowledge a network-level trace gives you
    /// without protocol instrumentation: you can see what arrived at a
    /// node before it transmitted, but not *which* arrival caused what.
    pub fn arrival_gates(&self) -> Vec<Option<MsgId>> {
        let mut gates = Vec::new();
        self.arrival_gates_into(&mut gates, &mut Vec::new(), &mut Vec::new());
        gates
    }

    /// [`TraceLog::arrival_gates`] writing into caller-owned buffers, so
    /// a replay loop can recompute the gating every pass without
    /// reallocating its event list (`2 × len` entries) each time.
    /// `events` and `last_arrival` are pure scratch; all three buffers
    /// are cleared and resized here.
    pub fn arrival_gates_into(
        &self,
        gates: &mut Vec<Option<MsgId>>,
        events: &mut Vec<(SimTime, bool, u64)>,
        last_arrival: &mut Vec<Option<MsgId>>,
    ) {
        let mut nodes: usize = 0;
        for r in &self.records {
            nodes = nodes.max(r.msg.src.idx() + 1).max(r.msg.dst.idx() + 1);
        }
        // Events per node: (time, is_departure, msg index), processed in
        // capture time order; ties put arrivals first so a departure at
        // the same instant sees the arrival.
        events.clear();
        events.reserve(self.records.len() * 2);
        for r in &self.records {
            events.push((r.t_inject, true, r.msg.id.0));
            events.push((r.t_deliver, false, r.msg.id.0));
        }
        // Each (is_departure, id) pair occurs exactly once, so the full
        // key is unique and the unstable sort is order-equivalent.
        events.sort_unstable_by_key(|&(t, dep, id)| (t, dep, id));
        last_arrival.clear();
        last_arrival.resize(nodes, None);
        gates.clear();
        gates.resize(self.records.len(), None);
        for &(_, is_dep, id) in events.iter() {
            let r = &self.records[id as usize];
            if is_dep {
                gates[id as usize] = last_arrival[r.msg.src.idx()];
            } else {
                last_arrival[r.msg.dst.idx()] = Some(MsgId(id));
            }
        }
    }

    /// Message ids grouped by source node, in injection order.
    pub fn per_source_order(&self) -> Vec<Vec<MsgId>> {
        let mut nodes: usize = 0;
        for r in &self.records {
            nodes = nodes.max(r.msg.src.idx() + 1);
        }
        let mut order: Vec<Vec<MsgId>> = vec![Vec::new(); nodes];
        let mut idx: Vec<_> = (0..self.records.len()).collect();
        // (t_inject, i) is unique per record → unstable sort is exact.
        idx.sort_unstable_by_key(|&i| (self.records[i].t_inject, i));
        for i in idx {
            order[self.records[i].msg.src.idx()].push(MsgId(i as u64));
        }
        order
    }
}

/// Capture hook: plugs into `CmpSim::run` and builds a [`TraceLog`].
#[derive(Debug, Default)]
pub struct Capture {
    log: TraceLog,
}

impl Capture {
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish capture. `net_label` and `exec_time` come from the run.
    pub fn finish(mut self, net_label: &'static str, exec_time: SimTime) -> TraceLog {
        self.log.capture_net = net_label;
        self.log.capture_exec_time = exec_time;
        self.log
    }
}

impl TraceHook for Capture {
    fn on_inject(&mut self, rec: InjectRecord) {
        debug_assert_eq!(
            rec.msg.id.0 as usize,
            self.log.records.len(),
            "capture assumes dense sequential message ids"
        );
        self.log.records.push(TraceRecord {
            msg: rec.msg,
            t_inject: rec.at,
            t_deliver: SimTime::MAX,
            deps: rec.deps,
            prev_same_src: rec.prev_same_src,
            kind: rec.kind,
        });
    }

    fn on_deliver(&mut self, id: MsgId, at: SimTime) {
        self.log.records[id.0 as usize].t_deliver = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgClass, NodeId};

    fn mk_rec(id: u64, src: u32, dst: u32, inj: u64, del: u64, deps: Vec<u64>) -> TraceRecord {
        TraceRecord {
            msg: Message {
                id: MsgId(id),
                src: NodeId(src),
                dst: NodeId(dst),
                class: MsgClass::Control,
                bytes: 8,
            },
            t_inject: SimTime::from_ps(inj),
            t_deliver: SimTime::from_ps(del),
            deps: deps.into_iter().map(MsgId).collect(),
            prev_same_src: None,
            kind: "test",
        }
    }

    fn tiny_log() -> TraceLog {
        // 0: n0→n1 at 0..100; 1: n1→n0 at 150..250 (dep 0); 2: n0→n1 at
        // 300..400 (dep 1).
        TraceLog {
            records: vec![
                mk_rec(0, 0, 1, 0, 100, vec![]),
                mk_rec(1, 1, 0, 150, 250, vec![0]),
                mk_rec(2, 0, 1, 300, 400, vec![1]),
            ],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(500),
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(tiny_log().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_causality_violation() {
        let mut log = tiny_log();
        log.records[2].t_inject = SimTime::from_ps(200); // before dep 1 delivers at 250
        assert!(log.validate().is_err());
    }

    #[test]
    fn validate_rejects_delivery_before_injection() {
        let mut log = tiny_log();
        log.records[0].t_deliver = SimTime::from_ps(0);
        log.records[0].t_inject = SimTime::from_ps(10);
        assert!(log.validate().is_err());
    }

    #[test]
    fn arrival_gates_pair_departures_with_latest_arrival() {
        let log = tiny_log();
        let gates = log.arrival_gates();
        assert_eq!(gates[0], None, "first departure had no arrivals");
        assert_eq!(gates[1], Some(MsgId(0)), "n1's reply gated by msg 0");
        assert_eq!(gates[2], Some(MsgId(1)), "n0's next gated by msg 1");
    }

    #[test]
    fn arrival_gates_tie_arrival_first() {
        // Arrival and departure at the same instant: departure sees it.
        let log = TraceLog {
            records: vec![
                mk_rec(0, 0, 1, 0, 100, vec![]),
                mk_rec(1, 1, 0, 100, 200, vec![0]),
            ],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(200),
        };
        assert_eq!(log.arrival_gates()[1], Some(MsgId(0)));
    }

    #[test]
    fn per_source_order_sorted_by_injection() {
        let log = TraceLog {
            records: vec![
                mk_rec(0, 0, 1, 500, 600, vec![]),
                mk_rec(1, 0, 1, 100, 200, vec![]),
                mk_rec(2, 1, 0, 50, 80, vec![]),
            ],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(600),
        };
        let order = log.per_source_order();
        assert_eq!(order[0], vec![MsgId(1), MsgId(0)]);
        assert_eq!(order[1], vec![MsgId(2)]);
    }

    #[test]
    fn capture_hook_roundtrip() {
        let mut cap = Capture::new();
        let msg = Message {
            id: MsgId(0),
            src: NodeId(0),
            dst: NodeId(1),
            class: MsgClass::Data,
            bytes: 72,
        };
        cap.on_inject(InjectRecord {
            msg,
            at: SimTime::from_ps(10),
            deps: vec![],
            prev_same_src: None,
            kind: "GetS",
        });
        cap.on_deliver(MsgId(0), SimTime::from_ps(90));
        let log = cap.finish("emesh", SimTime::from_ps(100));
        assert_eq!(log.len(), 1);
        assert_eq!(log.rec(MsgId(0)).t_deliver, SimTime::from_ps(90));
        assert_eq!(log.capture_net, "emesh");
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn last_delivery() {
        assert_eq!(tiny_log().last_delivery(), SimTime::from_ps(400));
        assert_eq!(TraceLog::default().last_delivery(), SimTime::ZERO);
    }
}
