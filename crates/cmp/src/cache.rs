//! Set-associative tag store with true-LRU replacement.
//!
//! Used for both private L1s and the shared L2 slices. Only tags and
//! per-line metadata are modelled — the simulator never materialises
//! data bytes, because no experiment depends on values, only on timing
//! and coherence traffic.

/// A cache line address: byte address with the offset bits stripped.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineAddr(pub u64);

/// Cache line size in bytes, fixed across the hierarchy.
pub const LINE_BYTES: u64 = 64;

impl LineAddr {
    #[inline]
    pub fn of_byte(addr: u64) -> LineAddr {
        LineAddr(addr / LINE_BYTES)
    }
}

/// Geometry of one cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheGeometry {
    pub sets: usize,
    pub ways: usize,
}

impl CacheGeometry {
    /// Build from a total capacity in bytes and associativity.
    pub fn from_capacity(bytes: usize, ways: usize) -> Self {
        assert!(ways >= 1);
        let lines = bytes / LINE_BYTES as usize;
        assert!(lines >= ways, "capacity below one set");
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} not a power of two"
        );
        CacheGeometry { sets, ways }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES as usize
    }
}

#[derive(Clone, Copy, Debug)]
struct Way<M> {
    tag: u64,
    lru: u64,
    meta: M,
    valid: bool,
}

/// Result of a fill that displaced a victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim<M> {
    pub line: LineAddr,
    pub meta: M,
}

/// Set-associative tag array with per-line metadata `M`.
#[derive(Debug)]
pub struct Cache<M: Copy + Default> {
    geo: CacheGeometry,
    ways: Vec<Way<M>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<M: Copy + Default> Cache<M> {
    pub fn new(geo: CacheGeometry) -> Self {
        Cache {
            geo,
            ways: vec![
                Way {
                    tag: 0,
                    lru: 0,
                    meta: M::default(),
                    valid: false
                };
                geo.sets * geo.ways
            ],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.geo.sets - 1)
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let s = self.set_of(line) * self.geo.ways;
        s..s + self.geo.ways
    }

    /// Probe without touching LRU or hit/miss counters.
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        self.ways[self.set_range(line)]
            .iter()
            .find(|w| w.valid && w.tag == line.0)
            .map(|w| &w.meta)
    }

    /// Look up `line`, updating LRU and counters. Returns the metadata
    /// on a hit.
    pub fn access(&mut self, line: LineAddr) -> Option<&mut M> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let hit = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == line.0);
        match hit {
            Some(w) => {
                w.lru = tick;
                self.hits += 1;
                Some(&mut w.meta)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `line` with `meta`, evicting the LRU way if the set is
    /// full. Returns the victim, if any. `line` must not be present.
    pub fn fill(&mut self, line: LineAddr, meta: M) -> Option<Victim<M>> {
        debug_assert!(self.peek(line).is_none(), "fill of resident line");
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.ways[range];
        // Prefer an invalid way.
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag: line.0,
                lru: tick,
                meta,
                valid: true,
            };
            return None;
        }
        let w = set
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("cache sets have at least one way by construction");
        let victim = Victim {
            line: LineAddr(w.tag),
            meta: w.meta,
        };
        *w = Way {
            tag: line.0,
            lru: tick,
            meta,
            valid: true,
        };
        Some(victim)
    }

    /// Remove `line` if present, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<M> {
        let range = self.set_range(line);
        self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == line.0)
            .map(|w| {
                w.valid = false;
                w.meta
            })
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of valid lines (for occupancy checks in tests).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Visit every resident line (used by coherence-invariant checks).
    pub fn for_each_line(&self, mut f: impl FnMut(LineAddr, &M)) {
        for w in &self.ways {
            if w.valid {
                f(LineAddr(w.tag), &w.meta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache<u8> {
        // 4 sets × 2 ways
        Cache::new(CacheGeometry { sets: 4, ways: 2 })
    }

    #[test]
    fn geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(32 * 1024, 4);
        assert_eq!(g.sets, 128);
        assert_eq!(g.ways, 4);
        assert_eq!(g.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_odd_sets() {
        CacheGeometry::from_capacity(3 * 1024, 4);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let l = LineAddr(0x40);
        assert!(c.access(l).is_none());
        assert!(c.fill(l, 7).is_none());
        assert_eq!(c.access(l).copied(), Some(7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        let (a, b, x) = (LineAddr(0), LineAddr(4), LineAddr(8));
        c.fill(a, 1);
        c.fill(b, 2);
        c.access(a); // a is now MRU
        let v = c.fill(x, 3).expect("set full, someone must go");
        assert_eq!(v.line, b, "LRU line was b");
        assert_eq!(v.meta, 2);
        assert!(c.peek(a).is_some());
        assert!(c.peek(b).is_none());
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c = small();
        c.fill(LineAddr(0), 1);
        c.fill(LineAddr(4), 2);
        assert_eq!(c.invalidate(LineAddr(0)), Some(1));
        assert_eq!(c.invalidate(LineAddr(0)), None);
        // Now a fill must use the freed way, not evict.
        assert!(c.fill(LineAddr(8), 3).is_none());
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        // 3 lines in different sets never evict each other.
        c.fill(LineAddr(0), 0);
        c.fill(LineAddr(1), 1);
        c.fill(LineAddr(2), 2);
        c.fill(LineAddr(3), 3);
        assert_eq!(c.occupancy(), 4);
        for i in 0..4u64 {
            assert!(c.peek(LineAddr(i)).is_some());
        }
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = small();
        let (a, b, x) = (LineAddr(0), LineAddr(4), LineAddr(8));
        c.fill(a, 1);
        c.fill(b, 2);
        c.peek(a); // must NOT refresh a
                   // LRU order is still a then b.
        let v = c.fill(x, 3).unwrap();
        assert_eq!(v.line, a);
    }

    #[test]
    fn metadata_is_mutable_through_access() {
        let mut c = small();
        c.fill(LineAddr(0), 1);
        *c.access(LineAddr(0)).unwrap() = 42;
        assert_eq!(c.peek(LineAddr(0)).copied(), Some(42));
    }

    #[test]
    fn line_addr_of_byte() {
        assert_eq!(LineAddr::of_byte(0), LineAddr(0));
        assert_eq!(LineAddr::of_byte(63), LineAddr(0));
        assert_eq!(LineAddr::of_byte(64), LineAddr(1));
        assert_eq!(LineAddr::of_byte(6400), LineAddr(100));
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = Cache::new(CacheGeometry { sets: 8, ways: 2 });
        for i in 0..1000u64 {
            let line = LineAddr(i * 7 % 97);
            if c.access(line).is_none() {
                c.fill(line, 0u8);
            }
            assert!(
                c.occupancy() <= 16,
                "occupancy {} > capacity",
                c.occupancy()
            );
        }
    }

    #[test]
    fn working_set_within_ways_never_misses_after_warmup() {
        // Two lines per set, 2 ways: a working set of exactly the
        // associativity must stay resident forever.
        let mut c = Cache::new(CacheGeometry { sets: 4, ways: 2 });
        let ws = [LineAddr(0), LineAddr(4)]; // same set, 2 ways
        for l in ws {
            c.fill(l, 0u8);
        }
        let misses_before = c.misses();
        for _ in 0..100 {
            for l in ws {
                assert!(c.access(l).is_some());
            }
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(LineAddr(0));
        c.fill(LineAddr(0), 0);
        c.access(LineAddr(0));
        c.access(LineAddr(0));
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
