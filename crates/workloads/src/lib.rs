//! # sctm-workloads — application communication skeletons
//!
//! Deterministic stand-ins for the SPLASH-2/PARSEC-class programs the
//! paper runs on its full-system simulator (DESIGN.md §5). Each kernel
//! reproduces the *network-visible* structure of its namesake — sharing
//! pattern, phase/barrier rhythm, read/write mix, burstiness — as an
//! explicit per-core op script over a shared address space:
//!
//! | kernel | namesake | communication structure |
//! |---|---|---|
//! | [`Kernel::Fft`] | SPLASH-2 fft | all-to-all butterfly exchanges, barrier per stage |
//! | [`Kernel::Lu`] | SPLASH-2 lu | broadcast of a pivot block, barrier per step |
//! | [`Kernel::Barnes`] | SPLASH-2 barnes | irregular Zipf-skewed tree reads, sparse writes |
//! | [`Kernel::Streamcluster`] | PARSEC streamcluster | hot read-shared centres, master updates |
//! | [`Kernel::Canneal`] | PARSEC canneal | random pairwise ownership migration |
//! | [`Kernel::Blackscholes`] | PARSEC blackscholes | embarrassingly parallel, private streaming (control case) |
//!
//! Scripts are fully materialised at construction from a seed, so every
//! simulation mode (execution-driven on any network, trace capture,
//! replay) sees the identical instruction stream.

use sctm_cmp::protocol::{Op, Workload};
use sctm_cmp::LINE_BYTES;
use sctm_engine::rng::StreamRng;
use std::collections::VecDeque;

/// Base byte address of the shared region (line 0).
pub const SHARED_BASE: u64 = 0;
/// Base of per-core private regions.
pub const PRIVATE_BASE: u64 = 0x1_0000_0000;
/// Bytes reserved per core in the private region.
pub const PRIVATE_STRIDE: u64 = 0x10_0000;

#[inline]
fn shared(line: u64) -> u64 {
    SHARED_BASE + line * LINE_BYTES
}

#[inline]
fn private(core: usize, line: u64) -> u64 {
    PRIVATE_BASE + core as u64 * PRIVATE_STRIDE + line * LINE_BYTES
}

/// Which application skeleton to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kernel {
    Fft,
    Lu,
    Barnes,
    Streamcluster,
    Canneal,
    /// PARSEC blackscholes stand-in: embarrassingly parallel, almost no
    /// sharing — the control case where even the classic trace model
    /// should do fine (extension kernel).
    Blackscholes,
}

impl Kernel {
    pub const ALL: [Kernel; 6] = [
        Kernel::Fft,
        Kernel::Lu,
        Kernel::Barnes,
        Kernel::Streamcluster,
        Kernel::Canneal,
        Kernel::Blackscholes,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Kernel::Fft => "fft",
            Kernel::Lu => "lu",
            Kernel::Barnes => "barnes",
            Kernel::Streamcluster => "streamcluster",
            Kernel::Canneal => "canneal",
            Kernel::Blackscholes => "blackscholes",
        }
    }
}

/// Sizing knobs shared by all kernels.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    pub cores: usize,
    /// Approximate script length per core (actual varies ±20%).
    pub ops_per_core: usize,
    pub seed: u64,
}

impl WorkloadParams {
    pub fn new(cores: usize, ops_per_core: usize, seed: u64) -> Self {
        assert!(cores.is_power_of_two(), "kernels want power-of-two cores");
        assert!(ops_per_core >= 64, "scripts shorter than 64 ops are noise");
        WorkloadParams {
            cores,
            ops_per_core,
            seed,
        }
    }
}

/// A fully materialised multi-core op script.
pub struct ScriptWorkload {
    name: &'static str,
    streams: Vec<VecDeque<Op>>,
}

impl Workload for ScriptWorkload {
    fn num_cores(&self) -> usize {
        self.streams.len()
    }
    fn name(&self) -> &'static str {
        self.name
    }
    fn next_op(&mut self, core: usize) -> Op {
        self.streams[core].pop_front().unwrap_or(Op::Halt)
    }
}

impl ScriptWorkload {
    /// Total scripted ops (before Halt padding), for reports.
    pub fn total_ops(&self) -> usize {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// Number of barrier ops in core 0's script.
    pub fn barriers(&self) -> usize {
        self.streams[0]
            .iter()
            .filter(|o| matches!(o, Op::Barrier(_)))
            .count()
    }

    /// Peek the full script of one core (test/diagnostic use).
    pub fn script(&self, core: usize) -> impl Iterator<Item = &Op> {
        self.streams[core].iter()
    }
}

/// Build a kernel instance.
pub fn build(kernel: Kernel, p: WorkloadParams) -> ScriptWorkload {
    let streams = match kernel {
        Kernel::Fft => gen_fft(p),
        Kernel::Lu => gen_lu(p),
        Kernel::Barnes => gen_barnes(p),
        Kernel::Streamcluster => gen_streamcluster(p),
        Kernel::Canneal => gen_canneal(p),
        Kernel::Blackscholes => gen_blackscholes(p),
    };
    ScriptWorkload {
        name: kernel.label(),
        streams: streams.into_iter().map(VecDeque::from).collect(),
    }
}

/// FFT block size for the given params (shared with tests).
fn fft_block(p: &WorkloadParams) -> u64 {
    let stages = p.cores.trailing_zeros().max(1) as usize;
    let per_stage = (p.ops_per_core / stages).max(12);
    (per_stage / 3).max(4) as u64
}

/// Butterfly all-to-all: log2(cores) stages; in stage `s`, core `i`
/// reads the block of partner `i ^ (1 << s)` and rewrites its own.
fn gen_fft(p: WorkloadParams) -> Vec<Vec<Op>> {
    let stages = p.cores.trailing_zeros().max(1) as usize;
    let block = fft_block(&p);
    let mut out = vec![Vec::new(); p.cores];
    for s in 0..stages {
        for (core, ops) in out.iter_mut().enumerate() {
            let partner = core ^ (1usize << s);
            for j in 0..block {
                ops.push(Op::Load(shared(partner as u64 * block + j)));
                ops.push(Op::Compute(6));
                ops.push(Op::Store(shared(core as u64 * block + j)));
            }
        }
        for ops in out.iter_mut() {
            ops.push(Op::Barrier(s as u32));
        }
    }
    out
}

/// Blocked LU: each step broadcasts the pivot owner's block to everyone,
/// then all cores update their own panel.
fn gen_lu(p: WorkloadParams) -> Vec<Vec<Op>> {
    let steps = 6.min(p.cores).max(2);
    let per_step = (p.ops_per_core / steps).max(15);
    let block = (per_step / 5).max(4) as u64;
    let mut out = vec![Vec::new(); p.cores];
    let mut bar = 0u32;
    for k in 0..steps {
        let owner = (k * 7) % p.cores;
        // Owner refreshes its pivot block first.
        for j in 0..block {
            out[owner].push(Op::Store(shared(owner as u64 * block + j)));
            out[owner].push(Op::Compute(4));
        }
        for ops in out.iter_mut() {
            ops.push(Op::Barrier(bar));
        }
        bar += 1;
        // Everyone consumes the pivot block and updates their panel.
        for (core, ops) in out.iter_mut().enumerate() {
            for j in 0..block {
                ops.push(Op::Load(shared(owner as u64 * block + j)));
                ops.push(Op::Compute(8));
                ops.push(Op::Store(private(core, j)));
            }
        }
        for ops in out.iter_mut() {
            ops.push(Op::Barrier(bar));
        }
        bar += 1;
    }
    out
}

/// Zipf-like sampler over `n` items (precomputed CDF, α ≈ 0.8).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(0.8);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StreamRng) -> u64 {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Irregular tree walks with skewed sharing; occasional shared writes.
fn gen_barnes(p: WorkloadParams) -> Vec<Vec<Op>> {
    let timesteps = 4;
    let per_step = (p.ops_per_core / timesteps).max(20);
    let tree_lines = (p.cores as u64 * 16).max(256);
    let zipf = Zipf::new(tree_lines as usize);
    let root = StreamRng::new(p.seed);
    let mut out = vec![Vec::new(); p.cores];
    for bar in 0..timesteps as u32 {
        for (core, ops) in out.iter_mut().enumerate() {
            let mut rng = root.stream("barnes", ((core as u64) << 8) | bar as u64);
            let walks = per_step / 5;
            for w in 0..walks {
                ops.push(Op::Load(shared(zipf.sample(&mut rng))));
                ops.push(Op::Load(shared(zipf.sample(&mut rng))));
                ops.push(Op::Compute(10));
                if rng.chance(0.06) {
                    ops.push(Op::Store(shared(zipf.sample(&mut rng))));
                } else {
                    ops.push(Op::Store(private(core, w as u64 % 64)));
                }
            }
        }
        for ops in out.iter_mut() {
            ops.push(Op::Barrier(bar));
        }
    }
    out
}

/// Hot read-shared centres; the master rewrites them each phase,
/// triggering an invalidation storm.
fn gen_streamcluster(p: WorkloadParams) -> Vec<Vec<Op>> {
    let phases = 4;
    let centers = 8u64;
    let per_phase = (p.ops_per_core / phases).max(20);
    let root = StreamRng::new(p.seed ^ 0x5c);
    let mut out = vec![Vec::new(); p.cores];
    let mut bar = 0u32;
    for _ph in 0..phases {
        for (core, ops) in out.iter_mut().enumerate() {
            let mut rng = root.stream("stream", ((core as u64) << 8) | bar as u64);
            let points = per_phase / 4;
            for i in 0..points {
                ops.push(Op::Load(shared(rng.below(centers))));
                ops.push(Op::Load(private(core, i as u64 % 128)));
                ops.push(Op::Compute(5));
                ops.push(Op::Store(private(core, 200 + i as u64 % 16)));
            }
        }
        for ops in out.iter_mut() {
            ops.push(Op::Barrier(bar));
        }
        bar += 1;
        // Master updates every centre (everyone else gets invalidated).
        for c in 0..centers {
            out[0].push(Op::Store(shared(c)));
            out[0].push(Op::Compute(3));
        }
        for ops in out.iter_mut() {
            ops.push(Op::Barrier(bar));
        }
        bar += 1;
    }
    out
}

/// Random pairwise swaps: write-write ownership migration.
fn gen_canneal(p: WorkloadParams) -> Vec<Vec<Op>> {
    let elements = (p.cores as u64 * 32).max(512);
    let swaps = (p.ops_per_core / 4).max(16);
    let root = StreamRng::new(p.seed ^ 0xca);
    let mut out = vec![Vec::new(); p.cores];
    let bar_every = (swaps / 3).max(8);
    let total_bars = swaps / bar_every;
    for (core, ops) in out.iter_mut().enumerate() {
        let mut rng = root.stream("canneal", core as u64);
        let mut bar = 0u32;
        for s in 0..swaps {
            let a = rng.below(elements);
            let b = rng.below(elements);
            ops.push(Op::Load(shared(a)));
            ops.push(Op::Load(shared(b)));
            ops.push(Op::Compute(7));
            ops.push(Op::Store(shared(a)));
            ops.push(Op::Store(shared(b)));
            if (s + 1) % bar_every == 0 && (bar as usize) < total_bars {
                ops.push(Op::Barrier(bar));
                bar += 1;
            }
        }
    }
    out
}

/// Embarrassingly parallel option pricing: stream over private data,
/// heavy compute per element, one barrier at the end. Network traffic
/// is almost exclusively cold misses to memory.
fn gen_blackscholes(p: WorkloadParams) -> Vec<Vec<Op>> {
    let per_core = p.ops_per_core.max(64);
    let options = (per_core / 4) as u64;
    let mut out = vec![Vec::new(); p.cores];
    for (core, ops) in out.iter_mut().enumerate() {
        for i in 0..options {
            ops.push(Op::Load(private(core, i % 512)));
            ops.push(Op::Compute(40));
            ops.push(Op::Store(private(core, 600 + i % 128)));
        }
        ops.push(Op::Barrier(0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::new(16, 600, 42)
    }

    #[test]
    fn all_kernels_build_and_are_nonempty() {
        for k in Kernel::ALL {
            let w = build(k, params());
            assert_eq!(w.num_cores(), 16);
            assert!(w.total_ops() > 16 * 100, "{}: too few ops", k.label());
        }
    }

    #[test]
    fn scripts_halt_forever_after_exhaustion() {
        let mut w = build(Kernel::Fft, WorkloadParams::new(4, 64, 1));
        while w.next_op(0) != Op::Halt {}
        for _ in 0..10 {
            assert_eq!(w.next_op(0), Op::Halt);
        }
    }

    #[test]
    fn barrier_ids_match_across_cores() {
        for k in Kernel::ALL {
            let w = build(k, params());
            let extract = |core: usize| -> Vec<u32> {
                w.script(core)
                    .filter_map(|o| match o {
                        Op::Barrier(b) => Some(*b),
                        _ => None,
                    })
                    .collect()
            };
            let b0 = extract(0);
            assert!(!b0.is_empty(), "{}: no barriers at all", k.label());
            for c in 1..16 {
                assert_eq!(extract(c), b0, "{}: barrier mismatch core {c}", k.label());
            }
            assert!(
                b0.windows(2).all(|w| w[1] > w[0]),
                "{}: ids not increasing",
                k.label()
            );
        }
    }

    #[test]
    fn deterministic_across_builds() {
        for k in Kernel::ALL {
            let a = build(k, params());
            let b = build(k, params());
            for c in 0..16 {
                let va: Vec<_> = a.script(c).collect();
                let vb: Vec<_> = b.script(c).collect();
                assert_eq!(va, vb, "{}: stream differs on core {c}", k.label());
            }
        }
    }

    #[test]
    fn different_seeds_differ_for_stochastic_kernels() {
        for k in [Kernel::Barnes, Kernel::Canneal, Kernel::Streamcluster] {
            let a = build(k, WorkloadParams::new(8, 600, 1));
            let b = build(k, WorkloadParams::new(8, 600, 2));
            let va: Vec<_> = a.script(3).cloned().collect();
            let vb: Vec<_> = b.script(3).cloned().collect();
            assert_ne!(va, vb, "{}: seed ignored", k.label());
        }
    }

    #[test]
    fn fft_stage0_reads_partner_block() {
        let p = WorkloadParams::new(8, 600, 1);
        let block = fft_block(&p);
        let w = build(Kernel::Fft, p);
        // Core 3's stage-0 partner is 2; first op is a load of
        // partner's first block line.
        let first = w.script(3).next().unwrap();
        assert_eq!(*first, Op::Load(shared(2 * block)));
        // Core 0's partner is 1.
        let first0 = w.script(0).next().unwrap();
        assert_eq!(*first0, Op::Load(shared(block)));
    }

    #[test]
    fn blackscholes_touches_only_private_lines() {
        let w = build(Kernel::Blackscholes, params());
        for core in 0..16 {
            for op in w.script(core) {
                match op {
                    Op::Load(a) | Op::Store(a) => {
                        assert!(
                            *a >= PRIVATE_BASE,
                            "blackscholes touched shared address {a:#x}"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn canneal_is_store_heavy() {
        let w = build(Kernel::Canneal, params());
        let (mut loads, mut stores) = (0, 0);
        for op in w.script(0) {
            match op {
                Op::Load(_) => loads += 1,
                Op::Store(_) => stores += 1,
                _ => {}
            }
        }
        assert!(
            stores >= loads,
            "canneal should migrate ownership: {loads} loads, {stores} stores"
        );
    }

    #[test]
    fn streamcluster_reads_concentrate_on_centers() {
        let w = build(Kernel::Streamcluster, params());
        let mut center_reads = 0usize;
        let mut other_reads = 0usize;
        for op in w.script(5) {
            if let Op::Load(a) = op {
                if *a < 8 * LINE_BYTES {
                    center_reads += 1;
                } else {
                    other_reads += 1;
                }
            }
        }
        assert!(center_reads > 0);
        // Half the loads are centre loads by construction.
        assert!((center_reads as i64 - other_reads as i64).abs() <= 2);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000);
        let mut rng = StreamRng::new(9);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 10% of items should draw well over 10% of samples.
        assert!(head as f64 / n as f64 > 0.25, "zipf head share {head}/{n}");
    }

    #[test]
    fn private_regions_do_not_overlap() {
        for c in 0..7usize {
            assert!(private(c, 0) + PRIVATE_STRIDE <= private(c + 1, 0));
        }
        // and stay clear of the shared region
        assert!(private(0, 0) > shared(1 << 20));
    }

    #[test]
    fn runs_on_the_full_system_simulator() {
        use sctm_cmp::{CmpConfig, CmpSim, NullHook};
        use sctm_engine::net::AnalyticNetwork;
        use sctm_engine::time::SimTime;
        for k in Kernel::ALL {
            let w = build(k, WorkloadParams::new(4, 200, 3));
            let cfg = CmpConfig::tiled(2);
            let net = AnalyticNetwork::new(4, SimTime::from_ns(10), SimTime::from_ns(2), 10);
            let mut sim = CmpSim::new(cfg, Box::new(net), Box::new(w));
            let r = sim.run(&mut NullHook);
            assert!(r.exec_time > SimTime::ZERO, "{}: no progress", k.label());
            assert!(r.messages_injected > 0, "{}: no traffic", k.label());
        }
    }
}
