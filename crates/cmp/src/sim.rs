//! The full-system CMP simulator.
//!
//! In-order cores execute workload op streams; private L1s and a
//! full-map directory with shared L2 slices turn memory operations into
//! coherence traffic; every protocol hop crosses the pluggable
//! [`NetworkModel`]. This is the "full-system" half of the paper's
//! co-simulation: swap the network for the electrical baseline, either
//! optical architecture, or the analytic model, and the *same* workload
//! executes with network timing feeding back into core progress — the
//! feedback loop trace-driven simulation loses and the self-correction
//! trace model recovers.
//!
//! ## Modelling choices (and why they are safe here)
//!
//! * **Blocking cores, one miss outstanding.** Matches the paper's era
//!   (simple in-order tiles) and makes the dependency structure of the
//!   trace crisp: every post-miss message depends on the fill that
//!   unblocked the core.
//! * **Unbounded full-map directory, finite L2 data tags.** The
//!   directory never evicts (no recall protocol); the L2 tag array
//!   filters memory traffic. Keeps the coherence invariant exact while
//!   avoiding the recall state explosion.
//! * **Bounded fast-forward.** A core executing hits/computes advances
//!   locally up to [`CmpConfig::ff_quantum_cycles`] cycles per event, so
//!   a remote invalidation can be at most one quantum late from the
//!   core's point of view. Tighten the quantum to trade speed for
//!   fidelity.
//! * **Local-slice traffic rides the network as self-sends.** Every
//!   network model delivers `src == dst` messages with a small NI
//!   latency; routing them uniformly keeps all simulation modes
//!   comparable.

use crate::cache::{Cache, CacheGeometry, LineAddr};
use crate::protocol::{DirState, InjectRecord, Op, ProtocolMsg, Sharers, TraceHook, Workload};
use sctm_engine::event::EventQueue;
use sctm_engine::hash::FxHashMap;
use sctm_engine::msgtable::MsgTable;
use sctm_engine::net::{Delivery, Message, MsgClass, MsgId, NetStats, NetworkModel, NodeId};
use sctm_engine::time::{Freq, SimTime};
use std::collections::VecDeque;

/// CMP configuration.
#[derive(Clone, Debug)]
pub struct CmpConfig {
    /// Mesh side; core count is `side²`.
    pub mesh_side: usize,
    pub core_freq: Freq,
    pub l1: CacheGeometry,
    pub l2_slice: CacheGeometry,
    /// L1 hit latency, core cycles.
    pub l1_hit_cycles: u64,
    /// L1 fill (and unblock) latency, core cycles.
    pub l1_fill_cycles: u64,
    /// L2 slice data access latency, core cycles.
    pub l2_cycles: u64,
    /// Directory-only processing latency, core cycles.
    pub dir_cycles: u64,
    /// DRAM access latency.
    pub mem_latency: SimTime,
    /// Per-request memory-controller occupancy (bandwidth model).
    pub mem_service: SimTime,
    /// Number of memory controllers (evenly spread over nodes).
    pub num_mem_ctrl: usize,
    /// Payload bytes of control / data messages.
    pub ctrl_bytes: u32,
    pub data_bytes: u32,
    /// Max core cycles fast-forwarded per scheduling event.
    pub ff_quantum_cycles: u64,
}

impl CmpConfig {
    /// A sensible 2012-class tiled CMP of `side × side` cores.
    pub fn tiled(side: usize) -> Self {
        CmpConfig {
            mesh_side: side,
            core_freq: Freq::from_ghz(5),
            l1: CacheGeometry::from_capacity(32 * 1024, 4),
            l2_slice: CacheGeometry::from_capacity(256 * 1024, 8),
            l1_hit_cycles: 2,
            l1_fill_cycles: 2,
            l2_cycles: 10,
            dir_cycles: 4,
            mem_latency: SimTime::from_ns(120),
            mem_service: SimTime::from_ns(8),
            num_mem_ctrl: 4,
            ctrl_bytes: 8,
            data_bytes: 72,
            ff_quantum_cycles: 200,
        }
    }

    pub fn num_cores(&self) -> usize {
        self.mesh_side * self.mesh_side
    }

    /// Node ids hosting memory controllers, evenly spread.
    pub fn mem_ctrl_nodes(&self) -> Vec<usize> {
        let n = self.num_cores();
        let k = self.num_mem_ctrl.clamp(1, n);
        (0..k).map(|i| i * n / k).collect()
    }
}

/// Per-line L1 metadata.
#[derive(Clone, Copy, Debug, Default)]
struct L1Meta {
    /// Modified (M) vs shared (S).
    m: bool,
}

/// Per-line L2 slice metadata.
#[derive(Clone, Copy, Debug, Default)]
struct L2Meta {
    dirty: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CoreStatus {
    Ready,
    WaitFill { line: LineAddr, store: bool },
    WaitBarrier(u32),
    Halted,
}

struct CoreState {
    status: CoreStatus,
    /// Delivery that most recently unblocked this core.
    last_enabler: Option<MsgId>,
    miss_start: SimTime,
    finish: SimTime,
    ops: u64,
    loads: u64,
    stores: u64,
    /// Total time spent blocked on fills / at barriers (time breakdown).
    wait_fill: SimTime,
    wait_barrier: SimTime,
    barrier_start: SimTime,
    /// External requests (Fetch/Inv) that raced our in-flight fill for
    /// the same line; replayed once the fill lands — the transient-state
    /// buffering every real directory protocol needs.
    deferred: Vec<(MsgId, ProtocolMsg)>,
}

// Every transaction *is* a wait state; the shared prefix is the point.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Debug)]
enum TxnKind {
    WaitMem,
    WaitAcks { pending: u32 },
    WaitFetch,
    WaitWb,
}

#[derive(Clone, Debug)]
struct Txn {
    requester: u16,
    is_x: bool,
    kind: TxnKind,
    /// Deliveries accumulated so far that the final reply depends on.
    deps: Vec<MsgId>,
}

#[derive(Clone, Copy, Debug)]
struct QueuedReq {
    req_id: MsgId,
    requester: u16,
    is_x: bool,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    CoreNext(u16),
}

/// A protocol message crossing a shard boundary in the parallel capture
/// runner: carried to the destination shard at the next epoch barrier
/// and injected there (backdated to its true send time) together with
/// the destination-side bookkeeping the sequential `send` would have
/// done in place.
pub(crate) struct RemoteMsg {
    pub at: SimTime,
    pub msg: Message,
    pub proto: ProtocolMsg,
}

/// Shard identity for parallel capture. `None` (the default) is the
/// classic sequential simulator.
struct ShardCtx {
    num_shards: usize,
    my_shard: usize,
    /// Cross-shard messages produced this epoch, delivered by the epoch
    /// runner at the next barrier.
    outbox: Vec<RemoteMsg>,
}

/// Aggregate result of a full-system run.
#[derive(Clone, Debug)]
pub struct CmpResult {
    /// Time the last core halted.
    pub exec_time: SimTime,
    pub total_ops: u64,
    pub total_loads: u64,
    pub total_stores: u64,
    pub l1_hit_rate: f64,
    pub messages_injected: u64,
    pub messages_delivered: u64,
    /// Mean L1-miss round trip in nanoseconds.
    pub avg_miss_latency_ns: f64,
    /// Mean network latency (both classes) in nanoseconds.
    pub avg_net_latency_ns: f64,
    pub network_label: &'static str,
    /// Mean fraction of core time spent blocked on fills.
    pub wait_fill_frac: f64,
    /// Mean fraction of core time spent waiting at barriers.
    pub wait_barrier_frac: f64,
}

/// The full-system simulator, generic over the interconnect.
pub struct CmpSim {
    cfg: CmpConfig,
    net: Box<dyn NetworkModel>,
    q: EventQueue<Ev>,
    cores: Vec<CoreState>,
    l1: Vec<Cache<L1Meta>>,
    l2: Vec<Cache<L2Meta>>,
    dir: FxHashMap<u64, DirState>,
    busy: FxHashMap<u64, Txn>,
    queued: FxHashMap<u64, VecDeque<QueuedReq>>,
    last_unblock: FxHashMap<u64, MsgId>,
    mem_free: Vec<SimTime>,
    /// In-flight protocol payloads by message id.
    in_flight: MsgTable<ProtocolMsg>,
    /// Line for which a Data/UpgAck grant is currently travelling to
    /// each core. The precise "my fill is in flight" predicate for
    /// external-request deferral: a queued request or a stale-sharer
    /// state must NOT defer (that deadlocks), only a committed grant.
    granted: Vec<Option<LineAddr>>,
    /// Per-node last injected message (endpoint program order).
    last_out: Vec<Option<MsgId>>,
    /// Per-source message sequence counters. Ids are interleaved as
    /// `seq × num_cores + src`: each node numbers its own messages, so a
    /// shard of the parallel capture runner assigns exactly the ids the
    /// sequential run would — without knowing other shards' send counts.
    /// The sequential path uses the same scheme so the two are
    /// bit-identical.
    next_seq: Vec<u64>,
    barrier_counts: FxHashMap<u32, (u32, Vec<MsgId>)>,
    /// Integer miss-latency accumulator. An integer sum (unlike a
    /// streaming mean) is independent of push order, so per-shard
    /// partial sums aggregate to exactly the sequential value.
    miss_lat_sum_ps: u128,
    miss_lat_count: u64,
    workload: Box<dyn Workload>,
    deliveries_buf: Vec<Delivery>,
    delivered: u64,
    shard: Option<ShardCtx>,
}

impl CmpSim {
    pub fn new(cfg: CmpConfig, net: Box<dyn NetworkModel>, workload: Box<dyn Workload>) -> Self {
        let n = cfg.num_cores();
        assert_eq!(net.num_nodes(), n, "network size must match core count");
        assert_eq!(
            workload.num_cores(),
            n,
            "workload size must match core count"
        );
        assert!(n <= crate::protocol::MAX_CORES);
        CmpSim {
            l1: (0..n).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..n).map(|_| Cache::new(cfg.l2_slice)).collect(),
            cores: (0..n)
                .map(|_| CoreState {
                    status: CoreStatus::Ready,
                    last_enabler: None,
                    miss_start: SimTime::ZERO,
                    finish: SimTime::ZERO,
                    ops: 0,
                    loads: 0,
                    stores: 0,
                    wait_fill: SimTime::ZERO,
                    wait_barrier: SimTime::ZERO,
                    barrier_start: SimTime::ZERO,
                    deferred: Vec::new(),
                })
                .collect(),
            mem_free: vec![SimTime::ZERO; cfg.mem_ctrl_nodes().len()],
            dir: FxHashMap::default(),
            busy: FxHashMap::default(),
            queued: FxHashMap::default(),
            last_unblock: FxHashMap::default(),
            in_flight: MsgTable::new(),
            granted: vec![None; n],
            last_out: vec![None; n],
            next_seq: vec![0; n],
            barrier_counts: FxHashMap::default(),
            miss_lat_sum_ps: 0,
            miss_lat_count: 0,
            q: EventQueue::new(),
            net,
            workload,
            cfg,
            deliveries_buf: Vec::new(),
            delivered: 0,
            shard: None,
        }
    }

    /// Turn this simulator into shard `my_shard` of `num_shards`: it
    /// will only schedule and execute nodes `v` with
    /// `v % num_shards == my_shard`, routing messages for other nodes to
    /// the outbox. Must be called before [`Self::start`].
    pub(crate) fn set_shard(&mut self, my_shard: usize, num_shards: usize) {
        assert!(my_shard < num_shards, "shard index out of range");
        self.shard = Some(ShardCtx {
            num_shards,
            my_shard,
            outbox: Vec::new(),
        });
    }

    /// Does this simulator instance own node `v`? Always true in the
    /// sequential configuration.
    #[inline]
    fn owns(&self, node: usize) -> bool {
        match &self.shard {
            Some(sh) => node % sh.num_shards == sh.my_shard,
            None => true,
        }
    }

    #[inline]
    fn home(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.cfg.num_cores()
    }

    #[inline]
    fn mem_ctrl_of(&self, line: LineAddr) -> (usize, usize) {
        let ctrls = self.cfg.mem_ctrl_nodes();
        let idx = ((line.0 / self.cfg.num_cores() as u64) as usize) % ctrls.len();
        (idx, ctrls[idx])
    }

    #[inline]
    fn cyc(&self, n: u64) -> SimTime {
        self.cfg.core_freq.cycles(n)
    }

    /// Inject a protocol message at time `at`, recording trace causality.
    fn send(
        &mut self,
        hook: &mut dyn TraceHook,
        at: SimTime,
        src: usize,
        dst: usize,
        proto: ProtocolMsg,
        deps: Vec<MsgId>,
    ) -> MsgId {
        let n = self.cfg.num_cores() as u64;
        let seq = self.next_seq[src];
        self.next_seq[src] = seq + 1;
        let id = MsgId(seq * n + src as u64);
        let (class, bytes) = if proto.is_data() {
            (MsgClass::Data, self.cfg.data_bytes)
        } else {
            (MsgClass::Control, self.cfg.ctrl_bytes)
        };
        let msg = Message {
            id,
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            class,
            bytes,
        };
        // The source side of a send — id assignment, endpoint program
        // order, trace record — always happens here, on the shard that
        // owns `src`. The destination side (grant tracking, in-flight
        // payload, network injection) happens wherever `dst` lives: in
        // place for local messages, at the next epoch barrier (via
        // [`Self::accept_remote`]) for cross-shard ones.
        let prev = self.last_out[src].replace(id);
        hook.on_inject(InjectRecord {
            msg,
            at,
            deps,
            prev_same_src: prev,
            kind: proto.kind(),
        });
        if self.owns(dst) {
            self.accept_local(at, msg, proto);
        } else {
            let sh = self
                .shard
                .as_mut()
                .expect("remote destination without shard context");
            sh.outbox.push(RemoteMsg { at, msg, proto });
        }
        id
    }

    /// Destination-side bookkeeping of a send: grant tracking for the
    /// deferral predicate, the in-flight payload, and network injection.
    fn accept_local(&mut self, at: SimTime, msg: Message, proto: ProtocolMsg) {
        // Track committed fills for the deferral predicate.
        match proto {
            ProtocolMsg::Data { line, to, .. } | ProtocolMsg::UpgAck { line, to } => {
                debug_assert!(
                    self.granted[to as usize].is_none(),
                    "double grant to core {to}"
                );
                self.granted[to as usize] = Some(line);
            }
            _ => {}
        }
        self.in_flight.insert(msg.id.0, proto);
        self.net.inject(at, msg);
    }

    /// Accept a cross-shard message at an epoch barrier. Performs the
    /// destination-side bookkeeping [`Self::send`] would have done in
    /// place, injecting backdated: `at` (the true source-side send time)
    /// lies in the barrier's past, but the conservative lookahead
    /// guarantees the *delivery* is still in this shard's future.
    ///
    /// Applying the grant here rather than at send time is
    /// observationally equivalent: per-line directory serialization
    /// means no Fetch/Inv for the granted (core, line) pair can be in
    /// flight while the grant travels, so nothing can read
    /// `granted[to]` between the true send time and this barrier.
    pub(crate) fn accept_remote(&mut self, r: RemoteMsg) {
        match r.proto {
            ProtocolMsg::Data { line, to, .. } | ProtocolMsg::UpgAck { line, to } => {
                debug_assert!(
                    self.granted[to as usize].is_none(),
                    "double grant to core {to}"
                );
                self.granted[to as usize] = Some(line);
            }
            _ => {}
        }
        self.in_flight.insert(r.msg.id.0, r.proto);
        self.net.inject_backdated(r.at, r.msg);
    }

    /// Drain the cross-shard messages produced since the last barrier.
    pub(crate) fn take_outbox(&mut self) -> Vec<RemoteMsg> {
        match &mut self.shard {
            Some(sh) => std::mem::take(&mut sh.outbox),
            None => Vec::new(),
        }
    }

    /// Schedule the initial event for every core this instance owns.
    pub(crate) fn start(&mut self) {
        for c in 0..self.cfg.num_cores() {
            if self.owns(c) {
                self.q.schedule(SimTime::ZERO, Ev::CoreNext(c as u16));
            }
        }
    }

    /// Earliest pending work — core event or network delivery — or
    /// `None` when this instance is quiescent.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        match (self.q.peek_time(), self.net.next_time()) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Process events strictly before `limit` (all events when `None`),
    /// preserving the sequential tie-break: at equal times, core events
    /// run before network deliveries. Events exactly at the limit wait —
    /// in epoch-parallel mode they belong to the next window.
    pub(crate) fn step_until(&mut self, hook: &mut dyn TraceHook, limit: Option<SimTime>) {
        loop {
            let tq = self.q.peek_time();
            let tn = self.net.next_time();
            let core_first = match (tq, tn) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => a <= b,
            };
            if let Some(w) = limit {
                let next = if core_first { tq } else { tn };
                if next.expect("branch chosen from a Some") >= w {
                    break;
                }
            }
            if core_first {
                let ev = self
                    .q
                    .pop()
                    .expect("event queue drained between peek and pop");
                debug_assert_eq!(Some(ev.at), tq);
                self.handle_event(hook, ev.at, ev.payload);
            } else {
                let b = tn.expect("branch chosen from a Some");
                self.advance_net(hook, b);
            }
        }
    }

    /// End-of-run invariants for the nodes this instance owns. Panics
    /// with a protocol diagnostic on violation.
    pub(crate) fn finish_checks(&self) {
        let owned_halted = self
            .cores
            .iter()
            .enumerate()
            .filter(|(i, _)| self.owns(*i))
            .all(|(_, c)| c.status == CoreStatus::Halted);
        if !owned_halted {
            let stuck: Vec<String> = self
                .cores
                .iter()
                .enumerate()
                .filter(|(i, c)| self.owns(*i) && c.status != CoreStatus::Halted)
                .map(|(i, c)| format!("core {i}: {:?}", c.status))
                .collect();
            panic!(
                "run ended with cores not halted (protocol lost a wakeup):\n{}\nbusy: {:?}\nqueued: {:?}\nbarriers: {:?}",
                stuck.join("\n"),
                self.busy,
                self.queued.keys().collect::<Vec<_>>(),
                self.barrier_counts,
            );
        }
        assert!(self.in_flight.is_empty(), "messages lost in flight");
        assert!(self.busy.is_empty(), "directory transaction leaked");
    }

    /// Run the workload to completion. Returns aggregate results.
    pub fn run(&mut self, hook: &mut dyn TraceHook) -> CmpResult {
        let _span = sctm_obs::span("cmp", "run");
        self.start();
        self.step_until(hook, None);
        self.finish_checks();
        self.validate_coherence();
        self.result()
    }

    fn result(&self) -> CmpResult {
        let (hits, misses) = self
            .l1
            .iter()
            .fold((0u64, 0u64), |(h, m), c| (h + c.hits(), m + c.misses()));
        let s = self.net.stats();
        let exec = self
            .cores
            .iter()
            .map(|c| c.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        let frac = |f: fn(&CoreState) -> SimTime| -> f64 {
            if exec.as_ps() == 0 {
                return 0.0;
            }
            let total: u64 = self.cores.iter().map(|c| f(c).as_ps()).sum();
            total as f64 / (exec.as_ps() as f64 * self.cores.len() as f64)
        };
        CmpResult {
            wait_fill_frac: frac(|c| c.wait_fill),
            wait_barrier_frac: frac(|c| c.wait_barrier),
            exec_time: exec,
            total_ops: self.cores.iter().map(|c| c.ops).sum(),
            total_loads: self.cores.iter().map(|c| c.loads).sum(),
            total_stores: self.cores.iter().map(|c| c.stores).sum(),
            l1_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            messages_injected: s.injected,
            messages_delivered: self.delivered,
            avg_miss_latency_ns: Self::miss_mean_ns(self.miss_lat_sum_ps, self.miss_lat_count),
            avg_net_latency_ns: s.mean_latency_ps() / 1000.0,
            network_label: self.net.label(),
        }
    }

    /// Borrow the interconnect (e.g. for architecture-specific reports).
    pub fn network(&self) -> &dyn NetworkModel {
        self.net.as_ref()
    }

    #[inline]
    fn miss_mean_ns(sum_ps: u128, count: u64) -> f64 {
        if count == 0 {
            0.0
        } else {
            (sum_ps as f64 / count as f64) / 1000.0
        }
    }

    /// Aggregate per-shard results into what the sequential run reports.
    /// Every component is order-insensitive — integer sums, maxes, and
    /// exact histogram merges — so for a deterministic shard execution
    /// the aggregate is byte-identical to the sequential result.
    pub(crate) fn merged_result(shards: &[CmpSim]) -> CmpResult {
        assert!(!shards.is_empty());
        let n_cores = shards[0].cfg.num_cores();
        let mut stats = NetStats::default();
        let (mut hits, mut misses) = (0u64, 0u64);
        let (mut ops, mut loads, mut stores, mut delivered) = (0u64, 0u64, 0u64, 0u64);
        let (mut miss_sum, mut miss_count) = (0u128, 0u64);
        let mut exec = SimTime::ZERO;
        let (mut wait_fill, mut wait_barrier) = (0u64, 0u64);
        for s in shards {
            stats.merge(s.net.stats());
            for c in s.l1.iter() {
                hits += c.hits();
                misses += c.misses();
            }
            for c in s.cores.iter() {
                ops += c.ops;
                loads += c.loads;
                stores += c.stores;
                exec = exec.max(c.finish);
                wait_fill += c.wait_fill.as_ps();
                wait_barrier += c.wait_barrier.as_ps();
            }
            delivered += s.delivered;
            miss_sum += s.miss_lat_sum_ps;
            miss_count += s.miss_lat_count;
        }
        let frac = |total_ps: u64| -> f64 {
            if exec.as_ps() == 0 {
                0.0
            } else {
                total_ps as f64 / (exec.as_ps() as f64 * n_cores as f64)
            }
        };
        CmpResult {
            exec_time: exec,
            total_ops: ops,
            total_loads: loads,
            total_stores: stores,
            l1_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            messages_injected: stats.injected,
            messages_delivered: delivered,
            avg_miss_latency_ns: Self::miss_mean_ns(miss_sum, miss_count),
            avg_net_latency_ns: stats.mean_latency_ps() / 1000.0,
            network_label: shards[0].net.label(),
            wait_fill_frac: frac(wait_fill),
            wait_barrier_frac: frac(wait_barrier),
        }
    }

    /// Cross-shard end-of-run coherence check: validate every shard's L1
    /// contents against the union of all shards' directory slices (the
    /// directory is partitioned by home node, L1s by core).
    pub(crate) fn validate_coherence_sharded(shards: &[CmpSim]) {
        let mut dir: FxHashMap<u64, DirState> = FxHashMap::default();
        for s in shards {
            for (k, v) in &s.dir {
                let prior = dir.insert(*k, *v);
                debug_assert!(prior.is_none(), "directory line {k:#x} owned by two shards");
            }
        }
        for s in shards {
            s.validate_coherence_with(&dir);
        }
    }

    /// End-of-run coherence invariant: every L1 line in M state is the
    /// unique registered owner; every S line is a registered sharer.
    fn validate_coherence(&self) {
        self.validate_coherence_with(&self.dir);
    }

    /// Coherence check against an explicit directory map — in sharded
    /// runs the directory is partitioned by home node, so each shard's
    /// L1 contents must be checked against the *union* of all shards'
    /// directory slices.
    fn validate_coherence_with(&self, dir: &FxHashMap<u64, DirState>) {
        for (core, l1) in self.l1.iter().enumerate() {
            l1.for_each_line(|line, meta| match dir.get(&line.0) {
                Some(DirState::Modified(o)) => {
                    assert_eq!(
                        *o as usize, core,
                        "L1 {core} holds {line:?} but dir owner is {o}"
                    );
                    assert!(meta.m, "owner's copy of {line:?} lost M state");
                }
                Some(DirState::Shared(s)) => {
                    assert!(
                        s.contains(core),
                        "L1 {core} holds {line:?} but is not a registered sharer"
                    );
                    assert!(!meta.m, "shared copy of {line:?} is dirty in L1 {core}");
                }
                other => panic!("L1 {core} holds {line:?} but dir says {other:?}"),
            });
        }
    }

    fn advance_net(&mut self, hook: &mut dyn TraceHook, t: SimTime) {
        let mut buf = std::mem::take(&mut self.deliveries_buf);
        buf.clear();
        self.net.advance_until(t, &mut buf);
        for d in buf.drain(..) {
            self.handle_delivery(hook, d);
        }
        self.deliveries_buf = buf;
    }

    fn handle_event(&mut self, hook: &mut dyn TraceHook, at: SimTime, ev: Ev) {
        match ev {
            Ev::CoreNext(c) => self.core_step(hook, at, c as usize),
        }
    }

    /// Execute ops for core `c` starting at `t`, fast-forwarding local
    /// work up to the configured quantum.
    fn core_step(&mut self, hook: &mut dyn TraceHook, at: SimTime, c: usize) {
        if self.cores[c].status == CoreStatus::Halted {
            return;
        }
        debug_assert_eq!(self.cores[c].status, CoreStatus::Ready);
        let quantum_end = at + self.cyc(self.cfg.ff_quantum_cycles);
        let mut t = at;
        loop {
            if t >= quantum_end {
                self.q.schedule(t, Ev::CoreNext(c as u16));
                return;
            }
            let op = self.workload.next_op(c);
            self.cores[c].ops += 1;
            match op {
                Op::Compute(cycles) => {
                    t += self.cyc(cycles);
                }
                Op::Load(addr) | Op::Store(addr) => {
                    let store = matches!(op, Op::Store(_));
                    if store {
                        self.cores[c].stores += 1;
                    } else {
                        self.cores[c].loads += 1;
                    }
                    let line = LineAddr::of_byte(addr);
                    t += self.cyc(self.cfg.l1_hit_cycles);
                    let hit_state = self.l1[c].access(line).map(|m| {
                        if store {
                            // store hit in M stays M; in S it must
                            // upgrade (handled below via `m` flag)
                            m.m
                        } else {
                            true // load hit in any state is fine
                        }
                    });
                    match hit_state {
                        Some(true) => {
                            // plain hit; also set M on store hit to M
                            // (already M) — nothing more to do
                        }
                        Some(false) => {
                            // store hit on an S line: ownership upgrade.
                            self.issue_miss(hook, t, c, line, true);
                            return;
                        }
                        None => {
                            self.issue_miss(hook, t, c, line, store);
                            return;
                        }
                    }
                }
                Op::Barrier(id) => {
                    self.cores[c].status = CoreStatus::WaitBarrier(id);
                    self.cores[c].barrier_start = t;
                    let deps = self.cores[c].last_enabler.into_iter().collect();
                    self.send(
                        hook,
                        t + self.cyc(1),
                        c,
                        0,
                        ProtocolMsg::BarArrive { id, core: c as u16 },
                        deps,
                    );
                    return;
                }
                Op::Halt => {
                    self.cores[c].status = CoreStatus::Halted;
                    self.cores[c].finish = t;
                    return;
                }
            }
        }
    }

    fn issue_miss(
        &mut self,
        hook: &mut dyn TraceHook,
        t: SimTime,
        c: usize,
        line: LineAddr,
        store: bool,
    ) {
        self.cores[c].status = CoreStatus::WaitFill { line, store };
        self.cores[c].miss_start = t;
        let home = self.home(line);
        let deps = self.cores[c].last_enabler.into_iter().collect();
        let proto = if store {
            ProtocolMsg::GetX {
                line,
                requester: c as u16,
            }
        } else {
            ProtocolMsg::GetS {
                line,
                requester: c as u16,
            }
        };
        self.send(hook, t, c, home, proto, deps);
    }

    fn handle_delivery(&mut self, hook: &mut dyn TraceHook, d: Delivery) {
        let id = d.msg.id;
        let at = d.delivered_at;
        self.delivered += 1;
        hook.on_deliver(id, at);
        let proto = self
            .in_flight
            .remove(id.0)
            .expect("delivery of unknown message");
        match proto {
            ProtocolMsg::GetS { line, requester } => {
                self.dir_request(hook, at, id, line, requester, false, Vec::new());
            }
            ProtocolMsg::GetX { line, requester } => {
                self.dir_request(hook, at, id, line, requester, true, Vec::new());
            }
            ProtocolMsg::Data { line, to, grant_m } => {
                self.core_fill(hook, at, id, to as usize, line, grant_m);
            }
            ProtocolMsg::UpgAck { line, to } => {
                self.core_fill(hook, at, id, to as usize, line, true);
            }
            ProtocolMsg::Fetch { line, owner } => {
                let o = owner as usize;
                if self.fill_in_flight(o, line) {
                    // Our fill has not landed yet: buffer and replay
                    // after the fill (transient-state deferral).
                    self.cores[o].deferred.push((id, proto));
                    return;
                }
                let t = at + self.cyc(self.cfg.l1_hit_cycles);
                let home = self.home(line);
                if self.l1[o].invalidate(line).is_some() {
                    self.send(hook, t, o, home, ProtocolMsg::WbData { line }, vec![id]);
                } else {
                    // Already evicted: our WbData is in flight.
                    self.send(hook, t, o, home, ProtocolMsg::FetchMiss { line }, vec![id]);
                }
            }
            ProtocolMsg::FetchMiss { line } => {
                // Only meaningful while the transaction still awaits the
                // fetch; a racing writeback may already have satisfied it
                // (and possibly let a next transaction start) — then this
                // is stale and the in-flight WbData it announces will be
                // consumed by whoever needs it.
                if let Some(txn) = self.busy.get_mut(&line.0) {
                    if matches!(txn.kind, TxnKind::WaitFetch) {
                        txn.kind = TxnKind::WaitWb;
                        txn.deps.push(id);
                    }
                }
            }
            ProtocolMsg::Inv { line, target } => {
                let tgt = target as usize;
                // Defer only when a committed grant of this line is in
                // flight to us. A resident S copy with an upgrade still
                // *queued* at the home (or a stale-sharer state) must be
                // invalidated and acked right away — deferring those
                // deadlocks the directory.
                if self.fill_in_flight(tgt, line) {
                    self.cores[tgt].deferred.push((id, proto));
                    return;
                }
                self.l1[tgt].invalidate(line);
                let t = at + self.cyc(self.cfg.l1_hit_cycles);
                let home = self.home(line);
                self.send(hook, t, tgt, home, ProtocolMsg::InvAck { line }, vec![id]);
            }
            ProtocolMsg::InvAck { line } => {
                self.handle_inv_ack(hook, at, id, line);
            }
            ProtocolMsg::WbData { line } => {
                self.handle_wb_data(hook, at, id, line);
            }
            ProtocolMsg::MemReq { line } => {
                let (mc_idx, mc_node) = self.mem_ctrl_of(line);
                let start = at.max(self.mem_free[mc_idx]);
                self.mem_free[mc_idx] = start + self.cfg.mem_service;
                let resp_at = start + self.cfg.mem_latency;
                let home = self.home(line);
                self.send(
                    hook,
                    resp_at,
                    mc_node,
                    home,
                    ProtocolMsg::MemResp { line },
                    vec![id],
                );
            }
            ProtocolMsg::MemResp { line } => {
                self.handle_mem_resp(hook, at, id, line);
            }
            ProtocolMsg::WbMem { .. } => {
                // Sink at the memory controller; bandwidth already
                // accounted by the network.
            }
            ProtocolMsg::BarArrive { id: bid, core: _ } => {
                let n = self.cfg.num_cores() as u32;
                let entry = self.barrier_counts.entry(bid).or_insert((0, Vec::new()));
                entry.0 += 1;
                entry.1.push(id);
                if entry.0 == n {
                    let deps = entry.1.clone();
                    self.barrier_counts.remove(&bid);
                    let t = at + self.cyc(self.cfg.dir_cycles);
                    for c in 0..self.cfg.num_cores() {
                        self.send(
                            hook,
                            t,
                            0,
                            c,
                            ProtocolMsg::BarRelease { id: bid },
                            deps.clone(),
                        );
                    }
                }
            }
            ProtocolMsg::BarRelease { id: bid } => {
                let c = d.msg.dst.idx();
                debug_assert_eq!(self.cores[c].status, CoreStatus::WaitBarrier(bid));
                self.cores[c].status = CoreStatus::Ready;
                let waited = at.saturating_since(self.cores[c].barrier_start);
                self.cores[c].wait_barrier += waited;
                self.cores[c].last_enabler = Some(id);
                self.q.schedule(at + self.cyc(1), Ev::CoreNext(c as u16));
            }
        }
    }

    /// Has the home committed a fill of `line` that is still travelling
    /// to core `c`? (Queued requests and stale-sharer states return
    /// false — deferring on those would deadlock the directory.)
    fn fill_in_flight(&self, c: usize, line: LineAddr) -> bool {
        self.granted[c] == Some(line)
    }

    /// A fill / upgrade-ack reaches the requesting core.
    fn core_fill(
        &mut self,
        hook: &mut dyn TraceHook,
        at: SimTime,
        id: MsgId,
        c: usize,
        line: LineAddr,
        grant_m: bool,
    ) {
        debug_assert!(
            matches!(self.cores[c].status, CoreStatus::WaitFill { line: l, .. } if l == line),
            "fill for a line core {c} was not waiting on"
        );
        debug_assert_eq!(self.granted[c], Some(line), "fill without grant record");
        self.granted[c] = None;
        let waited = at.saturating_since(self.cores[c].miss_start);
        self.miss_lat_sum_ps += waited.as_ps() as u128;
        self.miss_lat_count += 1;
        self.cores[c].wait_fill += waited;
        let t = at + self.cyc(self.cfg.l1_fill_cycles);
        if let Some(meta) = self.l1[c].access(line) {
            // Upgrade of a line still resident.
            meta.m = grant_m;
        } else if let Some(victim) = self.l1[c].fill(line, L1Meta { m: grant_m }) {
            if victim.meta.m {
                let home = self.home(victim.line);
                self.send(
                    hook,
                    t,
                    c,
                    home,
                    ProtocolMsg::WbData { line: victim.line },
                    vec![id],
                );
            }
            // Clean victims drop silently; the directory keeps them as
            // stale sharers, which is safe (spurious Inv → InvAck).
        }
        self.cores[c].status = CoreStatus::Ready;
        self.cores[c].last_enabler = Some(id);
        // Replay external requests that raced this fill. They see the
        // line resident now, so the normal paths apply.
        let deferred = std::mem::take(&mut self.cores[c].deferred);
        for (ext_id, proto) in deferred {
            match proto {
                ProtocolMsg::Fetch { line: l, .. } => {
                    debug_assert_eq!(l, line);
                    self.l1[c].invalidate(l);
                    let home = self.home(l);
                    self.send(
                        hook,
                        t,
                        c,
                        home,
                        ProtocolMsg::WbData { line: l },
                        vec![ext_id, id],
                    );
                }
                ProtocolMsg::Inv { line: l, .. } => {
                    debug_assert_eq!(l, line);
                    self.l1[c].invalidate(l);
                    let home = self.home(l);
                    self.send(
                        hook,
                        t,
                        c,
                        home,
                        ProtocolMsg::InvAck { line: l },
                        vec![ext_id, id],
                    );
                }
                other => unreachable!("deferred {other:?}"),
            }
        }
        self.q.schedule(t, Ev::CoreNext(c as u16));
    }

    /// Process (or queue) a GetS/GetX at its home directory.
    #[allow(clippy::too_many_arguments)]
    fn dir_request(
        &mut self,
        hook: &mut dyn TraceHook,
        at: SimTime,
        req_id: MsgId,
        line: LineAddr,
        requester: u16,
        is_x: bool,
        mut extra_deps: Vec<MsgId>,
    ) {
        if self.busy.contains_key(&line.0) {
            self.queued.entry(line.0).or_default().push_back(QueuedReq {
                req_id,
                requester,
                is_x,
            });
            return;
        }
        let home = self.home(line);
        let t = at + self.cyc(self.cfg.dir_cycles);
        let r = requester as usize;
        let mut deps = vec![req_id];
        deps.append(&mut extra_deps);
        let state = *self.dir.get(&line.0).unwrap_or(&DirState::Uncached);
        match state {
            DirState::Modified(owner) if owner == requester => {
                // The registered owner re-requests: it has evicted the
                // line and its WbData is already in flight — wait for it
                // instead of fetching from ourselves.
                self.busy.insert(
                    line.0,
                    Txn {
                        requester,
                        is_x,
                        kind: TxnKind::WaitWb,
                        deps,
                    },
                );
            }
            DirState::Modified(owner) => {
                self.busy.insert(
                    line.0,
                    Txn {
                        requester,
                        is_x,
                        kind: TxnKind::WaitFetch,
                        deps,
                    },
                );
                self.send(
                    hook,
                    t,
                    home,
                    owner as usize,
                    ProtocolMsg::Fetch { line, owner },
                    vec![req_id],
                );
            }
            DirState::Shared(sharers) if is_x => {
                let mut others = sharers;
                others.remove(r);
                if others.is_empty() {
                    // Upgrade (or takeover of a stale-sharer set).
                    let proto = if sharers.contains(r) {
                        ProtocolMsg::UpgAck {
                            line,
                            to: requester,
                        }
                    } else {
                        ProtocolMsg::Data {
                            line,
                            to: requester,
                            grant_m: true,
                        }
                    };
                    // Data needs the L2; UpgAck does not.
                    if matches!(proto, ProtocolMsg::Data { .. }) {
                        self.reply_with_data(hook, t, req_id, line, requester, true, deps);
                    } else {
                        self.dir.insert(line.0, DirState::Modified(requester));
                        self.send(hook, t, home, r, proto, deps);
                    }
                } else {
                    let pending = others.count();
                    for s in others.iter() {
                        self.send(
                            hook,
                            t,
                            home,
                            s,
                            ProtocolMsg::Inv {
                                line,
                                target: s as u16,
                            },
                            vec![req_id],
                        );
                    }
                    self.busy.insert(
                        line.0,
                        Txn {
                            requester,
                            is_x,
                            kind: TxnKind::WaitAcks { pending },
                            deps,
                        },
                    );
                }
            }
            DirState::Shared(_) | DirState::Uncached => {
                // Read from a shared/idle line, or write to an idle line.
                self.reply_with_data(hook, t, req_id, line, requester, is_x, deps);
            }
        }
    }

    /// Reply with line data, going to memory first on an L2 miss.
    #[allow(clippy::too_many_arguments)]
    fn reply_with_data(
        &mut self,
        hook: &mut dyn TraceHook,
        t: SimTime,
        req_id: MsgId,
        line: LineAddr,
        requester: u16,
        is_x: bool,
        deps: Vec<MsgId>,
    ) {
        let home = self.home(line);
        let r = requester as usize;
        if self.l2[home].access(line).is_some() {
            let t = t + self.cyc(self.cfg.l2_cycles);
            self.finish_grant(line, requester, is_x);
            self.send(
                hook,
                t,
                home,
                r,
                ProtocolMsg::Data {
                    line,
                    to: requester,
                    grant_m: is_x,
                },
                deps,
            );
            self.complete_txn(hook, t, line, req_id);
        } else {
            let (_, mc_node) = self.mem_ctrl_of(line);
            self.busy.insert(
                line.0,
                Txn {
                    requester,
                    is_x,
                    kind: TxnKind::WaitMem,
                    deps,
                },
            );
            self.send(
                hook,
                t + self.cyc(self.cfg.l2_cycles),
                home,
                mc_node,
                ProtocolMsg::MemReq { line },
                vec![req_id],
            );
        }
    }

    /// Update the directory for a completed grant.
    fn finish_grant(&mut self, line: LineAddr, requester: u16, is_x: bool) {
        let state = self.dir.entry(line.0).or_insert(DirState::Uncached);
        if is_x {
            *state = DirState::Modified(requester);
        } else {
            match state {
                DirState::Shared(s) => s.insert(requester as usize),
                _ => *state = DirState::Shared(Sharers::single(requester as usize)),
            }
        }
    }

    /// Insert data into the L2 slice, spilling a dirty victim to memory.
    fn l2_fill(
        &mut self,
        hook: &mut dyn TraceHook,
        t: SimTime,
        line: LineAddr,
        dirty: bool,
        dep: MsgId,
    ) {
        let home = self.home(line);
        if let Some(meta) = self.l2[home].access(line) {
            meta.dirty |= dirty;
            return;
        }
        if let Some(victim) = self.l2[home].fill(line, L2Meta { dirty }) {
            if victim.meta.dirty {
                let (_, mc_node) = self.mem_ctrl_of(victim.line);
                self.send(
                    hook,
                    t,
                    home,
                    mc_node,
                    ProtocolMsg::WbMem { line: victim.line },
                    vec![dep],
                );
            }
        }
    }

    fn handle_inv_ack(&mut self, hook: &mut dyn TraceHook, at: SimTime, id: MsgId, line: LineAddr) {
        let txn = self.busy.get_mut(&line.0).expect("InvAck without txn");
        txn.deps.push(id);
        let TxnKind::WaitAcks { pending } = &mut txn.kind else {
            panic!("InvAck in {:?}", txn.kind);
        };
        *pending -= 1;
        if *pending > 0 {
            return;
        }
        let txn = self
            .busy
            .remove(&line.0)
            .expect("WaitAcks txn vanished while counting acks");
        // All sharers gone. Grant ownership — via L2 if data is needed.
        let t = at + self.cyc(self.cfg.dir_cycles);
        self.reply_with_data(hook, t, id, line, txn.requester, txn.is_x, txn.deps);
        // reply_with_data either completed (and drained the queue) or
        // re-inserted a WaitMem txn; nothing more to do here.
    }

    fn handle_wb_data(&mut self, hook: &mut dyn TraceHook, at: SimTime, id: MsgId, line: LineAddr) {
        let t = at + self.cyc(self.cfg.dir_cycles);
        match self.busy.get(&line.0).map(|t| (t.clone(),)) {
            Some((txn,)) if matches!(txn.kind, TxnKind::WaitFetch | TxnKind::WaitWb) => {
                let mut txn = self
                    .busy
                    .remove(&line.0)
                    .expect("fetch/wb txn vanished while its writeback landed");
                txn.deps.push(id);
                self.l2_fill(hook, t, line, true, id);
                let home = self.home(line);
                self.finish_grant(line, txn.requester, txn.is_x);
                self.send(
                    hook,
                    t + self.cyc(self.cfg.l2_cycles),
                    home,
                    txn.requester as usize,
                    ProtocolMsg::Data {
                        line,
                        to: txn.requester,
                        grant_m: txn.is_x,
                    },
                    txn.deps,
                );
                self.complete_txn(hook, t + self.cyc(self.cfg.l2_cycles), line, id);
            }
            _ => {
                // Voluntary dirty eviction.
                match self.dir.get(&line.0) {
                    Some(DirState::Modified(_)) => {
                        self.dir.insert(line.0, DirState::Uncached);
                    }
                    other => panic!("voluntary WbData for line in {other:?}"),
                }
                self.l2_fill(hook, t, line, true, id);
            }
        }
    }

    fn handle_mem_resp(
        &mut self,
        hook: &mut dyn TraceHook,
        at: SimTime,
        id: MsgId,
        line: LineAddr,
    ) {
        let t = at + self.cyc(self.cfg.l2_cycles);
        self.l2_fill(hook, t, line, false, id);
        let mut txn = self.busy.remove(&line.0).expect("MemResp without txn");
        debug_assert!(matches!(txn.kind, TxnKind::WaitMem));
        txn.deps.push(id);
        let home = self.home(line);
        self.finish_grant(line, txn.requester, txn.is_x);
        self.send(
            hook,
            t,
            home,
            txn.requester as usize,
            ProtocolMsg::Data {
                line,
                to: txn.requester,
                grant_m: txn.is_x,
            },
            txn.deps,
        );
        self.complete_txn(hook, t, line, id);
    }

    /// After a transaction releases `line`, process the next queued
    /// request (its reply will additionally depend on `unblock`).
    fn complete_txn(
        &mut self,
        hook: &mut dyn TraceHook,
        at: SimTime,
        line: LineAddr,
        unblock: MsgId,
    ) {
        debug_assert!(!self.busy.contains_key(&line.0));
        self.last_unblock.insert(line.0, unblock);
        let Some(q) = self.queued.get_mut(&line.0) else {
            return;
        };
        let Some(req) = q.pop_front() else {
            return;
        };
        if q.is_empty() {
            self.queued.remove(&line.0);
        }
        self.dir_request(
            hook,
            at,
            req.req_id,
            line,
            req.requester,
            req.is_x,
            vec![unblock],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullHook;
    use sctm_engine::net::AnalyticNetwork;

    /// Tiny deterministic workload: each core does strided loads/stores
    /// over a shared region plus private accesses, with barriers.
    struct MiniWorkload {
        cores: usize,
        pos: Vec<usize>,
        script_len: usize,
        shared_lines: u64,
        barriers: u32,
    }

    impl MiniWorkload {
        fn new(cores: usize, script_len: usize) -> Self {
            MiniWorkload {
                cores,
                pos: vec![0; cores],
                script_len,
                shared_lines: 64,
                barriers: 2,
            }
        }
    }

    impl Workload for MiniWorkload {
        fn num_cores(&self) -> usize {
            self.cores
        }
        fn name(&self) -> &'static str {
            "mini"
        }
        fn next_op(&mut self, core: usize) -> Op {
            let i = self.pos[core];
            self.pos[core] += 1;
            let phase = self.script_len / (self.barriers as usize + 1);
            if i >= self.script_len {
                return Op::Halt;
            }
            if phase > 0 && i % phase == phase - 1 && (i / phase) < self.barriers as usize {
                return Op::Barrier((i / phase) as u32);
            }
            match i % 4 {
                0 => Op::Compute(8),
                1 => {
                    // shared read
                    let line = (core as u64 * 7 + i as u64) % self.shared_lines;
                    Op::Load(line * 64)
                }
                2 => {
                    // private access
                    Op::Load(0x1_0000_0000 + core as u64 * 0x10000 + (i as u64 % 32) * 64)
                }
                _ => {
                    // shared write — contended ownership
                    let line = (i as u64) % self.shared_lines;
                    Op::Store(line * 64)
                }
            }
        }
    }

    fn analytic_net(nodes: usize) -> Box<dyn NetworkModel> {
        Box::new(AnalyticNetwork::new(
            nodes,
            SimTime::from_ns(10),
            SimTime::from_ns(2),
            10,
        ))
    }

    fn run_mini(side: usize, ops: usize) -> CmpResult {
        let cfg = CmpConfig::tiled(side);
        let n = cfg.num_cores();
        let mut sim = CmpSim::new(cfg, analytic_net(n), Box::new(MiniWorkload::new(n, ops)));
        sim.run(&mut NullHook)
    }

    #[test]
    fn runs_to_completion_and_validates() {
        let r = run_mini(2, 200);
        assert_eq!(r.total_ops, 4 * 201); // 200 script + final Halt each
        assert!(r.exec_time > SimTime::ZERO);
        assert!(r.messages_injected > 0);
        assert_eq!(r.messages_injected, r.messages_delivered);
    }

    #[test]
    fn sharing_generates_coherence_traffic() {
        let r = run_mini(2, 400);
        // Stores to shared lines must produce invalidations → more
        // messages than the bare miss/fill pairs.
        assert!(
            r.messages_injected as f64 > (r.total_loads + r.total_stores) as f64 * 0.1,
            "implausibly little traffic: {r:?}"
        );
        assert!(r.l1_hit_rate > 0.2, "hit rate {:.2}", r.l1_hit_rate);
        assert!(r.l1_hit_rate < 0.999);
    }

    #[test]
    fn larger_mesh_has_longer_exec_time_at_same_per_core_work() {
        // More cores contending for the same shared lines.
        let small = run_mini(2, 300);
        let large = run_mini(4, 300);
        assert!(large.messages_injected > small.messages_injected);
    }

    #[test]
    fn deterministic() {
        let a = run_mini(2, 300);
        let b = run_mini(2, 300);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.messages_injected, b.messages_injected);
        assert_eq!(a.total_ops, b.total_ops);
    }

    #[test]
    fn barriers_synchronise_cores() {
        // A workload where core 0 computes much longer than others:
        // all cores must still finish after core 0 reaches the barrier.
        struct Skewed {
            pos: Vec<usize>,
        }
        impl Workload for Skewed {
            fn num_cores(&self) -> usize {
                self.pos.len()
            }
            fn name(&self) -> &'static str {
                "skewed"
            }
            fn next_op(&mut self, core: usize) -> Op {
                let i = self.pos[core];
                self.pos[core] += 1;
                match i {
                    0 => {
                        if core == 0 {
                            Op::Compute(100_000)
                        } else {
                            Op::Compute(10)
                        }
                    }
                    1 => Op::Barrier(0),
                    _ => Op::Halt,
                }
            }
        }
        let cfg = CmpConfig::tiled(2);
        let mut sim = CmpSim::new(
            cfg.clone(),
            analytic_net(4),
            Box::new(Skewed { pos: vec![0; 4] }),
        );
        let r = sim.run(&mut NullHook);
        // Everyone waits for core 0's 100k cycles at 5 GHz = 20 µs.
        assert!(
            r.exec_time >= SimTime::from_us(20),
            "barrier did not hold: {}",
            r.exec_time
        );
    }

    #[test]
    fn time_breakdown_accounts_for_barrier_skew() {
        // One slow core (long compute), three fast ones: the fast cores
        // spend most of their time at the barrier.
        struct Skew {
            pos: Vec<usize>,
        }
        impl Workload for Skew {
            fn num_cores(&self) -> usize {
                self.pos.len()
            }
            fn name(&self) -> &'static str {
                "skew"
            }
            fn next_op(&mut self, core: usize) -> Op {
                let i = self.pos[core];
                self.pos[core] += 1;
                match i {
                    0 => Op::Compute(if core == 0 { 200_000 } else { 100 }),
                    1 => Op::Barrier(0),
                    _ => Op::Halt,
                }
            }
        }
        let cfg = CmpConfig::tiled(2);
        let mut sim = CmpSim::new(cfg, analytic_net(4), Box::new(Skew { pos: vec![0; 4] }));
        let r = sim.run(&mut NullHook);
        assert!(
            r.wait_barrier_frac > 0.5,
            "barrier skew invisible in breakdown: {:.2}",
            r.wait_barrier_frac
        );
        assert!(r.wait_fill_frac < 0.2);
        assert!(r.wait_fill_frac + r.wait_barrier_frac <= 1.01);
    }

    #[test]
    fn time_breakdown_shows_fill_wait_for_memory_bound_work() {
        let r = run_mini(2, 300);
        assert!(
            r.wait_fill_frac > 0.1,
            "memory-bound workload shows no fill wait: {:.3}",
            r.wait_fill_frac
        );
    }

    #[test]
    fn memory_latency_visible_in_miss_latency() {
        let r = run_mini(2, 200);
        // Cold misses go to memory: average miss must exceed the DRAM
        // latency alone at least for the cold fraction.
        assert!(
            r.avg_miss_latency_ns > 20.0,
            "misses too fast: {} ns",
            r.avg_miss_latency_ns
        );
    }

    #[test]
    fn private_data_stays_private() {
        // A workload touching only core-private lines must produce no
        // invalidations: message count ≈ 3 per miss (req, memreq chain,
        // fill) with no Inv/Fetch.
        struct Private {
            pos: Vec<usize>,
        }
        impl Workload for Private {
            fn num_cores(&self) -> usize {
                self.pos.len()
            }
            fn name(&self) -> &'static str {
                "private"
            }
            fn next_op(&mut self, core: usize) -> Op {
                let i = self.pos[core];
                self.pos[core] += 1;
                if i >= 64 {
                    Op::Halt
                } else {
                    Op::Store(0x100_0000 * (core as u64 + 1) + i as u64 * 64)
                }
            }
        }
        let cfg = CmpConfig::tiled(2);
        let mut sim = CmpSim::new(cfg, analytic_net(4), Box::new(Private { pos: vec![0; 4] }));
        let r = sim.run(&mut NullHook);
        // 4 cores × 64 cold store misses: GetX + MemReq + MemResp + Data
        // = 4 messages per miss (plus L1 writebacks of dirty victims).
        let per_miss = r.messages_injected as f64 / (4.0 * 64.0);
        assert!(
            (3.0..6.0).contains(&per_miss),
            "unexpected traffic per private miss: {per_miss}"
        );
    }
}
