//! Microbenchmarks of the discrete-event kernel — the floor under every
//! simulator's throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sctm_engine::event::{EventQueue, QueueBackend};
use sctm_engine::rng::StreamRng;
use sctm_engine::stats::Histogram;
use sctm_engine::time::SimTime;
use sctm_engine::MsgTable;
use std::collections::HashMap;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.schedule(SimTime::from_ps((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            black_box(sum)
        })
    });

    // Calendar vs heap head-to-head on the two schedules that dominate
    // capture: a dense batch drain (all events queued, then drained) and
    // a sliding hold pattern (interleaved schedule/pop with short
    // holds, the classic calendar-queue sweet spot).
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let tag = match backend {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        };
        c.bench_function(format!("event_queue/{tag}_batch_drain_8k").as_str(), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_backend(backend);
                for i in 0..8192u64 {
                    q.schedule(SimTime::from_ps((i * 7919) % 1_000_000), i);
                }
                let mut sum = 0u64;
                while let Some(e) = q.pop() {
                    sum = sum.wrapping_add(e.payload);
                }
                black_box(sum)
            })
        });
        c.bench_function(
            format!("event_queue/{tag}_sliding_hold_16k").as_str(),
            |b| {
                b.iter(|| {
                    let mut q = EventQueue::with_backend(backend);
                    let mut r = StreamRng::new(42);
                    for i in 0..256u64 {
                        q.schedule(SimTime::from_ps(i * 100), i);
                    }
                    let mut sum = 0u64;
                    for _ in 0..16_384u64 {
                        let e = q.pop().expect("queue primed");
                        sum = sum.wrapping_add(e.payload);
                        q.schedule(e.at + SimTime::from_ps(100 + r.below(5_000)), e.payload);
                    }
                    black_box(sum)
                })
            },
        );
    }
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/u64_x1k", |b| {
        let mut r = StreamRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(r.below(1_000_000));
            }
            black_box(acc)
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record_1k", |b| {
        let mut h = Histogram::new();
        b.iter(|| {
            for i in 0..1000u64 {
                h.record(i * i % 1_000_000);
            }
            black_box(h.p99())
        })
    });
}

fn bench_msg_store(c: &mut Criterion) {
    // The network models' in-flight store access pattern: a sliding
    // window of dense ids — insert, a few lookups, then retire.
    const WINDOW: u64 = 64;
    const IDS: u64 = 4096;
    c.bench_function("msg_store/msgtable_window_4k", |b| {
        b.iter(|| {
            let mut t: MsgTable<[u64; 4]> = MsgTable::new();
            let mut acc = 0u64;
            for id in 0..IDS {
                t.insert(id, [id; 4]);
                acc = acc.wrapping_add(t.get(id / 2 + id % WINDOW).map_or(0, |v| v[0]));
                if id >= WINDOW {
                    t.remove(id - WINDOW);
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("msg_store/hashmap_window_4k", |b| {
        b.iter(|| {
            let mut t: HashMap<u64, [u64; 4]> = HashMap::new();
            let mut acc = 0u64;
            for id in 0..IDS {
                t.insert(id, [id; 4]);
                acc = acc.wrapping_add(t.get(&(id / 2 + id % WINDOW)).map_or(0, |v| v[0]));
                if id >= WINDOW {
                    t.remove(&(id - WINDOW));
                }
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_rng, bench_histogram, bench_msg_store
}
criterion_main!(benches);
