//! Simulation modes and the experiment runner.
//!
//! One [`Experiment`] = one workload on one simulated system, runnable
//! in any [`Mode`]. This is the API the examples and the bench harness
//! drive; everything below it (`sctm-cmp`, `sctm-trace`, the network
//! simulators) is reachable through the re-exports in the crate root
//! for users who need more control.

use crate::config::SystemConfig;
use crate::error::SctmError;
use crate::metrics::{IterStats, RunReport};
use crate::spec::{RunOutcome, RunSpec};
use sctm_cmp::{CmpSim, NullHook};
use sctm_engine::net::{AnalyticNetwork, MsgClass, MsgLifecycle, NetworkModel, NodeId};
use sctm_engine::time::SimTime;
use sctm_obs as obs;
use sctm_trace::replay::{
    pair_corrections, replay_fixed, replay_fixed_budgeted, replay_oracle, replay_sctm_pass,
    replay_sctm_pass_with, ReplayScratch,
};
use sctm_trace::{Capture, IncrReplayer, OnlineCorrected, PassKind, TraceLog};
use sctm_workloads::{build, Kernel, WorkloadParams};
use std::time::Instant;

/// How to simulate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Mode {
    /// Full co-simulation of CMP and the detailed network (reference).
    ExecutionDriven,
    /// Capture on the analytic model, replay timestamps verbatim on the
    /// detailed network (the strawman).
    ClassicTrace,
    /// Capture on the analytic model, self-correcting replay on the
    /// detailed network (the paper's contribution).
    SelfCorrection { max_iters: usize },
    /// Capture on the analytic model, full-causality replay (accuracy
    /// ceiling of trace-driven methods).
    OracleTrace,
    /// Execution-driven on the analytic model with epoch-based shadow
    /// correction against the detailed network (extension variant).
    Online { epoch: SimTime },
}

impl Mode {
    pub fn label(self) -> &'static str {
        match self {
            Mode::ExecutionDriven => "exec-driven",
            Mode::ClassicTrace => "classic-trace",
            Mode::SelfCorrection { .. } => "sctm",
            Mode::OracleTrace => "oracle-trace",
            Mode::Online { .. } => "online",
        }
    }
}

/// Everything a profiled run captured, ready for `sctm-prof` analysis:
/// the trace (dependency DAG), the per-message lifecycle records from
/// the detailed replay, and the sampled time-series gauges.
pub struct ProfileCapture {
    pub log: TraceLog,
    pub lifecycles: Vec<MsgLifecycle>,
    pub series: obs::SeriesStore,
}

/// Sampling interval for profiled runs: ~100 snapshots across the
/// run, floored at 1 ns so degenerate tiny runs still sample.
fn profile_interval(total: SimTime) -> SimTime {
    SimTime::from_ps((total.as_ps() / 100).max(1_000))
}

/// A workload bound to a simulated system.
#[derive(Clone, Debug)]
pub struct Experiment {
    pub system: SystemConfig,
    pub kernel: Kernel,
    pub ops_per_core: usize,
    pub seed: u64,
    /// Worker threads for the capture runs (`0` = read `SCTM_THREADS`,
    /// default 1 = sequential). Any value produces byte-identical
    /// results; >1 shards the full-system simulation across threads.
    pub capture_threads: usize,
    /// Weight of the *new* correction factor in the damped warm-start
    /// update `corr ← (1−α)·corr + α·measured`. The default `1.0`
    /// (undamped) converges fastest on the shipped network models —
    /// measured factor movement collapses below 10% after a single
    /// full update and further iterations over-correct. Lower the
    /// weight on targets whose re-captures oscillate (each re-capture
    /// overshoots the contention the previous correction absorbed).
    pub damping: f64,
    /// Early-exit threshold on the correction table itself, compared
    /// against the *message-weighted mean* relative factor movement of
    /// an iteration ([`IterStats::factor_move`]): when the factors the
    /// traffic actually exercises have stopped moving, the next
    /// re-capture cannot meaningfully differ, so the loop stops
    /// without paying for a confirmation capture. Weighting by message
    /// count keeps rare flapping pairs from masking convergence. `0`
    /// disables.
    pub factor_epsilon: f64,
    /// Reuse replay work across self-correction iterations via
    /// dirty-frontier checkpoints ([`sctm_trace::IncrReplayer`]).
    /// Bit-identical to from-scratch replay at every iteration — the
    /// switch exists for A/B measurement and as an escape hatch, not
    /// because the results differ. Default on.
    pub incremental: bool,
}

impl Experiment {
    pub fn new(system: SystemConfig, kernel: Kernel) -> Self {
        Experiment {
            system,
            kernel,
            ops_per_core: 1_500,
            seed: 1,
            capture_threads: 0,
            damping: 1.0,
            factor_epsilon: 0.10,
            incremental: true,
        }
    }

    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops_per_core = ops;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pin the capture worker-thread count (bypassing `SCTM_THREADS`).
    pub fn with_capture_threads(mut self, threads: usize) -> Self {
        self.capture_threads = threads;
        self
    }

    /// Set the correction-update damping weight (see [`Experiment::damping`]).
    pub fn with_damping(mut self, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "damping weight must be in [0, 1]"
        );
        self.damping = alpha;
        self
    }

    /// Set the factor-table convergence threshold (see
    /// [`Experiment::factor_epsilon`]).
    pub fn with_factor_epsilon(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0);
        self.factor_epsilon = eps;
        self
    }

    /// Enable or disable incremental self-correction replay (see
    /// [`Experiment::incremental`]).
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Capture shard count actually in effect: the explicit setting, or
    /// the `SCTM_THREADS` environment default, clamped to the core count
    /// (an empty shard would only add barrier crossings).
    fn resolved_capture_threads(&self) -> usize {
        let t = if self.capture_threads == 0 {
            sctm_engine::par::capture_threads()
        } else {
            self.capture_threads
        };
        t.clamp(1, self.system.cores())
    }

    fn workload(&self) -> Box<sctm_workloads::ScriptWorkload> {
        Box::new(build(
            self.kernel,
            WorkloadParams::new(self.system.cores(), self.ops_per_core, self.seed),
        ))
    }

    /// Capture a trace of this experiment on the analytic model.
    /// Captures are reusable across replay modes and target networks.
    pub fn capture(&self) -> TraceLog {
        self.capture_on(SystemConfig::analytic(self.system.cores()))
    }

    /// Capture on a specific (possibly correction-loaded) analytic
    /// model instance — the re-capture step of the self-correction loop.
    ///
    /// With more than one capture thread in effect this shards the
    /// full-system simulation across workers (`sctm_cmp::par`); the
    /// canonical trace is byte-identical to the sequential capture.
    pub fn capture_on(&self, model: AnalyticNetwork) -> TraceLog {
        let _span = obs::span("sctm", "capture");
        let threads = self.resolved_capture_threads();
        // Coherence workloads generate ~3 messages per op; pre-sizing
        // the capture buffers avoids re-copying tens of MB of records
        // as they double at full-system scale.
        let est_msgs = self.ops_per_core * self.system.cores() * 3;
        if threads <= 1 {
            let mut sim = CmpSim::new(self.system.cmp.clone(), Box::new(model), self.workload());
            let mut cap = Capture::with_capacity(est_msgs);
            let res = sim.run(&mut cap);
            return cap.finish("analytic", res.exec_time);
        }
        // Conservative lookahead: no message of either class can cross
        // nodes faster than this under the model's current corrections.
        let lookahead = model.min_cross_latency(&[
            (MsgClass::Control, self.system.cmp.ctrl_bytes),
            (MsgClass::Data, self.system.cmp.data_bytes),
        ]);
        let nets: Vec<Box<dyn NetworkModel>> = (0..threads)
            .map(|_| Box::new(model.clone()) as Box<dyn NetworkModel>)
            .collect();
        let workloads: Vec<Box<dyn sctm_cmp::Workload>> = (0..threads)
            .map(|_| self.workload() as Box<dyn sctm_cmp::Workload>)
            .collect();
        let hooks: Vec<Capture> = (0..threads)
            .map(|_| Capture::with_capacity(est_msgs / threads + 1))
            .collect();
        let (res, hooks) =
            sctm_cmp::par::run_sharded(&self.system.cmp, nets, workloads, hooks, lookahead);
        Capture::merge(hooks).finish("analytic", res.exec_time)
    }

    /// A copy of this experiment with the spec's per-run knob overrides
    /// applied (`None` fields inherit; spec validation has already
    /// range-checked the `Some` ones).
    fn with_spec_overrides(&self, spec: &RunSpec) -> Experiment {
        let mut e = self.clone();
        if let Some(a) = spec.damping {
            e.damping = a;
        }
        if let Some(eps) = spec.factor_epsilon {
            e.factor_epsilon = eps;
        }
        if let Some(inc) = spec.incremental {
            e.incremental = inc;
        }
        e
    }

    /// Run one simulation request. This is the single entry point the
    /// examples, the bench harness and the `sctmd` batch service all
    /// use; the old `run_*` fan remains as deprecated wrappers around
    /// it. The spec is validated up front, so a malformed request
    /// surfaces as a typed [`SctmError`] instead of a panic.
    pub fn execute(&self, spec: &RunSpec) -> Result<RunOutcome, SctmError> {
        self.execute_seeded(spec, None)
    }

    /// [`Experiment::execute`] with an optional pre-captured trace.
    ///
    /// Trace modes normally capture internally; passing `seed` replaces
    /// that capture with an existing trace of *this same experiment*
    /// (same kernel, system size, ops, seed — the caller's contract,
    /// which the `sctmd` capture cache keys on). Because an uncorrected
    /// capture is deterministic, a seeded run is byte-identical to an
    /// unseeded one; it just skips the most expensive phase. For the
    /// full self-correction loop the seed stands in for iteration 1's
    /// capture only — later iterations re-capture on the corrected
    /// model by design.
    pub fn execute_seeded(
        &self,
        spec: &RunSpec,
        seed: Option<&TraceLog>,
    ) -> Result<RunOutcome, SctmError> {
        spec.validate()?;
        let traceless = matches!(spec.mode, Mode::ExecutionDriven | Mode::Online { .. });
        if seed.is_some() && traceless {
            return Err(SctmError::InvalidSpec(format!(
                "a seed trace is meaningless for {}",
                spec.mode.label()
            )));
        }
        let exp = self.with_spec_overrides(spec);
        let wall0 = Instant::now();
        let mut profile_log: Option<TraceLog> = None;
        let mut report = match spec.mode {
            Mode::ExecutionDriven => exp.exec_driven_report(),
            Mode::Online { epoch } => exp.online_report(epoch),
            Mode::SelfCorrection { max_iters } if !spec.replay_only => {
                let r = exp.self_correction_report(max_iters, seed);
                if spec.profile {
                    // The loop consumed its traces; profile on a fresh
                    // (equivalent) uncorrected capture, exactly as the
                    // old profiled entry point did.
                    profile_log = Some(match seed {
                        Some(l) => l.clone(),
                        None => exp.capture(),
                    });
                }
                r
            }
            mode => {
                let owned;
                let log = match seed {
                    Some(l) => l,
                    None => {
                        owned = exp.capture();
                        &owned
                    }
                };
                let r = exp.replay_report(log, mode, spec.replay_batch_budget)?;
                if spec.profile {
                    profile_log = Some(log.clone());
                }
                r
            }
        };
        report.wall = wall0.elapsed();
        let profile = profile_log.map(|l| exp.profile_replay(&l, spec.mode));
        Ok(RunOutcome { report, profile })
    }

    /// Run in the given mode. Trace modes capture internally.
    #[deprecated(since = "0.1.0", note = "use Experiment::execute(&RunSpec::new(mode))")]
    pub fn run(&self, mode: Mode) -> RunReport {
        self.execute(&RunSpec::new(mode))
            .expect("invalid mode parameters")
            .report
    }

    /// The full self-correction loop.
    #[deprecated(
        since = "0.1.0",
        note = "use Experiment::execute(&RunSpec::self_correction(max_iters))"
    )]
    pub fn run_self_correction(&self, max_iters: usize) -> RunReport {
        self.execute(&RunSpec::self_correction(max_iters))
            .expect("invalid iteration cap")
            .report
    }

    /// The full self-correction loop plus profiling artefacts.
    #[deprecated(
        since = "0.1.0",
        note = "use Experiment::execute(&RunSpec::self_correction(max_iters).profiled())"
    )]
    pub fn run_self_correction_profiled(&self, max_iters: usize) -> (RunReport, ProfileCapture) {
        let out = self
            .execute(&RunSpec::self_correction(max_iters).profiled())
            .expect("invalid iteration cap");
        (
            out.report,
            out.profile.expect("profiled run yields a profile"),
        )
    }

    /// Replay a previously captured trace in a trace mode, with
    /// profiling artefacts.
    #[deprecated(
        since = "0.1.0",
        note = "use Experiment::execute_seeded(&RunSpec::new(mode).replay_only().profiled(), Some(log))"
    )]
    pub fn run_with_trace_profiled(
        &self,
        log: &TraceLog,
        mode: Mode,
    ) -> (RunReport, ProfileCapture) {
        let out = self
            .execute_seeded(&RunSpec::new(mode).replay_only().profiled(), Some(log))
            .expect("run_with_trace_profiled needs a trace mode");
        (
            out.report,
            out.profile.expect("profiled run yields a profile"),
        )
    }

    /// Execution-driven co-simulation on the configured network.
    #[deprecated(
        since = "0.1.0",
        note = "use Experiment::execute(&RunSpec::exec_driven())"
    )]
    pub fn run_execution_driven(&self) -> RunReport {
        self.execute(&RunSpec::exec_driven())
            .expect("exec-driven specs are always valid")
            .report
    }

    /// Replay a previously captured trace in a trace mode (for
    /// [`Mode::SelfCorrection`], a *single* self-correcting pass).
    /// `wall_start`, when given, folds the capture cost into the
    /// reported wall time.
    #[deprecated(
        since = "0.1.0",
        note = "use Experiment::execute_seeded(&RunSpec::new(mode).replay_only(), Some(log))"
    )]
    pub fn run_with_trace(
        &self,
        log: &TraceLog,
        mode: Mode,
        wall_start: Option<Instant>,
    ) -> RunReport {
        let mut report = self
            .execute_seeded(&RunSpec::new(mode).replay_only(), Some(log))
            .expect("run_with_trace needs a trace mode")
            .report;
        if let Some(wall0) = wall_start {
            report.wall = wall0.elapsed();
        }
        report
    }

    /// Execution-driven on the online-corrected analytic model.
    #[deprecated(
        since = "0.1.0",
        note = "use Experiment::execute(&RunSpec::online(epoch))"
    )]
    pub fn run_online(&self, epoch: SimTime) -> RunReport {
        self.execute(&RunSpec::online(epoch))
            .expect("invalid epoch")
            .report
    }

    /// The full self-correction loop (the paper's simulation flow):
    ///
    /// 1. capture the workload on the cheap analytic model (iteration 1
    ///    may substitute a pre-captured `seed` trace — an uncorrected
    ///    capture is deterministic, so the result is identical);
    /// 2. replay the trace through the detailed target network with the
    ///    self-correcting gated pass;
    /// 3. derive per-(src,dst) latency correction factors from the
    ///    replay and install them in the analytic model;
    /// 4. re-capture (the full-system run now sees target-like
    ///    latencies, so message timing *and interleaving* adjust) and
    ///    repeat until the execution-time estimate stabilises.
    fn self_correction_report(&self, max_iters: usize, seed: Option<&TraceLog>) -> RunReport {
        let wall0 = Instant::now();
        let side = self.system.side;
        let kind = self.system.network;
        let mut model = SystemConfig::analytic(self.system.cores());
        let mut iters = Vec::new();
        let mut prev_est = SimTime::ZERO;
        let mut last: Option<(TraceLog, sctm_trace::ReplayResult)> = None;
        // One replay arena for the whole loop: every iteration replays a
        // same-shaped trace, so the buffers are paid for once.
        let mut scratch = ReplayScratch::new();
        // Incremental engine, alive across iterations so its
        // checkpoints and previous-pass inputs carry over.
        let mut incr = self.incremental.then(IncrReplayer::new);
        // Convergence observability: the drift ledger exists only while
        // recording is on; the verdict inputs (drift/signed-movement
        // history) are a handful of scalar pushes and always tracked,
        // so the verdict never depends on the recording state.
        let mut conv = (obs::enabled() && obs::conv_enabled())
            .then(|| obs::ConvTracker::new(kind.label(), self.kernel.label(), self.damping));
        let mut drift_hist: Vec<u64> = Vec::with_capacity(max_iters);
        let mut signed_hist: Vec<f64> = Vec::with_capacity(max_iters);
        let mut last_factor_move = 0.0f64;
        let mut exit_verdict: Option<obs::ConvergenceVerdict> = None;
        // Relative convergence threshold: 0.5% of the estimate.
        for it in 1..=max_iters {
            let _iter_span = obs::span("sctm", "iteration");
            let iter_wall = Instant::now();
            // Iteration 1 runs on the uncorrected model, so a cached
            // capture of this experiment substitutes exactly.
            let log = match seed {
                Some(s) if it == 1 => s.clone(),
                _ => self.capture_on(model.clone()),
            };
            if it == 1 {
                prev_est = log.capture_exec_time;
            }
            let mut net = SystemConfig::make_network_kind(side, kind);
            let mut incr_decision: Option<obs::IncrDecision> = None;
            let result = {
                let _span = obs::span("sctm", "replay");
                match &mut incr {
                    Some(engine) => {
                        let (result, pass) = engine.replay(&log, &mut net, &mut scratch);
                        if conv.is_some() {
                            incr_decision = Some(obs::IncrDecision {
                                kind: pass.kind_label(),
                                cause: pass.cause(),
                                dirty: pass.dirty,
                                trace_len: pass.trace_len,
                                prev_len: pass.prev_len,
                                epochs_restored: pass.epochs_restored,
                                epochs_replayed: pass.epochs_replayed,
                            });
                        }
                        if obs::enabled() {
                            obs::with_global(|reg| {
                                reg.counter_add(
                                    match pass.kind {
                                        PassKind::Full => "sctm.incr.passes_full",
                                        PassKind::Spliced => "sctm.incr.passes_spliced",
                                        PassKind::Resumed { .. } => "sctm.incr.passes_resumed",
                                    },
                                    1,
                                );
                                reg.counter_add("sctm.incr.dirty_messages", pass.dirty);
                                reg.counter_add("sctm.incr.epochs_restored", pass.epochs_restored);
                                reg.counter_add("sctm.incr.epochs_replayed", pass.epochs_replayed);
                                reg.gauge_set(
                                    "sctm.incr.checkpoint_bytes",
                                    pass.checkpoint_bytes as f64,
                                );
                            });
                        }
                        result
                    }
                    None => replay_sctm_pass_with(&log, net.as_mut(), &mut scratch),
                }
            };
            if obs::enabled() {
                obs::with_global(|reg| {
                    obs::publish_network(reg, net.as_ref(), result.est_exec_time)
                });
            }
            let est = result.est_exec_time;
            let drift = est.abs_diff(prev_est);
            // Damped warm-start update: the factor table carries over
            // from the previous iteration (warm start) and each new
            // measurement is blended in with weight α (an undamped loop
            // oscillates: each re-capture overshoots the contention the
            // previous correction just absorbed). `factor_move` is the
            // message-weighted mean relative change the factors actually
            // took, measured after clamping/quantisation so it reflects
            // what the next capture would really see. Weighting by each
            // pair's message count matters: rare pairs' factors flap by
            // whole multiples from iteration to iteration without moving
            // the estimate, so an unweighted max never settles.
            let corr_span = obs::span("sctm", "correct");
            let corr = pair_corrections(&log, &result, |m| model.base_latency(m));
            let alpha = self.damping;
            let (mut moved_weighted, mut signed_weighted, mut weight) = (0.0f64, 0.0f64, 0.0f64);
            let mut pair_moves: Vec<obs::PairMove> = Vec::new();
            if conv.is_some() {
                pair_moves.reserve(corr.len());
            }
            for &((s, d, class), f, count) in &corr {
                let old = model.correction(NodeId(s), NodeId(d), class);
                model.set_correction(NodeId(s), NodeId(d), class, (1.0 - alpha) * old + alpha * f);
                let installed = model.correction(NodeId(s), NodeId(d), class);
                let moved = (installed - old).abs() / old.abs().max(1e-12);
                moved_weighted += moved * count as f64;
                signed_weighted += (installed - old) / old.abs().max(1e-12) * count as f64;
                weight += count as f64;
                if conv.is_some() {
                    pair_moves.push(obs::PairMove {
                        src: s,
                        dst: d,
                        class: class.label(),
                        factor_old: old,
                        factor_measured: f,
                        factor_new: installed,
                        messages: count,
                    });
                }
            }
            let factor_move = if weight > 0.0 {
                moved_weighted / weight
            } else {
                0.0
            };
            let signed_move = if weight > 0.0 {
                signed_weighted / weight
            } else {
                0.0
            };
            drop(corr_span);
            // Note: per-destination service learning
            // (`dst_service_estimates`) is deliberately NOT applied
            // here. It can model single-reader bottlenecks (MWSR home
            // channels under all-to-all load) but double-counts
            // queueing already absorbed into the pair means for
            // hot-read patterns — the A1 ablation quantifies both
            // directions. For arbitration-heavy targets the online
            // variant (`Mode::Online`) is the robust choice.
            iters.push(IterStats {
                iteration: it,
                est_exec_time: est,
                drift,
                corrections: corr.len(),
                factor_move,
                messages: log.len() as u64,
            });
            obs::record_iteration(obs::IterTelemetry {
                network: kind.label(),
                workload: self.kernel.label(),
                iteration: it as u32,
                est_ps: est.as_ps(),
                drift_ps: drift.as_ps(),
                corrections: corr.len() as u64,
                messages: log.len() as u64,
                wall_ns: iter_wall.elapsed().as_nanos() as u64,
            });
            if let Some(c) = conv.as_mut() {
                c.record_iteration(
                    it as u32,
                    est.as_ps(),
                    drift.as_ps(),
                    factor_move,
                    signed_move,
                    &pair_moves,
                    incr_decision,
                );
            }
            drift_hist.push(drift.as_ps());
            signed_hist.push(signed_move);
            last_factor_move = factor_move;
            prev_est = est;
            last = Some((log, result));
            if drift.as_ps() * 200 < est.as_ps() {
                exit_verdict = Some(obs::ConvergenceVerdict::ConvergedDrift);
                break; // < 0.5% movement of the estimate
            }
            if self.factor_epsilon > 0.0 && factor_move < self.factor_epsilon {
                // The correction table itself has stabilised: the next
                // re-capture would see (quantised) factors within ε of
                // the ones that produced this iteration, so skip the
                // confirmation capture entirely.
                exit_verdict = Some(obs::ConvergenceVerdict::ConvergedFactorEpsilon);
                break;
            }
        }
        // No exit tripped: let the detectors name the failure mode.
        // The stall threshold is the run's own factor-ε when it has
        // one (an exit would have fired first, so this only matters
        // with the ε-exit disabled, where the default applies).
        let verdict = exit_verdict.unwrap_or_else(|| {
            let stall_eps = if self.factor_epsilon > 0.0 {
                self.factor_epsilon
            } else {
                sctm_obs::conv::DEFAULT_STALL_EPSILON
            };
            obs::classify_unconverged(&drift_hist, &signed_hist, last_factor_move, stall_eps)
        });
        if let Some(c) = conv {
            c.finish(verdict);
        }
        let (log, result) = last.unwrap();
        RunReport {
            mode: Mode::SelfCorrection { max_iters }.label(),
            network: kind.label(),
            workload: self.kernel.label(),
            exec_time: result.est_exec_time,
            mean_lat_ctrl_ns: result.mean_latency_ns(&log, Some(MsgClass::Control)),
            mean_lat_data_ns: result.mean_latency_ns(&log, Some(MsgClass::Data)),
            messages: log.len() as u64,
            wall: wall0.elapsed(),
            iterations: Some(iters),
            verdict: Some(verdict),
        }
    }

    /// The instrumented replay shared by the profiled entry points:
    /// lifecycle capture enabled on the detailed network, the whole
    /// thing wrapped in a sampling decorator for time-series gauges.
    fn profile_replay(&self, log: &TraceLog, mode: Mode) -> ProfileCapture {
        let _span = obs::span("sctm", "profile");
        let side = self.system.side;
        let kind = self.system.network;
        let interval = profile_interval(log.capture_exec_time);
        let mut net =
            obs::SampledNetwork::new(SystemConfig::make_network_kind(side, kind), interval);
        net.set_lifecycle_capture(true);
        match mode {
            Mode::ClassicTrace => {
                replay_fixed(log, &mut net);
            }
            Mode::OracleTrace => {
                replay_oracle(log, &mut net);
            }
            Mode::SelfCorrection { .. } => {
                replay_sctm_pass(log, &mut net);
            }
            _ => panic!("profile_replay called with non-trace mode {mode:?}"),
        }
        let mut lifecycles = Vec::new();
        net.take_lifecycles(&mut lifecycles);
        let (_, series) = net.into_parts();
        ProfileCapture {
            log: log.clone(),
            lifecycles,
            series,
        }
    }

    /// Execution-driven co-simulation on the configured network.
    fn exec_driven_report(&self) -> RunReport {
        let wall0 = Instant::now();
        let mut sim = CmpSim::new(
            self.system.cmp.clone(),
            self.system.make_network(),
            self.workload(),
        );
        let res = sim.run(&mut NullHook);
        if obs::enabled() {
            obs::with_global(|reg| obs::publish_network(reg, sim.network(), res.exec_time));
        }
        let stats = sim.network().stats();
        RunReport {
            mode: Mode::ExecutionDriven.label(),
            network: self.system.network.label(),
            workload: self.kernel.label(),
            exec_time: res.exec_time,
            mean_lat_ctrl_ns: stats.ctrl_latency_ps.mean() / 1000.0,
            mean_lat_data_ns: stats.data_latency_ps.mean() / 1000.0,
            messages: res.messages_injected,
            wall: wall0.elapsed(),
            iterations: None,
            verdict: None,
        }
    }

    /// Replay a previously captured trace in a trace mode (for
    /// [`Mode::SelfCorrection`], this is a *single* self-correcting
    /// pass on the given trace — the full loop with re-capture is
    /// the non-`replay_only` path of [`Experiment::execute`]).
    ///
    /// `budget` (classic trace only) caps the replay at that many
    /// network advancement steps; exceeding it returns
    /// [`SctmError::BudgetExhausted`] — the congestion-collapse guard
    /// for open-loop replay of a saturated target.
    fn replay_report(
        &self,
        log: &TraceLog,
        mode: Mode,
        budget: Option<u64>,
    ) -> Result<RunReport, SctmError> {
        let wall0 = Instant::now();
        let side = self.system.side;
        let kind = self.system.network;
        let mut net = SystemConfig::make_network_kind(side, kind);
        let result = {
            let _span = obs::span("sctm", "replay");
            match (mode, budget) {
                (Mode::ClassicTrace, Some(b)) => {
                    replay_fixed_budgeted(log, net.as_mut(), &mut ReplayScratch::new(), b)
                        .map_err(|batches| SctmError::BudgetExhausted { batches })?
                }
                (Mode::ClassicTrace, None) => replay_fixed(log, net.as_mut()),
                (Mode::OracleTrace, _) => replay_oracle(log, net.as_mut()),
                (Mode::SelfCorrection { .. }, _) => replay_sctm_pass(log, net.as_mut()),
                _ => panic!("run_with_trace called with non-trace mode {mode:?}"),
            }
        };
        if obs::enabled() {
            obs::with_global(|reg| obs::publish_network(reg, net.as_ref(), result.est_exec_time));
        }
        Ok(RunReport {
            mode: mode.label(),
            network: kind.label(),
            workload: self.kernel.label(),
            exec_time: result.est_exec_time,
            mean_lat_ctrl_ns: result.mean_latency_ns(log, Some(MsgClass::Control)),
            mean_lat_data_ns: result.mean_latency_ns(log, Some(MsgClass::Data)),
            messages: log.len() as u64,
            wall: wall0.elapsed(),
            iterations: None,
            verdict: None,
        })
    }

    /// Execution-driven on the online-corrected analytic model (shadow
    /// = the configured detailed network).
    fn online_report(&self, epoch: SimTime) -> RunReport {
        let wall0 = Instant::now();
        let analytic = SystemConfig::analytic(self.system.cores());
        let side = self.system.side;
        let kind = self.system.network;
        let make_shadow: sctm_trace::ShadowFactory =
            Box::new(move || SystemConfig::make_network_kind(side, kind));
        let net = Box::new(OnlineCorrected::new(analytic, make_shadow, epoch));
        let mut sim = CmpSim::new(self.system.cmp.clone(), net, self.workload());
        let res = sim.run(&mut NullHook);
        if obs::enabled() {
            obs::with_global(|reg| obs::publish_network(reg, sim.network(), res.exec_time));
        }
        let stats = sim.network().stats();
        RunReport {
            mode: Mode::Online { epoch }.label(),
            network: self.system.network.label(),
            workload: self.kernel.label(),
            exec_time: res.exec_time,
            mean_lat_ctrl_ns: stats.ctrl_latency_ps.mean() / 1000.0,
            mean_lat_data_ns: stats.data_latency_ps.mean() / 1000.0,
            messages: res.messages_injected,
            wall: wall0.elapsed(),
            iterations: None,
            verdict: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkKind;
    use crate::metrics::accuracy;

    fn exp(kind: NetworkKind) -> Experiment {
        Experiment::new(SystemConfig::new(4, kind), Kernel::Fft).with_ops(300)
    }

    fn go(e: &Experiment, spec: &RunSpec) -> RunReport {
        e.execute(spec).unwrap().report
    }

    #[test]
    fn execution_driven_runs_on_all_networks() {
        for kind in NetworkKind::DETAILED {
            let r = go(&exp(kind), &RunSpec::exec_driven());
            assert!(r.exec_time > SimTime::ZERO, "{}", kind.label());
            assert!(r.messages > 0);
            assert_eq!(r.network, kind.label());
        }
    }

    #[test]
    fn trace_modes_run_and_sctm_beats_classic_on_omesh() {
        let e = exp(NetworkKind::Omesh);
        let reference = go(&e, &RunSpec::exec_driven());
        let log = e.capture();
        let classic = e
            .execute_seeded(&RunSpec::classic().replay_only(), Some(&log))
            .unwrap()
            .report;
        let sctm = go(&e, &RunSpec::self_correction(4));
        let acc_classic = accuracy(&classic, &reference);
        let acc_sctm = accuracy(&sctm, &reference);
        assert!(
            acc_sctm.exec_time_err_pct < acc_classic.exec_time_err_pct,
            "sctm {:.1}% !< classic {:.1}%",
            acc_sctm.exec_time_err_pct,
            acc_classic.exec_time_err_pct
        );
        assert!(
            acc_sctm.exec_time_err_pct < 10.0,
            "sctm error {:.1}%",
            acc_sctm.exec_time_err_pct
        );
        let iters = sctm.iterations.as_ref().unwrap();
        assert!(!iters.is_empty() && iters.len() <= 4);
    }

    #[test]
    fn self_correction_converges() {
        let e = exp(NetworkKind::Omesh);
        let r = go(&e, &RunSpec::self_correction(6));
        let iters = r.iterations.as_ref().unwrap();
        // Drift must shrink substantially from the first iteration.
        let first = iters.first().unwrap().drift.as_ps();
        let last = iters.last().unwrap().drift.as_ps();
        assert!(
            last < first || iters.len() == 1,
            "no convergence: first drift {first}, last {last}"
        );
    }

    #[test]
    fn factor_epsilon_early_exit_never_needs_more_iterations() {
        let e = exp(NetworkKind::Omesh);
        let strict = go(&e, &RunSpec::self_correction(6).with_factor_epsilon(0.0));
        let loose = go(&e, &RunSpec::self_correction(6).with_factor_epsilon(0.5));
        let n_strict = strict.iterations.as_ref().unwrap().len();
        let n_loose = loose.iterations.as_ref().unwrap().len();
        assert!(
            n_loose <= n_strict,
            "loose ε took {n_loose} iters, strict took {n_strict}"
        );
    }

    #[test]
    fn damping_weight_is_configurable_and_converges() {
        // The spec-level override must behave exactly like the builder.
        let e = exp(NetworkKind::Omesh);
        let via_builder = go(&e.clone().with_damping(0.7), &RunSpec::self_correction(6));
        let via_spec = go(&e, &RunSpec::self_correction(6).with_damping(0.7));
        assert!(via_spec.exec_time > SimTime::ZERO);
        assert_eq!(via_builder.exec_time, via_spec.exec_time);
        assert_eq!(
            via_builder.iterations.as_ref().unwrap().len(),
            via_spec.iterations.as_ref().unwrap().len()
        );
    }

    #[test]
    fn oracle_is_at_least_as_good_as_classic() {
        let e = exp(NetworkKind::Emesh);
        let reference = go(&e, &RunSpec::exec_driven());
        let log = e.capture();
        let replay = |spec: RunSpec| e.execute_seeded(&spec, Some(&log)).unwrap().report;
        let classic = replay(RunSpec::classic().replay_only());
        let oracle = replay(RunSpec::oracle().replay_only());
        let a_c = accuracy(&classic, &reference).exec_time_err_pct;
        let a_o = accuracy(&oracle, &reference).exec_time_err_pct;
        assert!(a_o <= a_c + 1.0, "oracle {a_o:.1}% vs classic {a_c:.1}%");
    }

    #[test]
    fn online_mode_runs() {
        let r = go(
            &exp(NetworkKind::Omesh),
            &RunSpec::online(SimTime::from_us(5)),
        );
        assert!(r.exec_time > SimTime::ZERO);
        assert_eq!(r.mode, "online");
    }

    #[test]
    fn deterministic_reports() {
        let e = exp(NetworkKind::Emesh);
        let a = go(&e, &RunSpec::exec_driven());
        let b = go(&e, &RunSpec::exec_driven());
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn seeded_execute_is_identical_to_unseeded() {
        // The capture-cache contract: substituting a pre-captured trace
        // for the internal capture changes nothing but the wall time.
        let e = exp(NetworkKind::Omesh);
        let log = e.capture();
        for spec in [
            RunSpec::classic(),
            RunSpec::oracle(),
            RunSpec::self_correction(4).replay_only(),
            RunSpec::self_correction(4),
        ] {
            let cold = e.execute(&spec).unwrap().report;
            let warm = e.execute_seeded(&spec, Some(&log)).unwrap().report;
            assert_eq!(cold.exec_time, warm.exec_time, "{:?}", spec.mode);
            assert_eq!(cold.messages, warm.messages);
            assert_eq!(
                cold.mean_lat_ctrl_ns.to_bits(),
                warm.mean_lat_ctrl_ns.to_bits()
            );
            assert_eq!(
                cold.mean_lat_data_ns.to_bits(),
                warm.mean_lat_data_ns.to_bits()
            );
        }
    }

    #[test]
    fn seed_is_rejected_for_traceless_modes() {
        let e = exp(NetworkKind::Omesh);
        let log = e.capture();
        for spec in [RunSpec::exec_driven(), RunSpec::online(SimTime::from_us(5))] {
            let err = e.execute_seeded(&spec, Some(&log)).unwrap_err();
            assert!(matches!(err, SctmError::InvalidSpec(_)), "{err}");
        }
    }

    #[test]
    fn invalid_specs_surface_as_typed_errors_not_panics() {
        let e = exp(NetworkKind::Omesh);
        assert!(matches!(
            e.execute(&RunSpec::self_correction(0)),
            Err(SctmError::InvalidSpec(_))
        ));
        assert!(matches!(
            e.execute(&RunSpec::self_correction(2).with_damping(1.5)),
            Err(SctmError::InvalidSpec(_))
        ));
        assert!(matches!(
            e.execute(&RunSpec::exec_driven().profiled()),
            Err(SctmError::InvalidSpec(_))
        ));
    }

    #[test]
    fn incremental_toggle_is_bit_identical() {
        let e = exp(NetworkKind::Omesh);
        for spec in [
            RunSpec::self_correction(4),
            RunSpec::self_correction(4)
                .with_damping(0.0)
                .with_factor_epsilon(0.0),
        ] {
            let on = go(&e, &spec.clone().with_incremental(true));
            let off = go(&e, &spec.with_incremental(false));
            assert_eq!(on.exec_time, off.exec_time);
            assert_eq!(on.messages, off.messages);
            assert_eq!(
                on.mean_lat_ctrl_ns.to_bits(),
                off.mean_lat_ctrl_ns.to_bits()
            );
            assert_eq!(
                on.mean_lat_data_ns.to_bits(),
                off.mean_lat_data_ns.to_bits()
            );
            assert_eq!(on.iterations, off.iterations);
        }
    }

    #[test]
    fn tiny_replay_budget_trips_typed_error() {
        let e = exp(NetworkKind::Omesh);
        let log = e.capture();
        let err = e
            .execute_seeded(&RunSpec::classic().with_replay_budget(2), Some(&log))
            .unwrap_err();
        assert!(
            matches!(err, SctmError::BudgetExhausted { batches: 2 }),
            "{err}"
        );
        // A generous budget completes and matches the unbudgeted run.
        let generous = 200 * log.len() as u64;
        let ok = e
            .execute_seeded(&RunSpec::classic().with_replay_budget(generous), Some(&log))
            .unwrap()
            .report;
        let free = e
            .execute_seeded(&RunSpec::classic(), Some(&log))
            .unwrap()
            .report;
        assert_eq!(ok.exec_time, free.exec_time);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_execute() {
        let e = exp(NetworkKind::Omesh);
        let old = e.run(Mode::SelfCorrection { max_iters: 3 });
        let new = go(&e, &RunSpec::self_correction(3));
        assert_eq!(old.exec_time, new.exec_time);
        assert_eq!(old.messages, new.messages);

        let log = e.capture();
        let old = e.run_with_trace(&log, Mode::ClassicTrace, None);
        let new = e
            .execute_seeded(&RunSpec::classic().replay_only(), Some(&log))
            .unwrap()
            .report;
        assert_eq!(old.exec_time, new.exec_time);
    }
}
