//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of proptest features the test suite uses are implemented
//! here directly: integer/float range strategies, `Just`, `prop_map`,
//! weighted `prop_oneof!`, `prop::collection::vec`, `any::<T>()`, the
//! `proptest!` item macro and the `prop_assert*` assertions.
//!
//! Differences from upstream proptest, by design:
//! - no shrinking — a failing case panics with its inputs' debug output;
//! - deterministic seeding — every test derives its RNG stream from the
//!   test name, so failures reproduce exactly across runs and machines;
//! - `ProptestConfig` carries only the fields this repo sets (`cases`).

pub mod test_runner {
    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }

        /// Seed from a test name so each proptest gets its own stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Rng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`. Modulo bias is irrelevant at test scale.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Subset of proptest's config: only `cases` is honoured.
    /// `max_shrink_iters` is accepted for source compatibility with the
    /// upstream `ProptestConfig { .., ..Default::default() }` idiom
    /// (this runner does not shrink), and keeps that idiom meaningful —
    /// callers never have to spell out every field.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// A generator of values. Object safe so `prop_oneof!` can erase the
    /// concrete strategy types behind `Box<dyn Strategy<Value = V>>`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
        type Value = V;
        fn sample(&self, rng: &mut Rng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Tuples of strategies sample component-wise, left to right.
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut Rng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Weighted union over boxed strategies; built by `prop_oneof!`.
    pub struct OneOf<V> {
        entries: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u32,
    }

    impl<V> OneOf<V> {
        pub fn new(entries: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = entries.iter().map(|e| e.0).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            OneOf { entries, total }
        }

        /// Boxing helper so the macro never needs an explicit cast.
        pub fn entry<S>(weight: u32, s: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
        where
            S: Strategy<Value = V> + 'static,
        {
            (weight, Box::new(s))
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut Rng) -> V {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, s) in &self.entries {
                if pick < *w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    /// Full-range strategy for primitive types, i.e. `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn sample_any(rng: &mut Rng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn sample_any(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::sample_any(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Module re-exported as `prop` by the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` item macro: expands each `fn name(arg in strategy)`
/// into a plain `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = ($strat).sample(&mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// Weighted (`3 => strat`) or unweighted union of strategies sharing a
/// common `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::OneOf::entry($weight, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::OneOf::entry(1, $strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::Rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = Rng::new(3);
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!(ones > 800, "weight 9:1 produced only {ones}/1000");
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = prop::collection::vec(0u8..5, 2..6);
        let mut rng = Rng::new(11);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(x in 0u64..100, ys in prop::collection::vec(0i32..10, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.is_empty(), false);
        }
    }
}
