//! Property-based tests of the causal-profiling layer: the exact-sum
//! lifecycle invariant on every detailed network model, and the
//! bracketing invariants of the critical path on real profiled runs.

use proptest::prelude::*;
use sctm::prelude::*;
use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
use sctm_engine::rng::StreamRng;
use sctm_engine::time::SimTime;
use sctm_prof as prof;

fn random_traffic(nodes: usize, count: usize, seed: u64) -> Vec<(SimTime, Message)> {
    let mut rng = StreamRng::new(seed);
    (0..count as u64)
        .map(|i| {
            let src = rng.below(nodes as u64) as u32;
            let dst = rng.below(nodes as u64) as u32;
            let data = rng.chance(0.5);
            (
                SimTime::from_ns(rng.below(2_000)),
                Message {
                    id: MsgId(i),
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: if data {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    },
                    bytes: if data { 72 } else { 8 },
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// On every detailed network model, the five latency components of
    /// each captured lifecycle sum *exactly* to the measured end-to-end
    /// latency — no picosecond is unaccounted for or double-counted.
    #[test]
    fn lifecycle_components_sum_exactly_on_every_model(
        seed in 1u64..10_000,
        count in 100usize..500,
    ) {
        let msgs = random_traffic(16, count, seed);
        for kind in NetworkKind::DETAILED {
            let mut net = SystemConfig::make_network_kind(4, kind);
            net.set_lifecycle_capture(true);
            prop_assert!(net.lifecycle_capture(), "{} ignores capture", kind.label());
            for &(t, m) in &msgs {
                net.inject(t, m);
            }
            let mut out = Vec::new();
            net.drain(&mut out);
            let mut lifecycles = Vec::new();
            net.take_lifecycles(&mut lifecycles);
            prop_assert_eq!(
                lifecycles.len(),
                out.len(),
                "{}: lifecycle count != delivery count",
                kind.label()
            );
            for lc in &lifecycles {
                prop_assert_eq!(
                    lc.breakdown.total_ps(),
                    lc.latency_ps(),
                    "{}: msg {:?} components {:?} don't sum to latency",
                    kind.label(),
                    lc.msg.id,
                    lc.breakdown
                );
                prop_assert!(lc.delivered_at > lc.injected_at);
            }
        }
    }

    /// Blame aggregation is exact: per-class totals equal the sum of
    /// the individual lifecycles they aggregate.
    #[test]
    fn aggregate_blame_is_exact(seed in 1u64..10_000) {
        let msgs = random_traffic(16, 300, seed);
        let mut net = SystemConfig::make_network_kind(4, NetworkKind::Omesh);
        net.set_lifecycle_capture(true);
        for &(t, m) in &msgs {
            net.inject(t, m);
        }
        let mut out = Vec::new();
        net.drain(&mut out);
        let mut lifecycles = Vec::new();
        net.take_lifecycles(&mut lifecycles);
        let classes = prof::analyze::aggregate(&lifecycles);
        let total_msgs: u64 = classes.iter().map(|c| c.messages).sum();
        let total_lat: u64 = classes.iter().map(|c| c.latency_ps).sum();
        prop_assert_eq!(total_msgs, lifecycles.len() as u64);
        prop_assert_eq!(
            total_lat,
            lifecycles.iter().map(|l| l.latency_ps()).sum::<u64>()
        );
        for c in &classes {
            prop_assert_eq!(c.latency_ps, c.breakdown.total_ps());
        }
    }
}

/// The critical path on a real profiled run is bracketed: at least as
/// long as the slowest single message (a path of length one always
/// exists) and no longer than the whole drain (the path is a causal
/// chain inside the run).
#[test]
fn critical_path_brackets_on_real_runs() {
    for kind in [NetworkKind::Omesh, NetworkKind::Oxbar, NetworkKind::Emesh] {
        let exp = Experiment::new(SystemConfig::new(4, kind), Kernel::Fft).with_ops(200);
        let log = exp.capture();
        let spec = RunSpec::self_correction(1).replay_only().profiled();
        let profile = exp
            .execute_seeded(&spec, Some(&log))
            .expect("valid spec")
            .profile
            .expect("profiled run returns artefacts");
        assert!(!profile.lifecycles.is_empty(), "{}", kind.label());
        let cp = prof::critical_path(&profile.log, &profile.lifecycles);
        let max_single = profile
            .lifecycles
            .iter()
            .map(|l| l.latency_ps())
            .max()
            .unwrap();
        let makespan = profile
            .lifecycles
            .iter()
            .map(|l| l.delivered_at.as_ps())
            .max()
            .unwrap();
        assert!(
            cp.length_ps >= max_single,
            "{}: critical path {} < max single latency {}",
            kind.label(),
            cp.length_ps,
            max_single
        );
        assert!(
            cp.length_ps <= makespan,
            "{}: critical path {} > makespan {}",
            kind.label(),
            cp.length_ps,
            makespan
        );
        assert!(!cp.path.is_empty());
        assert_eq!(cp.length_ps, cp.blame.total_ps() + cp.dep_gap_ps);
    }
}

/// Profiled runs also hand back sampled counter series, and sampling
/// does not perturb the reported execution time.
#[test]
fn profiled_run_samples_series_without_perturbing_results() {
    let exp = Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Fft).with_ops(200);
    let log = exp.capture();
    let spec = RunSpec::self_correction(1).replay_only();
    let bare = exp
        .execute_seeded(&spec, Some(&log))
        .expect("valid spec")
        .report;
    let out = exp
        .execute_seeded(&spec.clone().profiled(), Some(&log))
        .expect("valid spec");
    let (profiled, profile) = (
        out.report,
        out.profile.expect("profiled run returns artefacts"),
    );
    assert_eq!(bare.exec_time, profiled.exec_time);
    assert!(!profile.series.is_empty(), "no counter series captured");
    assert!(profile.series.num_points() > 0);
}

/// The committed bench baseline must round-trip through the comparator
/// with zero regressions against itself (satellite for the perf gate).
#[test]
fn committed_bench_baseline_is_self_consistent() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_PR3.json");
    let text = std::fs::read_to_string(path).expect("BENCH_PR3.json missing at repo root");
    let f = prof::BenchFile::from_json(&text).expect("BENCH_PR3.json does not parse");
    assert!(!f.benches.is_empty());
    let cmp = prof::compare(&f, &f, 0.10);
    assert_eq!(cmp.common, f.benches.len());
    assert!(cmp.regressions.is_empty());
    assert!(cmp.improvements.is_empty());
    assert!(!cmp.machine_mismatch);
}
