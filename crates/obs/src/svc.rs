//! Service-layer telemetry: the live aggregate behind `sctmd`'s
//! `stats` and `metrics` verbs.
//!
//! The daemon's per-request lifecycle (accepted → queued → cache-probe
//! → capture/replay → respond) rolls up into one [`SvcStats`]: a
//! lock-cheap aggregate of saturating counters (plain relaxed
//! atomics), max gauges, and per-phase latency [`Histogram`]s behind a
//! single uncontended mutex taken **once per request**, never per
//! message. Recording is always on — live stats are the point of a
//! service — and the cost budget is held by the `srv_stats_overhead`
//! bench (≤2% on a cached replay roundtrip, gated in CI).
//!
//! Two export shapes:
//! * [`SvcSnapshot::publish`] writes the aggregate into a
//!   [`MetricsRegistry`] under the documented `srv.*` namespace
//!   (DESIGN.md §12), from which the versioned JSON `stats` snapshot is
//!   a [`crate::Manifest`];
//! * [`prometheus_text`] renders any registry as Prometheus text
//!   exposition format 0.0.4, so standard scrapers work against the
//!   daemon's TCP port.
//!
//! Snapshots are merge-able ([`SvcSnapshot::merge`] is associative and
//! commutative, like the registry's own merge discipline) and
//! individually monotone: every counter a poller reads is a relaxed
//! load of a value that only ever increases.

use crate::registry::{MetricValue, MetricsRegistry};
use crate::{json_f64, lock_unpoisoned};
use sctm_engine::stats::Histogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the `stats` verb's JSON snapshot. Bump on any field
/// removal or rename; additions are compatible.
pub const SVC_STATS_VERSION: u32 = 2;

/// One phase of the request lifecycle, measured in host microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvcPhase {
    /// Enqueue → a worker picks the request up (includes pool wait).
    Queue = 0,
    /// Capture-cache resolution, *excluding* a miss's capture time.
    CacheProbe = 1,
    /// Simulation work: capture (on a miss) plus replay/execute.
    Execute = 2,
    /// Result handoff to the response channel.
    Respond = 3,
    /// Enqueue → response sent.
    Total = 4,
}

impl SvcPhase {
    pub const ALL: [SvcPhase; 5] = [
        SvcPhase::Queue,
        SvcPhase::CacheProbe,
        SvcPhase::Execute,
        SvcPhase::Respond,
        SvcPhase::Total,
    ];

    /// Registry key (DESIGN.md §12 namespace table).
    pub fn key(self) -> &'static str {
        match self {
            SvcPhase::Queue => "srv.lat.queue_us",
            SvcPhase::CacheProbe => "srv.lat.cache_probe_us",
            SvcPhase::Execute => "srv.lat.execute_us",
            SvcPhase::Respond => "srv.lat.respond_us",
            SvcPhase::Total => "srv.lat.total_us",
        }
    }
}

/// One saturating request counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvcCounter {
    /// Requests admitted to the queue.
    Accepted = 0,
    /// Requests that ran and answered (ok or error).
    Completed = 1,
    /// Requests refused with `busy` by the bounded queue.
    Rejected = 2,
    /// Requests dropped unrun past their queue deadline.
    TimedOut = 3,
    /// Requests that ran and answered with a typed error.
    Errors = 4,
    /// Errors that were specifically `BudgetExhausted` (the §P5
    /// congestion-collapse guard tripping).
    BudgetExhausted = 5,
    /// Trace-less runs (exec-driven / online) that bypassed the cache.
    CacheBypass = 6,
    /// `stats` verb answers served.
    StatsServed = 7,
    /// `metrics` verb / HTTP scrape answers served.
    MetricsServed = 8,
}

impl SvcCounter {
    pub const ALL: [SvcCounter; 9] = [
        SvcCounter::Accepted,
        SvcCounter::Completed,
        SvcCounter::Rejected,
        SvcCounter::TimedOut,
        SvcCounter::Errors,
        SvcCounter::BudgetExhausted,
        SvcCounter::CacheBypass,
        SvcCounter::StatsServed,
        SvcCounter::MetricsServed,
    ];

    /// Registry key. `completed`/`rejected`/`timeouts` predate this
    /// module (PR 5) and keep their names; see DESIGN.md §12.
    pub fn key(self) -> &'static str {
        match self {
            SvcCounter::Accepted => "srv.accepted",
            SvcCounter::Completed => "srv.completed",
            SvcCounter::Rejected => "srv.rejected",
            SvcCounter::TimedOut => "srv.timeouts",
            SvcCounter::Errors => "srv.errors",
            SvcCounter::BudgetExhausted => "srv.budget_exhausted",
            SvcCounter::CacheBypass => "srv.cache.bypass",
            SvcCounter::StatsServed => "srv.stats_served",
            SvcCounter::MetricsServed => "srv.metrics_served",
        }
    }
}

const NC: usize = SvcCounter::ALL.len();
const NP: usize = SvcPhase::ALL.len();

/// The live service aggregate. Counters and gauges are relaxed
/// atomics; the per-phase histograms share one mutex that is locked
/// once per request (and once per snapshot).
#[derive(Default)]
pub struct SvcStats {
    counters: [AtomicU64; NC],
    in_flight: AtomicU64,
    queue_peak: AtomicU64,
    hists: Mutex<PhaseHists>,
}

#[derive(Default)]
struct PhaseHists {
    by_phase: Option<Box<[Histogram; NP]>>,
}

impl PhaseHists {
    fn get(&mut self) -> &mut [Histogram; NP] {
        // Lazy: a SvcStats that never records a latency never allocates
        // the ~20 KiB of buckets.
        self.by_phase
            .get_or_insert_with(|| Box::new(std::array::from_fn(|_| Histogram::new())))
    }
}

impl SvcStats {
    pub fn new() -> Self {
        SvcStats::default()
    }

    #[inline]
    pub fn incr(&self, c: SvcCounter) {
        self.add(c, 1);
    }

    #[inline]
    pub fn add(&self, c: SvcCounter, k: u64) {
        self.counters[c as usize].fetch_add(k, Ordering::Relaxed);
    }

    pub fn counter(&self, c: SvcCounter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// A request entered execution. Pair with [`SvcStats::exit`].
    #[inline]
    pub fn enter(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn exit(&self) {
        // Saturating: a stray exit must not wrap the gauge to 2^64.
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Record an observed queue depth; the peak is a max gauge.
    #[inline]
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one phase latency in host microseconds.
    pub fn record_us(&self, phase: SvcPhase, us: u64) {
        lock_unpoisoned(&self.hists).get()[phase as usize].record(us);
    }

    /// A point-in-time copy. Each counter is individually monotone
    /// across successive snapshots.
    pub fn snapshot(&self) -> SvcSnapshot {
        let hists = match &lock_unpoisoned(&self.hists).by_phase {
            Some(h) => (**h).clone(),
            None => std::array::from_fn(|_| Histogram::new()),
        };
        SvcSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            hists,
        }
    }
}

/// An owned copy of [`SvcStats`] at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct SvcSnapshot {
    counters: [u64; NC],
    pub in_flight: u64,
    pub queue_peak: u64,
    hists: [Histogram; NP],
}

impl Default for SvcSnapshot {
    fn default() -> Self {
        SvcSnapshot {
            counters: [0; NC],
            in_flight: 0,
            queue_peak: 0,
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl SvcSnapshot {
    pub fn counter(&self, c: SvcCounter) -> u64 {
        self.counters[c as usize]
    }

    pub fn phase(&self, p: SvcPhase) -> &Histogram {
        &self.hists[p as usize]
    }

    /// Record a phase latency directly into the snapshot (test and
    /// aggregation construction path).
    pub fn record_us(&mut self, p: SvcPhase, us: u64) {
        self.hists[p as usize].record(us);
    }

    pub fn add(&mut self, c: SvcCounter, k: u64) {
        self.counters[c as usize] = self.counters[c as usize].saturating_add(k);
    }

    /// Merge another snapshot: counters add (saturating), gauges take
    /// the max, histograms merge bucket-wise. Exactly associative and
    /// commutative, like [`MetricsRegistry::merge`], so shard
    /// aggregation is order-free.
    pub fn merge(&mut self, other: &SvcSnapshot) {
        for i in 0..NC {
            self.counters[i] = self.counters[i].saturating_add(other.counters[i]);
        }
        self.in_flight = self.in_flight.max(other.in_flight);
        self.queue_peak = self.queue_peak.max(other.queue_peak);
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Write the aggregate into `reg` under the `srv.*` namespace
    /// (DESIGN.md §12): counters, the `srv.in_flight` /
    /// `srv.queue.peak` gauges, and the per-phase latency histograms.
    pub fn publish(&self, reg: &mut MetricsRegistry) {
        for c in SvcCounter::ALL {
            reg.counter_add(c.key(), self.counter(c));
        }
        reg.gauge_set("srv.in_flight", self.in_flight as f64);
        reg.gauge_set("srv.queue.peak", self.queue_peak as f64);
        for p in SvcPhase::ALL {
            reg.hist_merge(p.key(), self.phase(p));
        }
    }
}

/// Cumulative `le` bounds for histogram exposition: decades from 1 to
/// 10^10. The registry's histograms are unit-bearing by name
/// (`*_us`, `*_ps`), so fixed decade bounds double as SLO buckets —
/// for a `*_us` latency they read as 1µs … 10⁴s.
pub const PROM_LE_BOUNDS: [u64; 11] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Map a registry key to a Prometheus metric name: `sctm_` prefix,
/// every character outside `[a-zA-Z0-9_]` becomes `_`.
pub fn prometheus_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 5);
    out.push_str("sctm_");
    for c in key.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        json_f64(v)
    }
}

/// Render a registry as Prometheus text exposition format 0.0.4.
///
/// Counters get a `_total` suffix and `# TYPE ... counter`; gauges
/// export verbatim; histograms export the full cumulative shape —
/// `_bucket{le="..."}` rows over [`PROM_LE_BOUNDS`] plus `+Inf`,
/// `_sum`, and `_count`. Keys arrive sorted (the registry is a
/// `BTreeMap`), so the document is deterministic for a given registry
/// state.
pub fn prometheus_text(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (key, value) in reg.iter() {
        let name = prometheus_name(key);
        match value {
            MetricValue::Counter(n) => {
                let _ = writeln!(out, "# HELP {name}_total SCTM counter {key}");
                let _ = writeln!(out, "# TYPE {name}_total counter");
                let _ = writeln!(out, "{name}_total {n}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# HELP {name} SCTM gauge {key}");
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", prom_f64(*v));
            }
            MetricValue::Hist(h) => {
                let _ = writeln!(out, "# HELP {name} SCTM histogram {key}");
                let _ = writeln!(out, "# TYPE {name} histogram");
                for le in PROM_LE_BOUNDS {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {}", h.count_le(le));
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_snapshot(seed: u64) -> SvcSnapshot {
        let s = SvcStats::new();
        s.add(SvcCounter::Accepted, 3 + seed);
        s.add(SvcCounter::Completed, 2 + seed);
        s.incr(SvcCounter::Rejected);
        s.enter();
        s.note_queue_depth(4 + seed);
        for i in 0..10 {
            s.record_us(SvcPhase::Total, seed * 100 + i * 7 + 1);
            s.record_us(SvcPhase::Queue, seed + i);
        }
        s.snapshot()
    }

    #[test]
    fn counters_gauges_and_phases_roundtrip() {
        let s = SvcStats::new();
        s.incr(SvcCounter::Accepted);
        s.add(SvcCounter::Accepted, 2);
        s.enter();
        s.enter();
        s.exit();
        s.note_queue_depth(9);
        s.note_queue_depth(3);
        s.record_us(SvcPhase::Execute, 1_000);
        let snap = s.snapshot();
        assert_eq!(snap.counter(SvcCounter::Accepted), 3);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.queue_peak, 9);
        assert_eq!(snap.phase(SvcPhase::Execute).count(), 1);
        assert_eq!(snap.phase(SvcPhase::Queue).count(), 0);
    }

    #[test]
    fn exit_without_enter_saturates_at_zero() {
        let s = SvcStats::new();
        s.exit();
        assert_eq!(s.snapshot().in_flight, 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (loaded_snapshot(1), loaded_snapshot(2), loaded_snapshot(3));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge not associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge not commutative");
    }

    #[test]
    fn publish_writes_the_documented_namespace() {
        let snap = loaded_snapshot(1);
        let mut reg = MetricsRegistry::new();
        snap.publish(&mut reg);
        assert_eq!(
            reg.get("srv.accepted"),
            Some(&MetricValue::Counter(snap.counter(SvcCounter::Accepted)))
        );
        assert_eq!(reg.get("srv.in_flight"), Some(&MetricValue::Gauge(1.0)));
        match reg.get("srv.lat.total_us") {
            Some(MetricValue::Hist(h)) => assert_eq!(h.count(), 10),
            other => panic!("bad total_us metric {other:?}"),
        }
        // Every published key is in the srv.* namespace.
        for (k, _) in reg.iter() {
            assert!(k.starts_with("srv."), "stray key {k}");
        }
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(prometheus_name("srv.cache.hits"), "sctm_srv_cache_hits");
        assert_eq!(
            prometheus_name("net.omesh.node003.queue_depth"),
            "sctm_net_omesh_node003_queue_depth"
        );
        assert_eq!(prometheus_name("a-b c"), "sctm_a_b_c");
    }

    #[test]
    fn prometheus_text_renders_all_three_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("srv.completed", 7);
        reg.gauge_set("srv.queue.depth", 3.0);
        for v in [5u64, 50, 5_000] {
            reg.hist_record("srv.lat.total_us", v);
        }
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE sctm_srv_completed_total counter"));
        assert!(text.contains("sctm_srv_completed_total 7"));
        assert!(text.contains("# TYPE sctm_srv_queue_depth gauge"));
        assert!(text.contains("sctm_srv_queue_depth 3"));
        assert!(text.contains("# TYPE sctm_srv_lat_total_us histogram"));
        assert!(text.contains("sctm_srv_lat_total_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sctm_srv_lat_total_us_count 3"));
        assert!(text.contains("sctm_srv_lat_total_us_sum 5055"));
        // Cumulative buckets are monotone non-decreasing.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("sctm_srv_lat_total_us_bucket") {
                let n: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(n >= last, "bucket counts regress: {line}");
                last = n;
            }
        }
        assert_eq!(last, 3);
    }

    #[test]
    fn prometheus_gauge_handles_non_finite() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("srv.bad", f64::INFINITY);
        assert!(prometheus_text(&reg).contains("sctm_srv_bad +Inf"));
    }
}
