//! # sctm-bench — the paper's evaluation, regenerated
//!
//! One function per experiment (E1–E9, see DESIGN.md §4), each
//! returning a renderable [`Table`]. The `tables` binary prints them;
//! integration tests assert their qualitative shape; the Criterion
//! benches measure the simulator throughputs behind E2/E5.
//!
//! Experiments run at two scales: [`Scale::Quick`] (CI-sized, seconds)
//! and [`Scale::Full`] (paper-sized, minutes). Shapes — who wins, by
//! what factor, where crossovers fall — must hold at both.

pub mod experiments;

pub use experiments::*;

use sctm_engine::table::Table;

/// Experiment sizing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small systems, short scripts: seconds per experiment.
    Quick,
    /// Paper-sized: 64-core flagship, longer scripts.
    Full,
}

impl Scale {
    /// Mesh side of the flagship configuration.
    pub fn side(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 8,
        }
    }

    /// Workload script length per core.
    pub fn ops(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Full => 1200,
        }
    }
}

pub use sctm_engine::par::{num_threads, serial_map};

/// Deterministic parallel sweep executor (pooled, work-queue based,
/// results in input order — see `sctm_engine::par`), shared by all
/// experiments and external drivers. Each job runs inside a
/// `sweep`/`job` tracing span so parallel sweeps appear per-job in
/// exported traces; with tracing off the wrapper costs one atomic load
/// per job.
pub fn par_map<T: Send, F: FnOnce() -> T + Send>(jobs: Vec<F>) -> Vec<T> {
    sctm_engine::par::par_map(
        jobs.into_iter()
            .map(|job| {
                move || {
                    let _span = sctm_obs::span("sweep", "job");
                    job()
                }
            })
            .collect(),
    )
}

/// Experiment ids in report order.
pub const EXPERIMENT_IDS: [&str; 12] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "a1", "p10",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Table> {
    Some(match id {
        "e1" => e1_configuration(scale),
        "e2" => e2_case_study(scale),
        "e3" => e3_accuracy_per_application(scale),
        "e4" => e4_convergence(scale),
        "e5" => e5_simulation_time_scaling(scale),
        "e6" => e6_load_latency(scale),
        "e7" => e7_power_budget(scale),
        "e8" => e8_capture_model_sensitivity(scale),
        "e9" => e9_online_correction(scale),
        "e10" => e10_latency_distribution(scale),
        "a1" => a1_ablation(scale),
        "p10" => p10_trace_format(scale),
        _ => return None,
    })
}

/// All experiments in order, as (id, table) pairs (eager; prefer
/// [`run_experiment`] for streaming output).
pub fn all_experiments(scale: Scale) -> Vec<(&'static str, Table)> {
    EXPERIMENT_IDS
        .iter()
        .map(|id| (*id, run_experiment(id, scale).unwrap()))
        .collect()
}
