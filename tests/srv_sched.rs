//! Determinism contract of the work-stealing scheduler and the sharded
//! multi-instance cache: the staged steal pipeline must answer
//! byte-identically to the serial batch cycle at any worker count, a
//! two-instance shard must answer byte-identically to a single instance
//! while capturing each workload exactly once *cluster-wide*, and the
//! configurable idle-flush read timeout must keep serving lockstep
//! clients at non-default values.
//!
//! Responses are compared whole, after masking the one wall-clock field
//! (`wall_ns`) a scheduler may legitimately change.

use sctm_client::Client;
use sctm_srv::{
    parse_request, serve_tcp, Request, RunRequest, SchedMode, Server, ServerConfig, Shard,
    ShardRing,
};

fn run_req(line: &str) -> RunRequest {
    match parse_request(line).expect("parse") {
        Request::Run(r) => *r,
        other => panic!("expected run, got {other:?}"),
    }
}

/// Mask the wall-clock field: `"wall_ns":12345` → `"wall_ns":#`.
/// Everything else in a response line is simulated or structural, so
/// after masking, byte equality is the determinism assertion.
fn mask_wall(line: &str) -> String {
    match line.find(r#""wall_ns":"#) {
        None => line.to_string(),
        Some(at) => {
            let digits_at = at + r#""wall_ns":"#.len();
            let digits_end = line[digits_at..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|n| digits_at + n)
                .unwrap_or(line.len());
            format!(
                "{}#{}",
                &line[..at + r#""wall_ns":"#.len()],
                &line[digits_end..]
            )
        }
    }
}

/// A deterministic script exercising every stage path: cache misses,
/// hits, traceless bypass, seeded replay, and typed errors.
fn script() -> Vec<&'static str> {
    vec![
        "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=a1",
        "run kernel=fft net=oxbar side=2 ops=150 mode=sctm iters=2 id=a2",
        "run kernel=lu net=emesh side=2 ops=150 mode=sctm iters=2 damping=0.7 id=a3",
        "run kernel=fft net=omesh side=2 ops=150 mode=exec-driven id=a4",
        "run kernel=barnes net=hybrid side=2 ops=150 mode=oracle-trace id=a5",
        "run kernel=fft net=obus side=2 ops=150 mode=classic-trace id=a6",
        "run kernel=lu net=omesh side=2 ops=150 mode=sctm iters=3 replay=1 id=a7",
        "run kernel=nosuch id=a8",
        "run kernel=fft net=subspace id=a9",
        "run kernel=barnes net=oxbar side=2 ops=150 mode=sctm iters=2 id=a10",
    ]
}

fn answers(server: &Server) -> Vec<String> {
    // Drive the production front-end (`serve_lines`) so the comparison
    // also pins response *ordering* under the steal scheduler.
    let text = format!("{}\n", script().join("\n"));
    let mut out = Vec::new();
    sctm_srv::serve_lines(text.as_bytes(), &mut out, server).expect("serve");
    server.drain();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(mask_wall)
        .collect()
}

#[test]
fn steal_answers_byte_identical_to_batch_at_1_4_8_workers() {
    let reference = answers(&Server::start(ServerConfig {
        sched: SchedMode::Batch,
        ..ServerConfig::default()
    }));
    assert!(
        reference.iter().any(|l| l.contains(r#""cache":"hit""#)),
        "script never warms the cache — weak test"
    );
    assert!(
        reference.iter().any(|l| l.contains(r#""status":"error""#)),
        "script never errors — weak test"
    );
    for workers in [1usize, 4, 8] {
        let got = answers(&Server::start(ServerConfig {
            sched: SchedMode::WorkSteal,
            workers,
            ..ServerConfig::default()
        }));
        assert_eq!(
            got, reference,
            "steal scheduler with {workers} workers diverged from batch"
        );
    }
}

#[test]
fn steal_keeps_the_one_capture_per_sweep_economics() {
    // The §P5 invariant under the staged pipeline: 50 configs over one
    // workload still cost exactly one capture, with the same counter
    // trail the batch path produces.
    let server = Server::start(ServerConfig {
        sched: SchedMode::WorkSteal,
        workers: 4,
        ..ServerConfig::default()
    });
    let mut rxs = Vec::new();
    for n in 0..50 {
        let damping = ["0.4", "0.6", "0.8", "0.9", "1.0"][n % 5];
        let net = ["emesh", "omesh", "oxbar", "hybrid", "obus"][n / 10];
        let req = run_req(&format!(
            "run kernel=fft net={net} side=2 ops=150 mode=sctm iters=2 \
             damping={damping} replay=1 id=s{n}"
        ));
        rxs.push(server.submit(req).expect("enqueue"));
    }
    let lines: Vec<String> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
    for line in &lines {
        assert!(line.starts_with(r#"{"status":"ok""#), "{line}");
    }
    let stats = server.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 49), "{stats:?}");
}

/// Boot a TCP daemon on an OS-assigned port, sharded over `peers` when
/// non-empty. Returns the bound address and the daemon thread.
fn boot_tcp(
    cfg: ServerConfig,
    ring: Option<ShardRing>,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let server = Server::start_sharded(cfg, ring.map(Shard::new), None);
    let daemon = std::thread::spawn(move || serve_tcp(listener, server));
    (addr, daemon)
}

fn stats_counter(doc: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": {{\"kind\"");
    let at = doc
        .find(&key)
        .unwrap_or_else(|| panic!("no {name} in {doc}"));
    let tail = &doc[at..];
    let vkey = "\"value\": ";
    let vat = tail.find(vkey).expect("value field") + vkey.len();
    tail[vat..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric value")
}

#[test]
fn two_instance_shard_captures_once_cluster_wide_and_matches_single() {
    // Two daemons sharding one capture cache. The sweep alternates
    // between instances, so whichever instance does not own the
    // workload's key must forward over `fwd` instead of capturing.
    let sweep: Vec<String> = (0..20)
        .map(|n| {
            let damping = ["0.4", "0.6", "0.8", "0.9", "1.0"][n % 5];
            let net = ["emesh", "omesh", "oxbar", "hybrid"][n / 5];
            format!(
                "run kernel=fft net={net} side=2 ops=150 mode=sctm iters=2 \
                 damping={damping} replay=1 id=w{n}"
            )
        })
        .collect();

    // Reference: the same sweep against one unsharded instance.
    let reference: Vec<String> = {
        let server = Server::start(ServerConfig::default());
        let out = sweep
            .iter()
            .map(|l| mask_wall(&server.submit_blocking(run_req(l))))
            .collect();
        server.drain();
        out
    };

    // Bind both listeners first so each ring lists real addresses.
    let la = std::net::TcpListener::bind("127.0.0.1:0").expect("bind a");
    let lb = std::net::TcpListener::bind("127.0.0.1:0").expect("bind b");
    let addr_a = la.local_addr().unwrap().to_string();
    let addr_b = lb.local_addr().unwrap().to_string();
    let peers = vec![addr_a.clone(), addr_b.clone()];
    let ring_a = ShardRing::new(peers.clone(), &addr_a).unwrap();
    let ring_b = ShardRing::new(peers, &addr_b).unwrap();
    let srv_a = Server::start_sharded(ServerConfig::default(), Some(Shard::new(ring_a)), None);
    let srv_b = Server::start_sharded(ServerConfig::default(), Some(Shard::new(ring_b)), None);
    let da = std::thread::spawn(move || serve_tcp(la, srv_a));
    let db = std::thread::spawn(move || serve_tcp(lb, srv_b));

    let ca = Client::connect(&addr_a).expect("dial a");
    let cb = Client::connect(&addr_b).expect("dial b");
    let mut got = Vec::new();
    for (i, line) in sweep.iter().enumerate() {
        let c = if i % 2 == 0 { &ca } else { &cb };
        let reply = c.call(line).unwrap_or_else(|e| panic!("call {i}: {e}"));
        got.push(mask_wall(&reply));
    }

    // Byte-identity with the single instance, modulo the local
    // hit/miss label: the first request *per instance* is a local
    // miss (one resolves by capturing, one by forwarding), both of
    // which replay into the identical result object.
    let normalize = |l: &str| l.replace(r#""cache":"miss""#, r#""cache":"hit""#);
    for (g, r) in got.iter().zip(&reference) {
        assert_eq!(normalize(g), normalize(r), "sharded answer diverged");
    }
    // Either one or two responses carry a local `miss` label: when the
    // owner sees the workload first it misses once and the non-owner's
    // forward later misses once (2); when the *non-owner* goes first,
    // its forward warms the owner's cache, whose own requests then all
    // hit (1). Which case runs depends on the OS-assigned ports.
    let local_misses = got
        .iter()
        .filter(|l| l.contains(r#""cache":"miss""#))
        .count();
    assert!(
        (1..=2).contains(&local_misses),
        "local misses {local_misses}"
    );

    // Cluster-wide capture accounting straight off the daemons' own
    // counters: captures = Σ misses − Σ forwarded = 1.
    let sa = ca.stats().expect("stats a");
    let sb = cb.stats().expect("stats b");
    let misses = stats_counter(&sa, "srv.cache.misses") + stats_counter(&sb, "srv.cache.misses");
    let forwarded =
        stats_counter(&sa, "srv.shard.forwarded") + stats_counter(&sb, "srv.shard.forwarded");
    let served =
        stats_counter(&sa, "srv.shard.fwd_served") + stats_counter(&sb, "srv.shard.fwd_served");
    let errors =
        stats_counter(&sa, "srv.shard.fwd_errors") + stats_counter(&sb, "srv.shard.fwd_errors");
    assert_eq!(errors, 0, "a:{sa}\nb:{sb}");
    assert_eq!(forwarded, 1, "exactly one instance forwards the one key");
    assert_eq!(served, 1, "the owner serves exactly that forward");
    assert_eq!(misses - forwarded, 1, "one capture cluster-wide");

    ca.shutdown().expect("shutdown a");
    cb.shutdown().expect("shutdown b");
    da.join().unwrap().expect("daemon a");
    db.join().unwrap().expect("daemon b");
}

#[test]
fn lockstep_client_is_served_at_a_non_default_read_timeout() {
    use std::io::{BufRead, BufReader, Write};
    // 120 ms idle-flush timeout (default is 25): a lockstep client that
    // sends one request and then goes silent must still receive each
    // response — the idle wakeup, not further input, flushes it.
    let (addr, daemon) = boot_tcp(
        ServerConfig {
            read_timeout_ms: 120,
            ..ServerConfig::default()
        },
        None,
    );
    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut first = String::new();
    for round in 0..3 {
        let started = std::time::Instant::now();
        writeln!(
            conn,
            "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=l{round}"
        )
        .expect("send");
        conn.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        assert!(line.starts_with(r#"{"status":"ok""#), "{line}");
        assert!(line.contains(&format!(r#""id":"l{round}""#)), "{line}");
        // Lockstep latency is bounded by work + one idle-flush period;
        // generous ceiling so slow CI cannot flake this.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "round {round} stalled"
        );
        if round == 0 {
            first = mask_wall(&line);
        } else {
            // Warm rounds replay the same workload: identical answers.
            let warm = mask_wall(&line).replace(&format!(r#""id":"l{round}""#), r#""id":"l0""#);
            assert_eq!(
                warm.replace(r#""cache":"hit""#, r#""cache":"miss""#),
                first.replace(r#""cache":"hit""#, r#""cache":"miss""#),
            );
        }
    }
    writeln!(conn, "shutdown").expect("send shutdown");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read ack");
    assert!(ack.contains(r#""shutting_down":true"#), "{ack}");
    daemon.join().unwrap().expect("daemon io");
}
