//! Path-adaptive opto-electronic hybrid NoC (extension).
//!
//! The original authors' follow-up architecture (ISPA 2013): instead of
//! dedicating the optical plane to one traffic class, every router
//! decides *per message* whether to use the optical or the electrical
//! plane, based on the distance it has to travel (and the payload's
//! ability to amortise the optical setup cost). Short-haul and small
//! messages stay electrical; long-haul cache lines ride light.
//!
//! Implementation: composition of the two planes we already have. The
//! policy routes each injected message to exactly one plane; both planes
//! advance in lockstep through the usual [`NetworkModel`] interface.
//! This mirrors the physical design (two parallel layers joined at the
//! NIs) and keeps each plane's contention model intact.

use crate::omesh::{OmeshConfig, OmeshSim};
use sctm_engine::net::{Delivery, Message, MsgLifecycle, NetStats, NetworkModel, NodeObs};
use sctm_engine::time::SimTime;
use sctm_enoc::{NocConfig, NocSim, Routing, Topology};

/// Plane-selection policy.
#[derive(Clone, Copy, Debug)]
pub struct HybridPolicy {
    /// Minimum Manhattan hop distance for the optical plane.
    pub min_hops: usize,
    /// Minimum payload bytes for the optical plane.
    pub min_bytes: u32,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        // Setup cost ≈ 2×hops control messages; light pays off beyond a
        // few hops, and only data-sized payloads amortise it.
        HybridPolicy {
            min_hops: 3,
            min_bytes: 32,
        }
    }
}

/// Configuration of the hybrid network.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    pub side: usize,
    pub policy: HybridPolicy,
    pub omesh: OmeshConfig,
    pub emesh: NocConfig,
}

impl HybridConfig {
    pub fn new(side: usize) -> Self {
        let mut omesh = OmeshConfig::new(side);
        // The optical plane carries only what the policy sends it; the
        // electrical plane below handles everything else, so disable
        // omesh's internal control-plane fallback for data.
        omesh.ctrl_cutoff_bytes = 0;
        HybridConfig {
            side,
            policy: HybridPolicy::default(),
            omesh,
            emesh: NocConfig {
                topology: Topology::mesh(side, side),
                routing: Routing::XY,
                ..NocConfig::default()
            },
        }
    }
}

/// The hybrid interconnect: an optical circuit-switched plane stacked on
/// an electrical packet-switched plane.
#[derive(Clone, Debug)]
pub struct HybridSim {
    cfg: HybridConfig,
    optical: OmeshSim,
    electrical: NocSim,
    stats: NetStats,
    /// Messages routed to each plane (for reports).
    to_optical: u64,
    to_electrical: u64,
}

impl HybridSim {
    pub fn new(cfg: HybridConfig) -> Self {
        HybridSim {
            optical: OmeshSim::new(cfg.omesh),
            electrical: NocSim::new(cfg.emesh),
            cfg,
            stats: NetStats::default(),
            to_optical: 0,
            to_electrical: 0,
        }
    }

    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// Fraction of messages the policy sent optically.
    pub fn optical_fraction(&self) -> f64 {
        let total = self.to_optical + self.to_electrical;
        if total == 0 {
            0.0
        } else {
            self.to_optical as f64 / total as f64
        }
    }

    fn hops(&self, msg: &Message) -> usize {
        let s = self.cfg.side;
        let (ax, ay) = (msg.src.idx() % s, msg.src.idx() / s);
        let (bx, by) = (msg.dst.idx() % s, msg.dst.idx() / s);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The path-adaptive decision.
    pub fn goes_optical(&self, msg: &Message) -> bool {
        self.hops(msg) >= self.cfg.policy.min_hops && msg.bytes >= self.cfg.policy.min_bytes
    }
}

impl NetworkModel for HybridSim {
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        Some(Box::new(self.clone()))
    }

    fn num_nodes(&self) -> usize {
        self.cfg.side * self.cfg.side
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        self.stats.injected += 1;
        if self.goes_optical(&msg) {
            self.to_optical += 1;
            self.optical.inject(at, msg);
        } else {
            self.to_electrical += 1;
            self.electrical.inject(at, msg);
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        match (self.optical.next_time(), self.electrical.next_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        let start = out.len();
        self.optical.advance_until(t, out);
        self.electrical.advance_until(t, out);
        // Record into the merged stats and keep delivery order stable by
        // time (callers may rely on chronological batches).
        out[start..].sort_by_key(|d| (d.delivered_at, d.msg.id.0));
        for d in &out[start..] {
            self.stats.record_delivery(d);
        }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        self.optical.reset_stats();
        self.electrical.reset_stats();
    }

    fn label(&self) -> &'static str {
        "hybrid"
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.optical.set_lifecycle_capture(on);
        self.electrical.set_lifecycle_capture(on);
    }

    fn lifecycle_capture(&self) -> bool {
        self.optical.lifecycle_capture()
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        // Both planes' records, ordered by delivery like the merged
        // delivery stream.
        let start = out.len();
        self.optical.take_lifecycles(out);
        self.electrical.take_lifecycles(out);
        out[start..].sort_by_key(|l| (l.delivered_at, l.msg.id.0));
    }

    fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
        // The planes share NIs: merge per-node observations by summing
        // queue depths and busy time across layers.
        let mut optical = Vec::new();
        self.optical.observe_nodes(&mut optical);
        let mut electrical = Vec::new();
        self.electrical.observe_nodes(&mut electrical);
        for node in 0..self.num_nodes() as u32 {
            let mut merged = NodeObs {
                node,
                ..NodeObs::default()
            };
            for o in optical.iter().chain(&electrical) {
                if o.node == node {
                    merged.queue_depth += o.queue_depth;
                    merged.link_busy_ps += o.link_busy_ps;
                }
            }
            out.push(merged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgClass, MsgId, NodeId};

    fn msg(id: u64, src: u32, dst: u32, bytes: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if bytes > 16 {
                MsgClass::Data
            } else {
                MsgClass::Control
            },
            bytes,
        }
    }

    fn sim() -> HybridSim {
        HybridSim::new(HybridConfig::new(4))
    }

    #[test]
    fn policy_splits_by_distance_and_size() {
        let s = sim();
        // 1 hop, small: electrical.
        assert!(!s.goes_optical(&msg(1, 0, 1, 8)));
        // 6 hops, data: optical.
        assert!(s.goes_optical(&msg(2, 0, 15, 64)));
        // 6 hops but tiny: electrical (setup never amortised).
        assert!(!s.goes_optical(&msg(3, 0, 15, 8)));
        // 1 hop data: electrical (distance below threshold).
        assert!(!s.goes_optical(&msg(4, 0, 1, 64)));
    }

    #[test]
    fn all_messages_deliver_across_both_planes() {
        let mut s = sim();
        let mut id = 0;
        for src in 0..16 {
            for dst in 0..16 {
                for bytes in [8u32, 64] {
                    s.inject(SimTime::ZERO, msg(id, src, dst, bytes));
                    id += 1;
                }
            }
        }
        let mut out = Vec::new();
        s.drain(&mut out);
        assert_eq!(out.len(), id as usize);
        assert!(s.to_optical > 0, "no optical traffic at all");
        assert!(s.to_electrical > 0, "no electrical traffic at all");
        assert_eq!(s.stats().in_flight(), 0);
    }

    #[test]
    fn long_haul_data_beats_pure_electrical() {
        // Corner-to-corner cache line: the hybrid should ride light and
        // beat the electrical mesh under contention-free conditions at
        // large payload sizes.
        let payload = 4096u32;
        let mut h = sim();
        h.inject(SimTime::ZERO, msg(1, 0, 15, payload));
        let mut out = Vec::new();
        h.drain(&mut out);
        let hybrid_lat = out[0].latency();

        let mut e = NocSim::new(NocConfig {
            topology: Topology::mesh(4, 4),
            ..NocConfig::default()
        });
        e.inject(SimTime::ZERO, msg(1, 0, 15, payload));
        let mut out = Vec::new();
        e.drain(&mut out);
        let emesh_lat = out[0].latency();
        assert!(
            hybrid_lat < emesh_lat,
            "optical long-haul ({hybrid_lat}) not faster than electrical ({emesh_lat})"
        );
    }

    #[test]
    fn short_control_avoids_optical_setup_cost() {
        let mut h = sim();
        h.inject(SimTime::ZERO, msg(1, 0, 1, 8));
        let mut out = Vec::new();
        h.drain(&mut out);
        // One-hop electrical control: a handful of ns, far below the
        // optical setup round trip.
        assert!(
            out[0].latency() < SimTime::from_ns(20),
            "short ctrl paid a setup cost: {}",
            out[0].latency()
        );
        assert_eq!(h.to_electrical, 1);
    }

    #[test]
    fn deliveries_are_chronologically_sorted_within_batches() {
        let mut s = sim();
        for i in 0..200u64 {
            s.inject(
                SimTime::from_ns(i % 40),
                msg(
                    i,
                    (i % 16) as u32,
                    ((i * 7 + 3) % 16) as u32,
                    if i % 2 == 0 { 8 } else { 64 },
                ),
            );
        }
        let mut out = Vec::new();
        s.drain(&mut out);
        assert_eq!(out.len(), 200);
        // within the whole drain, each advance batch is sorted; a full
        // drain is one batch per event step, so global order may
        // interleave — check at least non-crazy: every delivery after
        // its injection.
        assert!(out.iter().all(|d| d.delivered_at >= d.injected_at));
    }

    #[test]
    fn optical_fraction_reported() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 0, 15, 64));
        s.inject(SimTime::ZERO, msg(2, 0, 1, 8));
        let mut out = Vec::new();
        s.drain(&mut out);
        assert!((s.optical_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut s = sim();
            for i in 0..300u64 {
                s.inject(
                    SimTime::from_ns(i % 60),
                    msg(
                        i,
                        (i % 16) as u32,
                        ((i * 5 + 1) % 16) as u32,
                        if i % 3 == 0 { 8 } else { 64 },
                    ),
                );
            }
            let mut out = Vec::new();
            s.drain(&mut out);
            out.iter()
                .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
