//! SWMR optical broadcast bus (Firefly/ATAC lineage; extension).
//!
//! The dual of the MWSR crossbar: each **source** owns a broadcast
//! waveguide that every node listens to. Writing needs no arbitration at
//! all (single writer), so injection is wait-free; the serialisation
//! moves to the *receivers*, which have one ejection port each and must
//! take incoming bursts one at a time — and to the source itself, which
//! can drive only one burst at a time onto its channel.
//!
//! Latency anatomy of one message: source NI → wait for own channel →
//! burst serialisation → time of flight along the serpentine → wait for
//! the receiver's ejection port → receiver NI.

use crate::layout::Floorplan;
use sctm_engine::event::EventQueue;
use sctm_engine::msgtable::MsgTable;
use sctm_engine::net::{
    Delivery, LatencyBreakdown, Message, MsgLifecycle, NetStats, NetworkModel, NodeObs,
};
use sctm_engine::time::{Freq, SimTime};
use sctm_obs as obs;
use sctm_photonic::{ChannelPlan, DeviceKit, LinkBudget, OpticalPath, PowerBreakdown};

/// Configuration of the broadcast bus.
#[derive(Clone, Copy, Debug)]
pub struct ObusConfig {
    pub floorplan: Floorplan,
    pub kit: DeviceKit,
    pub plan: ChannelPlan,
    pub ni_freq: Freq,
    pub ni_cycles: u64,
}

impl ObusConfig {
    pub fn new(side: usize) -> Self {
        ObusConfig {
            floorplan: Floorplan::new(side, 2.5),
            kit: DeviceKit::default(),
            plan: ChannelPlan::default(),
            ni_freq: Freq::from_ghz(2),
            ni_cycles: 2,
        }
    }

    /// Loss/power budget: per-source waveguides with a drop-filter bank
    /// at every listener (N² · λ rings), plus the defining SWMR cost —
    /// **broadcast splitting loss**: every listener taps a 1/(N−1)
    /// fraction of the light, so the detector at the end of the bus sees
    /// `10·log10(N−1)` dB less than was launched (ATAC's power wall).
    pub fn budget(&self) -> LinkBudget {
        let n = self.floorplan.num_nodes() as u64;
        // Fold the splitting loss into the worst path as an equivalent
        // extra insertion loss (the solver only sums dB).
        let split_db = 10.0 * ((n - 1) as f64).log10();
        let kit = self.kit;
        let extra_crossings = (split_db / kit.waveguide.crossing_loss_db).ceil() as u32;
        LinkBudget {
            kit,
            worst_path: OpticalPath {
                length_mm: self.floorplan.serpentine_length_mm(),
                bends: (self.floorplan.side as u32).saturating_sub(1) * 2,
                // Encode the broadcast split as equivalent crossing loss
                // (same dB; the solver does not distinguish sources).
                crossings: extra_crossings,
                // Per wavelength the light passes one drop ring per
                // listener (see `oxbar_worst_path` for the λ-count
                // pitfall).
                rings_passed: n as u32 - 2,
                rings_used: 2,
            },
            lambdas: self.plan.lambdas,
            gbps_per_lambda: self.plan.gbps_per_lambda,
            total_rings: n * n * self.plan.lambdas as u64,
            waveguides: n as u32,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Message reaches its source NI.
    Ready(u64),
    /// Last bit left the source (channel frees; light is in flight).
    BurstEnd(u64),
    /// Burst reaches the receiver; may still wait for the eject port.
    Arrive(u64),
    /// Fully ejected at the receiver.
    Deliver(u64),
}

/// One in-flight message with its accumulating latency decomposition.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    msg: Message,
    injected_at: SimTime,
    bd: LatencyBreakdown,
}

/// The SWMR broadcast-bus simulator.
#[derive(Clone, Debug)]
pub struct ObusSim {
    cfg: ObusConfig,
    q: EventQueue<Ev>,
    msgs: MsgTable<InFlight>,
    /// Per-source channel: busy until.
    src_free: Vec<SimTime>,
    /// Per-receiver ejection port: busy until.
    dst_free: Vec<SimTime>,
    /// Cumulative burst time per source channel, for observability.
    src_busy_ps: Vec<u64>,
    /// Messages injected at each source and not yet delivered.
    src_inflight: Vec<u64>,
    stats: NetStats,
    optical_bits: u64,
    capture: bool,
    lifecycles: Vec<MsgLifecycle>,
}

impl ObusSim {
    pub fn new(cfg: ObusConfig) -> Self {
        let n = cfg.floorplan.num_nodes();
        ObusSim {
            cfg,
            q: EventQueue::new(),
            msgs: MsgTable::new(),
            src_free: vec![SimTime::ZERO; n],
            dst_free: vec![SimTime::ZERO; n],
            src_busy_ps: vec![0; n],
            src_inflight: vec![0; n],
            stats: NetStats::default(),
            optical_bits: 0,
            capture: false,
            lifecycles: Vec::new(),
        }
    }

    pub fn config(&self) -> &ObusConfig {
        &self.cfg
    }

    pub fn power_report(&self, elapsed: SimTime) -> PowerBreakdown {
        let budget = self.cfg.budget();
        let ns = elapsed.as_ns_f64().max(1e-9);
        let gbps = self.optical_bits as f64 / ns;
        budget.power((gbps / budget.peak_gbps()).clamp(0.0, 1.0))
    }

    fn ni_delay(&self) -> SimTime {
        self.cfg.ni_freq.cycles(self.cfg.ni_cycles)
    }

    fn handle(&mut self, at: SimTime, ev: Ev, out: &mut Vec<Delivery>) {
        match ev {
            Ev::Ready(id) => {
                let msg = self.msgs[id].msg;
                if msg.src == msg.dst {
                    // Loopback: NI in, NI out — pure interface overhead.
                    if self.capture {
                        self.msgs
                            .get_mut(id)
                            .expect("unknown message")
                            .bd
                            .overhead_ps += self.ni_delay().as_ps();
                    }
                    self.q.schedule(at + self.ni_delay(), Ev::Deliver(id));
                    return;
                }
                // Single writer: wait only for our own channel.
                let burst = self.cfg.plan.burst_time(msg.bytes.max(1));
                let start = at.max(self.src_free[msg.src.idx()]);
                let end = start + burst;
                self.src_free[msg.src.idx()] = end;
                self.src_busy_ps[msg.src.idx()] += burst.as_ps();
                self.optical_bits += msg.bytes.max(1) as u64 * 8;
                if self.capture {
                    let bd = &mut self.msgs.get_mut(id).expect("unknown message").bd;
                    bd.queue_ps += start.saturating_since(at).as_ps();
                    bd.serialization_ps += burst.as_ps();
                }
                self.q.schedule(end, Ev::BurstEnd(id));
            }
            Ev::BurstEnd(id) => {
                let msg = self.msgs[id].msg;
                let dist = self.cfg.floorplan.serpentine_distance_mm(msg.src, msg.dst);
                let tof = SimTime::from_ps(self.cfg.kit.waveguide.tof_ps(dist));
                if self.capture {
                    self.msgs
                        .get_mut(id)
                        .expect("unknown message")
                        .bd
                        .propagation_ps += tof.as_ps();
                }
                self.q.schedule(at + tof, Ev::Arrive(id));
            }
            Ev::Arrive(id) => {
                let msg = self.msgs[id].msg;
                obs::sim_event("obus", "arbitrate", msg.dst.0, at);
                // One ejection port per node: serialise receptions.
                let eject = self.cfg.plan.burst_time(msg.bytes.max(1));
                let start = at.max(self.dst_free[msg.dst.idx()]);
                self.dst_free[msg.dst.idx()] = start + eject;
                if self.capture {
                    let ni = self.ni_delay().as_ps();
                    let bd = &mut self.msgs.get_mut(id).expect("unknown message").bd;
                    bd.queue_ps += start.saturating_since(at).as_ps();
                    bd.serialization_ps += eject.as_ps();
                    bd.overhead_ps += ni;
                }
                self.q
                    .schedule(start + eject + self.ni_delay(), Ev::Deliver(id));
            }
            Ev::Deliver(id) => {
                let inf = self.msgs.remove(id).expect("unknown message");
                let (msg, injected_at) = (inf.msg, inf.injected_at);
                self.src_inflight[msg.src.idx()] -= 1;
                obs::sim_event("obus", "deliver", msg.dst.0, at);
                let d = Delivery {
                    msg,
                    injected_at,
                    delivered_at: at,
                };
                self.stats.record_delivery(&d);
                if self.capture {
                    self.lifecycles.push(MsgLifecycle {
                        msg,
                        injected_at,
                        delivered_at: at,
                        breakdown: inf.bd,
                    });
                }
                out.push(d);
            }
        }
    }
}

impl NetworkModel for ObusSim {
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        Some(Box::new(self.clone()))
    }

    fn num_nodes(&self) -> usize {
        self.cfg.floorplan.num_nodes()
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        let at = at.max(self.q.now());
        self.stats.injected += 1;
        self.src_inflight[msg.src.idx()] += 1;
        obs::sim_event("obus", "inject", msg.src.0, at);
        let mut bd = LatencyBreakdown::default();
        if self.capture {
            bd.overhead_ps = self.ni_delay().as_ps();
        }
        let prev = self.msgs.insert(
            msg.id.0,
            InFlight {
                msg,
                injected_at: at,
                bd,
            },
        );
        debug_assert!(prev.is_none(), "duplicate message id");
        self.q.schedule(at + self.ni_delay(), Ev::Ready(msg.id.0));
    }

    fn next_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        while let Some(ev) = self.q.pop_before(t) {
            self.handle(ev.at, ev.payload, out);
        }
        self.q.advance_to(t);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    fn label(&self) -> &'static str {
        "obus"
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.capture = on;
    }

    fn lifecycle_capture(&self) -> bool {
        self.capture
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        out.append(&mut self.lifecycles);
    }

    fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
        for node in 0..self.num_nodes() {
            out.push(NodeObs {
                node: node as u32,
                queue_depth: self.src_inflight[node],
                link_busy_ps: self.src_busy_ps[node],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{MsgClass, MsgId, NodeId};

    fn msg(id: u64, src: u32, dst: u32, bytes: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if bytes > 16 {
                MsgClass::Data
            } else {
                MsgClass::Control
            },
            bytes,
        }
    }

    fn sim() -> ObusSim {
        ObusSim::new(ObusConfig::new(4))
    }

    fn drain(s: &mut ObusSim) -> Vec<Delivery> {
        let mut out = Vec::new();
        s.drain(&mut out);
        out
    }

    #[test]
    fn delivers_and_conserves() {
        let mut s = sim();
        for i in 0..500u64 {
            s.inject(
                SimTime::from_ns(i % 100),
                msg(i, (i % 16) as u32, ((i * 3 + 1) % 16) as u32, 72),
            );
        }
        let out = drain(&mut s);
        assert_eq!(out.len(), 500);
        assert_eq!(s.stats().in_flight(), 0);
    }

    #[test]
    fn injection_is_arbitration_free() {
        // Distinct sources to distinct destinations: all proceed in
        // parallel, makespan ≈ one message time.
        let mut s = sim();
        for i in 0..8u64 {
            s.inject(SimTime::ZERO, msg(i, i as u32, (i + 8) as u32, 512));
        }
        let out = drain(&mut s);
        let makespan = out.iter().map(|d| d.delivered_at).max().unwrap();
        let burst = s.cfg.plan.burst_time(512);
        assert!(
            makespan.as_ps() < (burst.as_ps() + 5_000) * 2,
            "SWMR serialised independent sources: {makespan}"
        );
    }

    #[test]
    fn same_source_serialises() {
        let mut s = sim();
        let burst = s.cfg.plan.burst_time(512);
        for i in 0..10u64 {
            s.inject(SimTime::ZERO, msg(i, 0, (i % 15 + 1) as u32, 512));
        }
        let out = drain(&mut s);
        let makespan = out.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(
            makespan >= burst.scaled(9),
            "single-writer serialisation missing: {makespan}"
        );
    }

    #[test]
    fn receiver_port_serialises_hotspot() {
        let mut s = sim();
        let burst = s.cfg.plan.burst_time(512);
        for i in 0..10u64 {
            s.inject(SimTime::ZERO, msg(i, (i + 1) as u32, 0, 512));
        }
        let out = drain(&mut s);
        let makespan = out.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(
            makespan >= burst.scaled(9),
            "receiver serialisation missing: {makespan}"
        );
    }

    #[test]
    fn self_send_and_determinism() {
        let run = || {
            let mut s = sim();
            s.inject(SimTime::ZERO, msg(0, 5, 5, 64));
            for i in 1..200u64 {
                s.inject(
                    SimTime::from_ns(i % 30),
                    msg(i, (i % 16) as u32, ((i * 7) % 16) as u32, 72),
                );
            }
            drain(&mut s)
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn lifecycle_components_sum_exactly() {
        let mut s = sim();
        s.set_lifecycle_capture(true);
        s.inject(SimTime::ZERO, msg(0, 5, 5, 64)); // loopback
        for i in 1..100u64 {
            s.inject(
                SimTime::from_ns(i % 20),
                msg(
                    i,
                    (i % 16) as u32,
                    ((i * 7) % 16) as u32,
                    if i % 2 == 0 { 72 } else { 8 },
                ),
            );
        }
        drain(&mut s);
        let mut lc = Vec::new();
        s.take_lifecycles(&mut lc);
        assert_eq!(lc.len(), 100);
        for l in &lc {
            assert_eq!(l.breakdown.total_ps(), l.latency_ps(), "{:?}", l.msg.id);
        }
        assert!(lc.iter().any(|l| l.breakdown.queue_ps > 0));
    }

    #[test]
    fn budget_has_swmr_ring_count_and_split_loss() {
        let cfg = ObusConfig::new(4);
        let b = cfg.budget();
        assert_eq!(b.total_rings, 16 * 16 * 64);
        // The broadcast split (10·log10(15) ≈ 11.8 dB) must dominate the
        // loss budget and push it well beyond the MWSR crossbar's.
        let oxbar = crate::oxbar::OxbarConfig::new(4).budget();
        assert!(
            b.worst_loss_db() > oxbar.worst_loss_db() + 8.0,
            "SWMR split loss missing: obus {} dB vs oxbar {} dB",
            b.worst_loss_db(),
            oxbar.worst_loss_db()
        );
        assert!(b.laser_mw() > oxbar.laser_mw() * 4.0);
    }
}
