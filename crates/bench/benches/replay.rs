//! Replay-engine cost on one captured trace: the classic pass, the
//! self-correcting pass, and the full-causality oracle (the per-
//! iteration term of the self-correction loop in E2/E5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_core::{Experiment, NetworkKind, SystemConfig};
use sctm_trace::{
    replay_fixed, replay_fixed_with, replay_oracle, replay_oracle_with, replay_sctm_pass,
    replay_sctm_pass_with, ReplayScratch, TraceLog,
};
use sctm_workloads::Kernel;

fn capture() -> TraceLog {
    Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Fft)
        .with_ops(400)
        .capture()
}

fn bench_replay(c: &mut Criterion) {
    let log = capture();
    let mut g = c.benchmark_group("replay_on_omesh");
    type Engine =
        fn(&TraceLog, &mut dyn sctm_engine::net::NetworkModel) -> sctm_trace::ReplayResult;
    let engines: [(&str, Engine); 3] = [
        ("classic", replay_fixed as Engine),
        ("sctm_pass", replay_sctm_pass as Engine),
        ("oracle", replay_oracle as Engine),
    ];
    for (name, engine) in engines {
        g.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, engine| {
            b.iter(|| {
                let mut net = SystemConfig::make_network_kind(4, NetworkKind::Omesh);
                let r = engine(&log, net.as_mut());
                black_box(r.est_exec_time)
            })
        });
    }
    // Arena variants: same engines borrowing one warm `ReplayScratch`
    // across iterations — the shape of the outer self-correction loop.
    type EngineWith = fn(
        &TraceLog,
        &mut dyn sctm_engine::net::NetworkModel,
        &mut ReplayScratch,
    ) -> sctm_trace::ReplayResult;
    let arena_engines: [(&str, EngineWith); 3] = [
        ("classic_arena", replay_fixed_with as EngineWith),
        ("sctm_pass_arena", replay_sctm_pass_with as EngineWith),
        ("oracle_arena", replay_oracle_with as EngineWith),
    ];
    for (name, engine) in arena_engines {
        let mut scratch = ReplayScratch::new();
        g.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, engine| {
            b.iter(|| {
                let mut net = SystemConfig::make_network_kind(4, NetworkKind::Omesh);
                let r = engine(&log, net.as_mut(), &mut scratch);
                black_box(r.est_exec_time)
            })
        });
    }
    g.finish();

    c.bench_function("capture_on_analytic", |b| {
        b.iter(|| black_box(capture().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replay
}
criterion_main!(benches);
