//! Exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a machine-readable run manifest.
//!
//! Both are serialised by hand — the workspace builds offline with no
//! registry access, so there is no serde. The JSON subset emitted here
//! is deliberately small: objects, arrays, strings, integers and
//! finite floats.

use crate::registry::{IterTelemetry, MetricValue, MetricsRegistry};
use crate::series::SeriesStore;
use crate::tracer::TraceEvent;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes not included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/Inf, so those
/// degrade to `null`; integral values print without a fraction.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render drained trace events as Chrome trace-event format JSON.
///
/// Layout: host-time spans become complete (`"ph":"X"`) events under
/// pid 1, one track per host thread; sim-time instants become
/// thread-scoped instant (`"ph":"i"`) events under pid 2, one track per
/// network node. Timestamps are microseconds as the format requires —
/// fractional µs keep full ns (host) and ps (sim) precision.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_with_series(events, &SeriesStore::default())
}

/// [`chrome_trace_json`] plus sampled per-node gauges as Perfetto
/// counter tracks: each [`crate::CounterSeries`] becomes one
/// `"ph":"C"` track under the simulation process (pid 2), named after
/// the series, one counter event per sample point.
pub fn chrome_trace_with_series(events: &[TraceEvent], series: &SeriesStore) -> String {
    let mut threads: Vec<u32> = Vec::new();
    let mut nodes: Vec<u32> = Vec::new();
    for ev in events {
        match *ev {
            TraceEvent::HostSpan { thread, .. } => {
                if !threads.contains(&thread) {
                    threads.push(thread);
                }
            }
            TraceEvent::SimInstant { node, .. } => {
                if !nodes.contains(&node) {
                    nodes.push(node);
                }
            }
        }
    }
    threads.sort_unstable();
    nodes.sort_unstable();

    let mut rows: Vec<String> = Vec::with_capacity(events.len() + threads.len() + nodes.len() + 2);
    rows.push(
        r#"{"name":"process_name","ph":"M","pid":1,"args":{"name":"host (wall clock)"}}"#
            .to_owned(),
    );
    rows.push(
        r#"{"name":"process_name","ph":"M","pid":2,"args":{"name":"simulation (sim time)"}}"#
            .to_owned(),
    );
    for t in &threads {
        rows.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{t},"args":{{"name":"thread {t}"}}}}"#
        ));
    }
    for n in &nodes {
        rows.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":2,"tid":{n},"args":{{"name":"node {n}"}}}}"#
        ));
    }
    for ev in events {
        match *ev {
            TraceEvent::HostSpan {
                cat,
                name,
                thread,
                start_ns,
                dur_ns,
            } => {
                // ns → µs with 3 decimals keeps exact ns precision.
                rows.push(format!(
                    r#"{{"name":"{}","cat":"{}","ph":"X","pid":1,"tid":{},"ts":{}.{:03},"dur":{}.{:03}}}"#,
                    json_escape(name),
                    json_escape(cat),
                    thread,
                    start_ns / 1_000,
                    start_ns % 1_000,
                    dur_ns / 1_000,
                    dur_ns % 1_000,
                ));
            }
            TraceEvent::SimInstant {
                cat,
                name,
                node,
                at_ps,
            } => {
                // ps → µs with 6 decimals keeps exact ps precision.
                rows.push(format!(
                    r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","pid":2,"tid":{},"ts":{}.{:06}}}"#,
                    json_escape(name),
                    json_escape(cat),
                    node,
                    at_ps / 1_000_000,
                    at_ps % 1_000_000,
                ));
            }
        }
    }
    for s in &series.series {
        let name = json_escape(&s.name);
        for &(at_ps, v) in &s.points {
            // ps → µs with 6 decimals, like the instants above.
            rows.push(format!(
                r#"{{"name":"{}","cat":"series","ph":"C","pid":2,"ts":{}.{:06},"args":{{"value":{}}}}}"#,
                name,
                at_ps / 1_000_000,
                at_ps % 1_000_000,
                json_f64(v),
            ));
        }
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// One timed phase of a run (an experiment, a capture, a sweep...).
#[derive(Clone, Debug)]
pub struct PhaseWall {
    pub name: String,
    pub wall_ms: f64,
}

/// A machine-readable record of one `tables` run: what was run, with
/// which knobs, how long each phase took, and every metric and
/// self-correction iteration recorded along the way.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// Free-form `key → value` config pairs (scale, seed, thread count).
    pub config: Vec<(String, String)>,
    pub phases: Vec<PhaseWall>,
    pub metrics: MetricsRegistry,
    pub iterations: Vec<IterTelemetry>,
    /// Sampled per-node gauge series (one store per profiled run).
    pub series: Vec<SeriesStore>,
}

impl Manifest {
    pub fn new() -> Self {
        Manifest::default()
    }

    pub fn config(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.config.push((key.into(), value.to_string()));
        self
    }

    pub fn phase(&mut self, name: impl Into<String>, wall_ms: f64) -> &mut Self {
        self.phases.push(PhaseWall {
            name: name.into(),
            wall_ms,
        });
        self
    }

    /// Serialise to a JSON document. Histograms export as summary
    /// objects (count/mean/min/max and the 50/95/99th percentiles)
    /// rather than raw buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");

        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"wall_ms\": {}}}",
                json_escape(&p.name),
                json_f64(p.wall_ms)
            );
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (name, value) in self.metrics.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": ", json_escape(name));
            match value {
                MetricValue::Counter(n) => {
                    let _ = write!(out, "{{\"kind\": \"counter\", \"value\": {n}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"kind\": \"gauge\", \"value\": {}}}", json_f64(*v));
                }
                MetricValue::Hist(h) => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"hist\", \"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count(),
                        json_f64(h.mean()),
                        h.min(),
                        h.max(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                    );
                }
            }
        }
        out.push_str("\n  },\n");

        out.push_str("  \"iterations\": [");
        for (i, t) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"network\": \"{}\", \"workload\": \"{}\", \"iteration\": {}, \"est_ps\": {}, \"drift_ps\": {}, \"corrections\": {}, \"messages\": {}, \"wall_ns\": {}}}",
                json_escape(t.network),
                json_escape(t.workload),
                t.iteration,
                t.est_ps,
                t.drift_ps,
                t.corrections,
                t.messages,
                t.wall_ns,
            );
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"series\": [");
        let mut first = true;
        for store in &self.series {
            for s in &store.series {
                if s.points.is_empty() {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n    {{\"name\": \"{}\", \"node\": {}, \"interval_ps\": {}, \"points\": [",
                    json_escape(&s.name),
                    s.node,
                    store.interval_ps,
                );
                for (i, (t, v)) in s.points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{}, {}]", t, json_f64(*v));
                }
                out.push_str("]}");
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// [`Manifest::to_json`] collapsed onto a single line, for
    /// line-oriented protocols (`sctmd` answers one manifest per
    /// request line). Structural newlines and indentation never occur
    /// inside string literals — [`json_escape`] encodes them — so
    /// stripping them cannot corrupt the document.
    pub fn to_json_compact(&self) -> String {
        let pretty = self.to_json();
        let mut out = String::with_capacity(pretty.len());
        for line in pretty.lines() {
            out.push_str(line.trim_start());
        }
        out
    }
}

/// Minimal structural JSON check: balanced braces/brackets outside
/// string literals, escapes well-formed. Not a full parser, but it
/// catches the serialisation mistakes hand-written JSON makes.
/// Test-only, shared with the conv-report tests.
#[cfg(test)]
pub(crate) fn check_json(s: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut chars = s.chars();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let e = chars.next().expect("dangling escape");
                    assert!(
                        matches!(e, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u'),
                        "bad escape \\{e}"
                    );
                    if e == 'u' {
                        for _ in 0..4 {
                            let h = chars.next().expect("short \\u escape");
                            assert!(h.is_ascii_hexdigit(), "bad \\u digit {h}");
                        }
                    }
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth.push(c),
            '}' => assert_eq!(depth.pop(), Some('{'), "unbalanced }}"),
            ']' => assert_eq!(depth.pop(), Some('['), "unbalanced ]"),
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string");
    assert!(depth.is_empty(), "unclosed {depth:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_renders_both_shapes() {
        let evs = vec![
            TraceEvent::HostSpan {
                cat: "bench",
                name: "e1",
                thread: 0,
                start_ns: 1_234,
                dur_ns: 5_678_901,
            },
            TraceEvent::SimInstant {
                cat: "net",
                name: "inject",
                node: 5,
                at_ps: 2_500_000,
            },
        ];
        let json = chrome_trace_json(&evs);
        check_json(&json);
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ts":1.234"#));
        assert!(json.contains(r#""dur":5678.901"#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""ts":2.500000"#));
        assert!(json.contains(r#""name":"node 5""#));
        assert!(json.contains(r#""name":"thread 0""#));
    }

    #[test]
    fn counter_tracks_render_and_validate() {
        use crate::series::CounterSeries;
        let store = SeriesStore {
            interval_ps: 1_000,
            series: vec![
                CounterSeries {
                    name: "node003.queue_depth".into(),
                    node: 3,
                    points: vec![(1_000, 2.0), (2_000, 5.0)],
                },
                CounterSeries {
                    name: "node003.link_util".into(),
                    node: 3,
                    points: vec![(1_000, 0.25)],
                },
                CounterSeries {
                    name: "empty".into(),
                    node: 0,
                    points: vec![],
                },
            ],
        };
        let json = chrome_trace_with_series(&[], &store);
        check_json(&json);
        assert_eq!(json.matches(r#""ph":"C""#).count(), 3);
        assert!(json.contains(r#""name":"node003.queue_depth""#));
        assert!(json.contains(r#""ts":0.001000"#));
        assert!(json.contains(r#""args":{"value":0.25}"#));
    }

    #[test]
    fn counter_track_names_are_escaped() {
        use crate::series::CounterSeries;
        let store = SeriesStore {
            interval_ps: 1,
            series: vec![CounterSeries {
                name: "evil\"name\\with\njunk".into(),
                node: 0,
                points: vec![(5, 1.0)],
            }],
        };
        let json = chrome_trace_with_series(&[], &store);
        check_json(&json);
        assert!(json.contains(r#"evil\"name\\with\njunk"#));
    }

    #[test]
    fn manifest_series_section_roundtrips() {
        use crate::series::CounterSeries;
        let mut m = Manifest::new();
        m.series.push(SeriesStore {
            interval_ps: 500,
            series: vec![CounterSeries {
                name: "node000.queue_depth".into(),
                node: 0,
                points: vec![(500, 1.0), (1_000, 3.5)],
            }],
        });
        let json = m.to_json();
        check_json(&json);
        assert!(json.contains(r#""interval_ps": 500"#));
        assert!(json.contains("[500, 1],[1000, 3.5]"));
    }

    #[test]
    fn chrome_trace_empty_is_valid() {
        let json = chrome_trace_json(&[]);
        check_json(&json);
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn manifest_serialises_all_sections() {
        let mut m = Manifest::new();
        m.config("scale", "quick").config("seed", 42);
        m.phase("e1", 12.5).phase("e2", 0.125);
        m.metrics.counter_add("net.omesh.delivered", 2000);
        m.metrics.gauge_set("net.omesh.energy_pj", 1.5);
        for v in [100u64, 200, 300] {
            m.metrics.hist_record("net.omesh.lat_ctrl_ps", v);
        }
        m.iterations.push(IterTelemetry {
            network: "omesh",
            workload: "fft",
            iteration: 1,
            est_ps: 1000,
            drift_ps: 50,
            corrections: 3,
            messages: 400,
            wall_ns: 9000,
        });
        let json = m.to_json();
        check_json(&json);
        assert!(json.contains(r#""scale": "quick""#));
        assert!(json.contains(r#""name": "e1", "wall_ms": 12.5"#));
        assert!(json.contains(r#""kind": "counter", "value": 2000"#));
        assert!(json.contains(r#""kind": "hist", "count": 3"#));
        assert!(json.contains(r#""network": "omesh""#));
        assert!(json.contains(r#""drift_ps": 50"#));
    }

    #[test]
    fn compact_manifest_is_one_line_and_structurally_valid() {
        let mut m = Manifest::new();
        m.config("note", "multi\nline \"quoted\"").config("seed", 7);
        m.phase("e1", 1.25);
        m.metrics.counter_add("srv.cache.hits", 3);
        let compact = m.to_json_compact();
        check_json(&compact);
        assert!(!compact.contains('\n'), "compact manifest spans lines");
        assert!(compact.contains(r#""note": "multi\nline \"quoted\"""#));
        assert!(compact.contains(r#""srv.cache.hits""#));
    }

    #[test]
    fn escaping_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
