//! Pipelined sweep driver for one or more `sctmd` instances.
//!
//! Reads request lines from stdin, distributes them round-robin across
//! the given addresses, pipelines each partition over a pooled
//! connection, and prints the responses **in input order** — so a
//! sweep script is `generate-configs | sctm-sweep --addr A --addr B`.
//!
//! ```text
//! sctm-sweep --addr HOST:PORT [--addr HOST:PORT ...]
//!            [--stats]      print one stats line per address after the sweep
//!            [--shutdown]   ask every address to drain and exit afterwards
//!            [--expect-ok]  exit 1 if any response is not status=ok
//! ```
//!
//! Used by CI's two-process sharded smoke test: drive one workload
//! through two instances, then assert from the `--stats` lines that the
//! cluster captured it exactly once.

use sctm_client::{Client, ClientError, Response};
use std::io::BufRead;

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("sctm-sweep: {e}");
            std::process::exit(2);
        }
    }
}

fn run() -> Result<i32, ClientError> {
    let mut addrs: Vec<String> = Vec::new();
    let mut stats = false;
    let mut shutdown = false;
    let mut expect_ok = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let v = args
                    .next()
                    .ok_or_else(|| ClientError::Protocol("--addr needs HOST:PORT".into()))?;
                addrs.push(v);
            }
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--expect-ok" => expect_ok = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: sctm-sweep --addr HOST:PORT [--addr ...] \
                     [--stats] [--shutdown] [--expect-ok] < requests.txt"
                );
                return Ok(0);
            }
            other => {
                return Err(ClientError::Protocol(format!("unknown argument '{other}'")));
            }
        }
    }
    if addrs.is_empty() {
        return Err(ClientError::Protocol(
            "at least one --addr is required".into(),
        ));
    }

    let clients: Vec<Client> = addrs
        .iter()
        .map(|a| Client::connect(a))
        .collect::<Result<_, _>>()?;

    let lines: Vec<String> = std::io::stdin()
        .lock()
        .lines()
        .collect::<Result<_, _>>()
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let lines: Vec<String> = lines.into_iter().filter(|l| !l.trim().is_empty()).collect();

    // Partition round-robin, pipeline each partition concurrently, then
    // reassemble by original index.
    let mut parts: Vec<Vec<(usize, String)>> = vec![Vec::new(); clients.len()];
    for (i, line) in lines.iter().enumerate() {
        parts[i % clients.len()].push((i, line.clone()));
    }
    let mut responses: Vec<Option<Response>> = vec![None; lines.len()];
    let results: Vec<Result<Vec<Response>, ClientError>> = std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter()
            .zip(&parts)
            .map(|(client, part)| {
                s.spawn(move || {
                    let batch: Vec<String> = part.iter().map(|(_, l)| l.clone()).collect();
                    client.pipeline(&batch)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (part, result) in parts.iter().zip(results) {
        let batch = result?;
        for ((idx, _), resp) in part.iter().zip(batch) {
            responses[*idx] = Some(resp);
        }
    }

    let mut all_ok = true;
    for resp in responses.into_iter().map(|r| r.expect("all answered")) {
        match resp {
            Response::Ok { line } => println!("{line}"),
            Response::Busy { retry_after_ms } => {
                all_ok = false;
                println!(r#"{{"status":"busy","retry_after_ms":{retry_after_ms}}}"#);
            }
            Response::Error { kind, message } => {
                all_ok = false;
                eprintln!("sctm-sweep: server error [{kind}]: {message}");
                println!(r#"{{"status":"error","kind":"{kind}"}}"#);
            }
            Response::Timeout { waited_ms } => {
                all_ok = false;
                println!(r#"{{"status":"timeout","waited_ms":{waited_ms}}}"#);
            }
        }
    }

    if stats {
        for client in &clients {
            println!("{}", client.stats()?);
        }
    }
    if shutdown {
        for client in &clients {
            client.shutdown()?;
        }
    }
    Ok(if expect_ok && !all_ok { 1 } else { 0 })
}
