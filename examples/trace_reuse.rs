//! Trace persistence: capture once, save to disk, reload, and replay
//! the same trace against several target networks — the workflow the
//! trace model exists for (the capture is the expensive part).
//!
//! ```text
//! cargo run --release --example trace_reuse
//! ```

use sctm::engine::table::{fnum, Table};
use sctm::prelude::*;
use sctm::trace::replay_sctm_pass;

fn main() {
    let exp =
        Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Barnes).with_ops(500);

    // 1. One full-system capture on the analytic model...
    eprintln!("capturing...");
    let t0 = std::time::Instant::now();
    let log = exp.capture();
    eprintln!(
        "captured {} messages in {:?} (exec time {})",
        log.len(),
        t0.elapsed(),
        log.capture_exec_time
    );

    // 2. ...saved in both encodings — the extension picks the format:
    // self-describing CSV text for diffing, the checksummed `sctf`
    // binary container (DESIGN.md §14) for fast reloads...
    let csv_path = std::env::temp_dir().join("sctm_barnes_16c.trace.csv");
    let sctf_path = std::env::temp_dir().join("sctm_barnes_16c.sctf");
    log.save(&csv_path).expect("save csv trace");
    log.save(&sctf_path).expect("save sctf trace");
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "saved {} ({:.2} MiB csv) and {} ({:.2} MiB sctf)",
        csv_path.display(),
        size(&csv_path) as f64 / (1 << 20) as f64,
        sctf_path.display(),
        size(&sctf_path) as f64 / (1 << 20) as f64
    );

    // 3. ...reloaded (possibly by another process, days later). `load`
    // sniffs the format by magic, so both paths decode to the same log;
    // the container also supports header-only inspection without
    // materializing records.
    let reader = sctm::trace::SctfReader::open(&sctf_path).expect("open sctf");
    eprintln!(
        "sctf: {} records on {} (capture exec {})",
        reader.len(),
        reader.capture_net(),
        reader.capture_exec_time()
    );
    let log = TraceLog::load(&sctf_path).expect("load trace");
    assert_eq!(
        log.to_csv_string(),
        TraceLog::load(&csv_path).expect("load csv").to_csv_string(),
        "both encodings decode to the same trace"
    );

    // 4. ...and replayed against every detailed interconnect.
    let mut t = Table::new(
        "One capture, five targets (self-correcting replay)",
        &[
            "target",
            "est exec time",
            "mean data lat (ns)",
            "replay wall (ms)",
        ],
    );
    for kind in NetworkKind::DETAILED {
        let t0 = std::time::Instant::now();
        let mut net = SystemConfig::make_network_kind(4, kind);
        let r = replay_sctm_pass(&log, net.as_mut());
        t.row(&[
            kind.label().to_string(),
            r.est_exec_time.to_string(),
            fnum(r.mean_latency_ns(&log, Some(sctm::engine::net::MsgClass::Data))),
            fnum(t0.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    let _ = std::fs::remove_file(csv_path);
    let _ = std::fs::remove_file(sctf_path);
}
