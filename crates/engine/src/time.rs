//! Fixed-point simulated time.
//!
//! All simulators in the workspace share one timeline type: [`SimTime`],
//! an integer number of **picoseconds** since simulation start. One
//! picosecond resolves every clock the models use (a 5 GHz core cycle is
//! 200 ps; a 10 Gb/s optical bit-slot is 100 ps) with no rounding drift,
//! and a `u64` of picoseconds covers ~213 days of simulated time —
//! comfortably beyond any full-system run.
//!
//! [`Freq`] converts between cycle counts and picoseconds for a given
//! clock domain; components in different domains interact only through
//! `SimTime`, never through raw cycle counts.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;

/// A point on (or distance along) the simulated timeline, in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls below are the ones meaningful under that reading
/// (`time + dur`, `time - time -> dur`). Saturating subtraction is
/// deliberate: timeline corrections in the trace replayer may transiently
/// move an event before its old reference point, and a panic there would
/// turn a modelling inaccuracy into a crash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as "never" / sentinel deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (fractional).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Value in microseconds (fractional).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Saturating difference, treating both operands as timestamps.
    ///
    /// Returns zero when `earlier` is actually later; see the type-level
    /// comment for why this is saturating rather than panicking.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Absolute difference between two timestamps.
    #[inline]
    pub fn abs_diff(self, other: SimTime) -> SimTime {
        SimTime(self.0.abs_diff(other.0))
    }

    /// Multiply a duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.0 as f64 / PS_PER_MS as f64)
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.0 as f64 / PS_PER_US as f64)
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3}ns", self.0 as f64 / PS_PER_NS as f64)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A cycle count in some clock domain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

/// A clock domain, stored as the period of one cycle in picoseconds.
///
/// Stored as a period (not a frequency in Hz) so that cycle→time
/// conversion is a single integer multiply and stays exact for every
/// frequency whose period is a whole number of picoseconds — which
/// covers all frequencies used in the models (5 GHz → 200 ps, 2 GHz →
/// 500 ps, 1.25 GHz → 800 ps, ...).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Freq {
    period_ps: u64,
}

impl Freq {
    /// A clock with the given period in picoseconds.
    ///
    /// # Panics
    /// Panics on a zero period, which would make time stand still.
    pub const fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be positive");
        Freq { period_ps }
    }

    /// A clock of `ghz` gigahertz. Requires the period to be a whole
    /// number of picoseconds (true for every config in this workspace);
    /// panics otherwise so an inexact clock is caught at construction.
    pub fn from_ghz(ghz: u64) -> Self {
        assert!(ghz > 0, "frequency must be positive");
        assert!(
            1000 % ghz == 0,
            "period of {ghz} GHz is not a whole number of picoseconds"
        );
        Freq {
            period_ps: 1000 / ghz,
        }
    }

    /// A clock of `mhz` megahertz (period must divide evenly).
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        assert!(
            1_000_000 % mhz == 0,
            "period of {mhz} MHz is not a whole number of picoseconds"
        );
        Freq {
            period_ps: 1_000_000 / mhz,
        }
    }

    /// Period of one cycle.
    #[inline]
    pub const fn period(self) -> SimTime {
        SimTime(self.period_ps)
    }

    /// Duration of `n` cycles.
    #[inline]
    pub const fn cycles(self, n: u64) -> SimTime {
        SimTime(self.period_ps * n)
    }

    /// Duration of a [`Cycles`] count.
    #[inline]
    pub const fn cycles_t(self, n: Cycles) -> SimTime {
        SimTime(self.period_ps * n.0)
    }

    /// How many *complete* cycles fit in `t`.
    #[inline]
    pub const fn cycles_in(self, t: SimTime) -> Cycles {
        Cycles(t.0 / self.period_ps)
    }

    /// The first cycle boundary at or after `t` (clock-domain crossing:
    /// a signal arriving mid-cycle is sampled at the next edge).
    #[inline]
    pub const fn next_edge(self, t: SimTime) -> SimTime {
        let rem = t.0 % self.period_ps;
        if rem == 0 {
            t
        } else {
            SimTime(t.0 + self.period_ps - rem)
        }
    }

    /// Frequency in GHz, for reporting.
    pub fn ghz(self) -> f64 {
        1000.0 / self.period_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimTime::from_us(2).as_ps(), 2_000_000);
        assert_eq!(SimTime::from_ps(7).as_ps(), 7);
        assert!((SimTime::from_ns(5).as_ns_f64() - 5.0).abs() < 1e-12);
        assert!((SimTime::from_us(5).as_us_f64() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        // saturating: earlier - later == 0
        assert_eq!((b - a).as_ps(), 0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ps(), 140);
        c -= a;
        assert_eq!(c.as_ps(), 40);
    }

    #[test]
    fn saturating_since_and_abs_diff() {
        let a = SimTime::from_ps(10);
        let b = SimTime::from_ps(30);
        assert_eq!(b.saturating_since(a).as_ps(), 20);
        assert_eq!(a.saturating_since(b).as_ps(), 0);
        assert_eq!(a.abs_diff(b).as_ps(), 20);
        assert_eq!(b.abs_diff(a).as_ps(), 20);
    }

    #[test]
    fn freq_cycle_conversions() {
        let f = Freq::from_ghz(5); // 200 ps
        assert_eq!(f.period().as_ps(), 200);
        assert_eq!(f.cycles(3).as_ps(), 600);
        assert_eq!(f.cycles_in(SimTime::from_ps(999)).0, 4);
        assert_eq!(f.cycles_in(SimTime::from_ps(1000)).0, 5);
        assert!((f.ghz() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn freq_next_edge() {
        let f = Freq::from_ghz(2); // 500 ps
        assert_eq!(f.next_edge(SimTime::from_ps(0)).as_ps(), 0);
        assert_eq!(f.next_edge(SimTime::from_ps(1)).as_ps(), 500);
        assert_eq!(f.next_edge(SimTime::from_ps(500)).as_ps(), 500);
        assert_eq!(f.next_edge(SimTime::from_ps(501)).as_ps(), 1000);
    }

    #[test]
    #[should_panic(expected = "whole number of picoseconds")]
    fn freq_rejects_inexact_ghz() {
        let _ = Freq::from_ghz(3); // 333.33 ps — not representable
    }

    #[test]
    fn freq_mhz() {
        let f = Freq::from_mhz(500); // 2000 ps
        assert_eq!(f.period().as_ps(), 2000);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = [
            SimTime::from_ps(30),
            SimTime::from_ps(10),
            SimTime::from_ps(20),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|t| t.as_ps()).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn scaled_saturates() {
        assert_eq!(SimTime::MAX.scaled(2), SimTime::MAX);
        assert_eq!(SimTime::from_ps(3).scaled(4).as_ps(), 12);
    }
}
