//! The sctf binary trace container's end-to-end contract (PR10
//! tentpole): round-tripping a capture through the container is
//! lossless, replaying a decoded trace is bit-identical to replaying
//! the original on every detailed network model at any capture thread
//! count, and the zero-copy reader's preinstalled dependency CSR
//! drives the oracle to the exact same timeline as the built-on-demand
//! one.

use proptest::prelude::*;
use sctm::prelude::*;
use sctm_engine::net::NetworkModel;
use sctm_trace::sctf::{encoded_size, from_sctf_bytes, to_sctf_bytes};
use sctm_trace::{
    replay_fixed, replay_oracle, replay_oracle_preloaded, replay_oracle_with, replay_sctm_pass,
    ReplayScratch, SctfReader, TraceLog, TraceStore,
};

fn capture(side: usize, kernel: Kernel, ops: usize, seed: u64, threads: usize) -> TraceLog {
    Experiment::new(SystemConfig::new(side, NetworkKind::Omesh), kernel)
        .with_ops(ops)
        .with_seed(seed)
        .with_capture_threads(threads)
        .capture()
}

fn detailed_net(side: usize, kind: NetworkKind) -> Box<dyn NetworkModel> {
    SystemConfig::make_network_kind(side, kind)
}

/// The full replay timeline as one comparable string: exact inject and
/// deliver instants for every message.
fn timeline(r: &sctm_trace::ReplayResult) -> String {
    format!(
        "exec={:?} inject={:?} deliver={:?}",
        r.est_exec_time, r.inject, r.deliver
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Encoding a real capture into the container and decoding it back
    /// reproduces the log exactly (CSV interchange bytes compare every
    /// field), through both the direct codec and the format-sniffing
    /// store facade.
    #[test]
    fn container_roundtrip_is_lossless(
        seed in 1u64..500,
        ops in 120usize..300,
        kchoice in 0usize..5,
    ) {
        let kernel = [Kernel::Fft, Kernel::Lu, Kernel::Barnes, Kernel::Streamcluster, Kernel::Canneal][kchoice];
        let log = capture(2, kernel, ops, seed, 1);
        let bytes = to_sctf_bytes(&log);
        prop_assert_eq!(bytes.len(), encoded_size(&log), "encoded_size must be exact");
        let back = from_sctf_bytes(&bytes).expect("decode");
        prop_assert_eq!(back.to_csv_string(), log.to_csv_string());
        let sniffed = TraceStore::decode(&bytes).expect("sniff+decode");
        prop_assert_eq!(sniffed.to_csv_string(), log.to_csv_string());
    }

    /// A decoded sctf trace replays to the *bit-identical* timeline the
    /// original produced, on every detailed network model, whatever
    /// thread count captured it. The container can therefore stand in
    /// for the in-memory log anywhere in the self-correction loop.
    #[test]
    fn decoded_traces_replay_bit_identically_on_all_detailed_models(
        seed in 1u64..500,
        threads_ix in 0usize..3,
    ) {
        let threads = [1usize, 4, 8][threads_ix];
        let log = capture(4, Kernel::Fft, 150, seed, threads);
        let back = from_sctf_bytes(&to_sctf_bytes(&log)).expect("decode");
        for kind in NetworkKind::DETAILED {
            for (name, engine) in [
                ("fixed", replay_fixed as fn(&TraceLog, &mut dyn NetworkModel) -> _),
                ("sctm_pass", replay_sctm_pass),
                ("oracle", replay_oracle),
            ] {
                let a = engine(&log, detailed_net(4, kind).as_mut());
                let b = engine(&back, detailed_net(4, kind).as_mut());
                prop_assert_eq!(
                    timeline(&a),
                    timeline(&b),
                    "{} replay diverged on {} at {} capture threads",
                    name,
                    kind.label(),
                    threads
                );
            }
        }
    }

    /// The reader's stored children CSR, memcpy-installed into the
    /// replay scratch, drives the oracle to the same timeline as the
    /// CSR built from the log on demand.
    #[test]
    fn preinstalled_csr_matches_on_demand_build(seed in 1u64..500) {
        let log = capture(2, Kernel::Lu, 150, seed, 1);
        let reader = SctfReader::from_bytes(&to_sctf_bytes(&log)).expect("reader");
        let mut scratch = ReplayScratch::new();
        prop_assert!(reader.install_children_csr(&mut scratch), "v1 writer always stores the CSR");
        let pre = replay_oracle_preloaded(&log, detailed_net(2, NetworkKind::Omesh).as_mut(), &mut scratch);
        let mut scratch2 = ReplayScratch::new();
        let built = replay_oracle_with(&log, detailed_net(2, NetworkKind::Omesh).as_mut(), &mut scratch2);
        prop_assert_eq!(timeline(&pre), timeline(&built));
    }
}

/// Footprint guarantees on a 64-core fft capture. Two ratios matter:
/// the container is smaller than the CSV text it replaces on disk and
/// on the wire, and — the cold-load residency contract — the
/// zero-copy reader's resident bytes are at most half what the parsed
/// row-struct log costs in memory. The latter is why the capture
/// cache's byte budget holds several× more workloads when entries
/// freeze to sctf.
#[test]
fn sctf_resident_bytes_are_at_most_half_the_parsed_log_at_64_cores() {
    let log = capture(8, Kernel::Fft, 300, 1, 1);
    let csv = log.to_csv_string().len();
    let sctf = encoded_size(&log);
    assert!(
        sctf < csv,
        "container ({sctf} B) must beat CSV text ({csv} B)"
    );
    let resident = log.resident_bytes();
    assert!(
        sctf * 2 <= resident,
        "sctf {sctf} B vs parsed-log {resident} B resident: ratio {:.2}",
        sctf as f64 / resident as f64
    );
    // The reader holds exactly the container (plus alignment slack),
    // never a per-record materialization.
    let reader = SctfReader::from_bytes(&to_sctf_bytes(&log)).expect("reader");
    assert_eq!(reader.byte_len(), sctf);
}

/// The store facade writes whichever format the extension names and
/// autodetects it back by magic, so a mixed directory of `.trace.csv`
/// and `.sctf` files loads through one call.
#[test]
fn save_load_autodetects_both_formats_on_disk() {
    let dir = std::env::temp_dir().join(format!("sctm-fmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let log = capture(2, Kernel::Fft, 120, 7, 1);
    let csv_path = dir.join("a.trace.csv");
    let sctf_path = dir.join("a.sctf");
    log.save(&csv_path).expect("save csv");
    log.save(&sctf_path).expect("save sctf");
    let csv_bytes = std::fs::read(&csv_path).expect("read");
    let sctf_bytes = std::fs::read(&sctf_path).expect("read");
    assert!(csv_bytes.starts_with(b"sctm-trace-v1"));
    assert!(sctf_bytes.starts_with(&sctm_trace::sctf::SCTF_MAGIC));
    for p in [&csv_path, &sctf_path] {
        let back = TraceLog::load(p).expect("load");
        assert_eq!(back.to_csv_string(), log.to_csv_string(), "{}", p.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
