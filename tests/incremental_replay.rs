//! Bit-identity contract of incremental self-correction replay (PR6
//! tentpole): with dirty-frontier checkpoints on, every `RunReport` —
//! execution time, message counts, float bits of the latency means,
//! per-iteration stats — must equal the from-scratch loop exactly, at
//! every workload, detailed model, capture thread count and damping
//! setting. Incremental replay is a pure wall-time optimisation; any
//! observable difference is a bug.
//!
//! The capture thread count is deliberately left on its `SCTM_THREADS`
//! default in most tests so the CI matrix ({1, 4, 8}) sweeps it, and
//! pinned explicitly in the thread-sweep test.

use sctm::prelude::*;

fn exp(kind: NetworkKind, kernel: Kernel) -> Experiment {
    Experiment::new(SystemConfig::new(4, kind), kernel).with_ops(160)
}

fn fingerprint(r: &RunReport) -> String {
    format!(
        "mode={} net={} wl={} exec={:?} ctrl={:?} data={:?} msgs={} iters={:?}",
        r.mode,
        r.network,
        r.workload,
        r.exec_time,
        r.mean_lat_ctrl_ns.to_bits(),
        r.mean_lat_data_ns.to_bits(),
        r.messages,
        r.iterations,
    )
}

/// The same experiment with incremental replay on and off; both reports
/// must be indistinguishable.
fn assert_identical(e: &Experiment, spec: &RunSpec, ctx: &str) {
    let on = e
        .execute(&spec.clone().with_incremental(true))
        .expect("valid spec")
        .report;
    let off = e
        .execute(&spec.clone().with_incremental(false))
        .expect("valid spec")
        .report;
    assert_eq!(
        fingerprint(&on),
        fingerprint(&off),
        "{ctx}: incremental replay diverged from full replay"
    );
}

#[test]
fn identical_on_every_detailed_model_and_damping() {
    for kind in NetworkKind::DETAILED {
        for damping in [1.0, 0.0] {
            let spec = RunSpec::self_correction(3)
                .with_damping(damping)
                .with_factor_epsilon(0.0);
            assert_identical(
                &exp(kind, Kernel::Fft),
                &spec,
                &format!("{} damping={damping}", kind.label()),
            );
        }
    }
}

#[test]
fn identical_on_every_workload() {
    for kernel in [
        Kernel::Fft,
        Kernel::Lu,
        Kernel::Barnes,
        Kernel::Streamcluster,
    ] {
        let spec = RunSpec::self_correction(4).with_damping(0.6);
        assert_identical(&exp(NetworkKind::Omesh, kernel), &spec, kernel.label());
    }
}

#[test]
fn identical_at_every_capture_thread_count() {
    // Two invariants at once: incremental == full at each thread count,
    // and the incremental report itself is thread-count-invariant.
    let spec = RunSpec::self_correction(3);
    let mut first: Option<String> = None;
    for threads in [1, 2, 4, 8] {
        let e = exp(NetworkKind::Omesh, Kernel::Fft).with_capture_threads(threads);
        assert_identical(&e, &spec, &format!("threads={threads}"));
        let on = e
            .execute(&spec.clone().with_incremental(true))
            .expect("valid spec")
            .report;
        let fp = fingerprint(&on);
        match &first {
            None => first = Some(fp),
            Some(f) => assert_eq!(f, &fp, "incremental diverged at {threads} threads"),
        }
    }
}

#[test]
fn identical_when_seeded_and_at_higher_iteration_caps() {
    let e = exp(NetworkKind::Omesh, Kernel::Fft);
    let log = e.capture();
    for iters in [1, 2, 6] {
        let spec = RunSpec::self_correction(iters).with_factor_epsilon(0.0);
        let on = e
            .execute_seeded(&spec.clone().with_incremental(true), Some(&log))
            .expect("valid spec")
            .report;
        let off = e
            .execute_seeded(&spec.with_incremental(false), Some(&log))
            .expect("valid spec")
            .report;
        assert_eq!(fingerprint(&on), fingerprint(&off), "iters={iters}");
    }
}
