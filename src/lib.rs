//! # sctm — Self-Correction Trace Model
//!
//! Umbrella crate for the SCTM workspace: a full-system simulator for
//! Optical Network-on-Chip, reproducing Zhang, He & Fan (IPDPSW 2012).
//! Everything re-exports from [`sctm_core`]; see that crate (and
//! `README.md` / `DESIGN.md`) for the guided tour.
//!
//! ```no_run
//! use sctm::prelude::*;
//!
//! let system = SystemConfig::new(8, NetworkKind::Omesh); // 64 cores
//! let exp = Experiment::new(system, Kernel::Fft);
//! let report = exp.execute(&RunSpec::self_correction(4))?.report;
//! println!("estimated execution time: {}", report.exec_time);
//! # Ok::<(), SctmError>(())
//! ```

pub use sctm_core::*;

/// The blessed API surface, importable in one line.
///
/// Everything a typical caller needs to describe and run a simulation:
/// the experiment builder, the unified request/outcome types, the error
/// enum, and the trace log for capture reuse. Anything deeper (network
/// internals, the event kernel, observability) stays behind the
/// component re-exports in the crate root — stable code should prefer
/// this module, which is covered by the deprecation policy in
/// `DESIGN.md` §10.4.
pub mod prelude {
    pub use sctm_core::trace::TraceLog;
    pub use sctm_core::workloads::Kernel;
    pub use sctm_core::{
        accuracy, Accuracy, Experiment, Mode, NetworkKind, RunOutcome, RunReport, RunSpec,
        SctmError, SystemConfig,
    };
}
