//! Property-based tests of the simulation kernel primitives.

use proptest::prelude::*;
use sctm_engine::event::EventQueue;
use sctm_engine::rng::StreamRng;
use sctm_engine::stats::{geomean, Histogram, Running};
use sctm_engine::time::{Freq, SimTime};

proptest! {
    /// The event queue is a total order: pops are sorted by (time, seq)
    /// regardless of insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut count = 0;
        while let Some(e) = q.pop() {
            prop_assert!((e.at, e.seq) >= last, "order violated");
            last = (e.at, e.seq);
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Histogram quantiles are sandwiched by min/max and monotone in q.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(0u64..1_000_000_000, 2..500)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", vals);
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        prop_assert_eq!(vals[0], lo);
        prop_assert_eq!(*vals.last().unwrap(), hi);
    }

    /// Histogram mean is exact (tracked outside the buckets).
    #[test]
    fn histogram_mean_exact(samples in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let expect = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-6);
    }

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn running_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let (l, r) = xs.split_at(split);
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in l { a.push(x); }
        for &x in r { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() / whole.variance().max(1.0) < 1e-6);
    }

    /// Stream derivation is a pure function of (master seed, name, idx).
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), idx in any::<u64>()) {
        let r1 = StreamRng::new(seed);
        let r2 = StreamRng::new(seed);
        let mut a = r1.stream("x", idx);
        let mut b = r2.stream("x", idx);
        for _ in 0..16 {
            prop_assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    /// `below(n)` is always `< n`.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = StreamRng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Clock-domain conversion roundtrip: cycles_in(cycles(n)) == n.
    #[test]
    fn freq_roundtrip(ghz in prop_oneof![Just(1u64), Just(2), Just(4), Just(5)], n in 0u64..1_000_000) {
        let f = Freq::from_ghz(ghz);
        prop_assert_eq!(f.cycles_in(f.cycles(n)).0, n);
        // next_edge is idempotent and aligned.
        let t = SimTime::from_ps(n * 7 + 3);
        let e = f.next_edge(t);
        prop_assert!(e >= t);
        prop_assert_eq!(f.next_edge(e), e);
        prop_assert_eq!(e.as_ps() % f.period().as_ps(), 0);
    }

    /// Geomean lies within [min, max] of its inputs.
    #[test]
    fn geomean_bounded(xs in prop::collection::vec(0.001f64..1e6, 1..50)) {
        let g = geomean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo * 0.999 && g <= hi * 1.001, "geomean {g} outside [{lo}, {hi}]");
    }
}
