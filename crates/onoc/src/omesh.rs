//! Circuit-switched photonic mesh (PhoenixSim-style).
//!
//! Data messages travel optically on a mesh of waveguides with microring
//! switches. Before light can be launched, an electrical *setup* packet
//! walks the XY route hop by hop, reserving each waveguide segment; when
//! it reaches the destination an ACK returns to the source, which then
//! transmits the whole message as one optical burst (time of flight +
//! serialisation) and finally tears the path down. Short control
//! messages are sent directly on the electrical control plane — paying
//! the optical setup overhead for an 8-byte message would be absurd, and
//! this hybrid split is what the 2012-era designs did.
//!
//! Contention is modelled at two honest points:
//! * waveguide segments are held for the full transfer, so colliding
//!   paths serialise (the dominant circuit-switching effect), and
//! * each control-plane router serves one setup/control event per
//!   service slot, so the electrical plane saturates realistically.
//!
//! Hold-and-wait on XY-ordered segments cannot deadlock: the segment
//! acquisition order follows the XY channel dependency graph, which is
//! acyclic (same argument as XY wormhole routing).

use crate::layout::Floorplan;
use sctm_engine::event::EventQueue;
use sctm_engine::msgtable::MsgTable;
use sctm_engine::net::{
    Delivery, LatencyBreakdown, Message, MsgClass, MsgLifecycle, NetStats, NetworkModel, NodeId,
    NodeObs,
};
use sctm_engine::time::{Freq, SimTime};
use sctm_obs as obs;
use sctm_photonic::{ChannelPlan, DeviceKit, LinkBudget, PowerBreakdown};
use std::collections::VecDeque;

/// Configuration for the circuit-switched photonic mesh.
#[derive(Clone, Copy, Debug)]
pub struct OmeshConfig {
    pub floorplan: Floorplan,
    pub kit: DeviceKit,
    pub plan: ChannelPlan,
    /// Electrical control-plane clock.
    pub ctrl_freq: Freq,
    /// Per-hop latency of setup/control packets, control cycles.
    pub setup_hop_cycles: u64,
    /// Router service occupancy per control event, control cycles.
    pub service_cycles: u64,
    /// NI latency at each end, control cycles.
    pub ni_cycles: u64,
    /// Messages at or below this payload go electrically.
    pub ctrl_cutoff_bytes: u32,
    /// Whether the source waits for a reservation ACK before launching.
    pub ack_required: bool,
}

impl OmeshConfig {
    pub fn new(side: usize) -> Self {
        OmeshConfig {
            floorplan: Floorplan::new(side, 2.5),
            kit: DeviceKit::default(),
            plan: ChannelPlan::default(),
            ctrl_freq: Freq::from_ghz(2),
            setup_hop_cycles: 3,
            service_cycles: 1,
            ni_cycles: 2,
            ctrl_cutoff_bytes: 8,
            ack_required: true,
        }
    }

    /// The loss/power budget of this instance.
    pub fn budget(&self) -> LinkBudget {
        self.floorplan.omesh_budget(self.kit, self.plan)
    }
}

/// XY route endpoints in mesh coordinates, resolved once at injection.
///
/// The route itself is never materialised: every node on it — and the
/// direction of every step — is computable in O(1) from these four
/// coordinates, so per-message state stays allocation-free and the
/// per-event handlers never pay a div/mod to recover positions.
#[derive(Clone, Copy, Debug)]
struct Route {
    sx: u32,
    sy: u32,
    dx: u32,
    dy: u32,
}

impl Route {
    #[inline]
    fn new(side: usize, src: NodeId, dst: NodeId) -> Self {
        let side = side as u32;
        let (s, d) = (src.idx() as u32, dst.idx() as u32);
        Route {
            sx: s % side,
            sy: s / side,
            dx: d % side,
            dy: d / side,
        }
    }

    /// Number of nodes on the route, inclusive of both endpoints.
    #[inline]
    fn len(&self) -> usize {
        (self.sx.abs_diff(self.dx) + self.sy.abs_diff(self.dy) + 1) as usize
    }

    /// The `k`-th node on the route (X first, then Y — identical order
    /// to walking the route hop by hop).
    #[inline]
    fn node(&self, side: usize, k: usize) -> NodeId {
        let k = k as u32;
        let xsteps = self.sx.abs_diff(self.dx);
        if k <= xsteps {
            let x = if self.dx >= self.sx {
                self.sx + k
            } else {
                self.sx - k
            };
            NodeId(self.sy * side as u32 + x)
        } else {
            let step = k - xsteps;
            let y = if self.dy >= self.sy {
                self.sy + step
            } else {
                self.sy - step
            };
            NodeId(y * side as u32 + self.dx)
        }
    }

    /// Direction (0=N,1=E,2=S,3=W) of the step from node `k` to `k+1`.
    #[inline]
    fn step_dir(&self, k: usize) -> usize {
        let xsteps = self.sx.abs_diff(self.dx) as usize;
        if k < xsteps {
            if self.dx > self.sx {
                1
            } else {
                3
            }
        } else if self.dy > self.sy {
            2
        } else {
            0
        }
    }

    /// Segment id (`node*4 + dir`) of the step from node `k` to `k+1`.
    #[inline]
    fn seg(&self, side: usize, k: usize) -> usize {
        self.node(side, k).idx() * 4 + self.step_dir(k)
    }
}

#[derive(Clone, Copy, Debug)]
struct MsgState {
    msg: Message,
    injected_at: SimTime,
    route: Route,
    /// When this message's setup joined a segment wait queue (valid
    /// while parked in `seg_wait`; used only for blame accounting).
    blocked_at: SimTime,
    bd: LatencyBreakdown,
}

/// The route position travels *in the event*, not in [`MsgState`]: the
/// per-hop handlers are the replay hot path, and carrying `hop` in the
/// payload means the common (non-capture) path reads the message table
/// once per event instead of read-then-write.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Optical path setup packet arrives at route position `hop`.
    Setup(u64, u32),
    /// Electrical control message arrives at route position `hop`.
    CtrlHop(u64, u32),
    /// Optical burst fully received; tear down and deliver.
    OptDone(u64),
    /// Electrical delivery.
    CtrlDone(u64),
}

/// Circuit-switched photonic mesh simulator.
#[derive(Clone, Debug)]
pub struct OmeshSim {
    cfg: OmeshConfig,
    q: EventQueue<Ev>,
    msgs: MsgTable<MsgState>,
    /// Directed segment `node*4+dir` → holder message id.
    seg_busy: Vec<Option<u64>>,
    /// Parked setups per segment: `(message id, route position)`.
    seg_wait: Vec<VecDeque<(u64, u32)>>,
    /// When each busy segment was last acquired (valid while busy).
    seg_since: Vec<SimTime>,
    /// Cumulative outbound-segment busy time per node, for observability.
    node_busy_ps: Vec<u64>,
    /// Control-plane router next-free times.
    router_free: Vec<SimTime>,
    stats: NetStats,
    /// Optical payload bits transmitted (for the energy report).
    optical_bits: u64,
    side: usize,
    capture: bool,
    lifecycles: Vec<MsgLifecycle>,
}

/// Direction encoding for segments: 0=N,1=E,2=S,3=W. Reference
/// implementation — the hot path uses [`Route::step_dir`]; tests check
/// the two agree on every route step.
#[cfg(test)]
fn dir_between(side: usize, a: NodeId, b: NodeId) -> usize {
    let (ax, ay) = (a.idx() % side, a.idx() / side);
    let (bx, by) = (b.idx() % side, b.idx() / side);
    if by + 1 == ay {
        0
    } else if bx == ax + 1 {
        1
    } else if by == ay + 1 {
        2
    } else if bx + 1 == ax {
        3
    } else {
        panic!("nodes {a}/{b} are not mesh neighbours")
    }
}

impl OmeshSim {
    pub fn new(cfg: OmeshConfig) -> Self {
        let n = cfg.floorplan.num_nodes();
        OmeshSim {
            cfg,
            q: EventQueue::new(),
            msgs: MsgTable::new(),
            seg_busy: vec![None; n * 4],
            seg_wait: (0..n * 4).map(|_| VecDeque::new()).collect(),
            seg_since: vec![SimTime::ZERO; n * 4],
            node_busy_ps: vec![0; n],
            router_free: vec![SimTime::ZERO; n],
            stats: NetStats::default(),
            optical_bits: 0,
            side: cfg.floorplan.side,
            capture: false,
            lifecycles: Vec::new(),
        }
    }

    pub fn config(&self) -> &OmeshConfig {
        &self.cfg
    }

    /// Power breakdown at the utilisation implied by `elapsed` sim time.
    pub fn power_report(&self, elapsed: SimTime) -> PowerBreakdown {
        let budget = self.cfg.budget();
        let ns = elapsed.as_ns_f64().max(1e-9);
        let gbps = self.optical_bits as f64 / ns; // bits/ns == Gb/s
        let util = (gbps / budget.peak_gbps()).clamp(0.0, 1.0);
        budget.power(util)
    }

    /// XY route, inclusive of both endpoints (test/diagnostic helper —
    /// the hot path uses [`Route::node`] directly and never builds it).
    #[cfg(test)]
    fn xy_path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let r = Route::new(self.side, src, dst);
        (0..r.len()).map(|k| r.node(self.side, k)).collect()
    }

    fn cycles(&self, n: u64) -> SimTime {
        self.cfg.ctrl_freq.cycles(n)
    }

    /// Serve an event at router `r`: returns the service-complete time
    /// and occupies the router.
    fn serve(&mut self, r: NodeId, at: SimTime) -> SimTime {
        let free = self.router_free[r.idx()];
        let start = at.max(free);
        let done = start + self.cycles(self.cfg.service_cycles);
        self.router_free[r.idx()] = done;
        done
    }

    fn handle(&mut self, at: SimTime, ev: Ev, out: &mut Vec<Delivery>) {
        match ev {
            Ev::Setup(id, hop) => self.handle_setup(at, id, hop),
            Ev::CtrlHop(id, hop) => self.handle_ctrl_hop(at, id, hop),
            Ev::OptDone(id) => self.handle_opt_done(at, id, out),
            Ev::CtrlDone(id) => {
                let st = self.msgs.remove(id).expect("ctrl done for unknown msg");
                obs::sim_event("omesh", "deliver", st.msg.dst.0, at);
                let d = Delivery {
                    msg: st.msg,
                    injected_at: st.injected_at,
                    delivered_at: at,
                };
                self.stats.record_delivery(&d);
                if self.capture {
                    self.push_lifecycle(&st, at);
                }
                out.push(d);
            }
        }
    }

    /// Close out a lifecycle: reconcile the accumulated bins against
    /// the measured end-to-end latency. Slack no phase claimed counts
    /// as queueing; overshoot (only possible through the
    /// grant-before-service clamp in [`Self::advance_setup`]) is
    /// trimmed, so the components always sum exactly to the latency.
    fn push_lifecycle(&mut self, st: &MsgState, delivered_at: SimTime) {
        let mut bd = st.bd;
        let lat = delivered_at.saturating_since(st.injected_at).as_ps();
        let sum = bd.total_ps();
        if sum < lat {
            bd.queue_ps += lat - sum;
        } else if sum > lat {
            let mut over = sum - lat;
            for slot in [
                &mut bd.queue_ps,
                &mut bd.propagation_ps,
                &mut bd.arbitration_ps,
                &mut bd.serialization_ps,
                &mut bd.overhead_ps,
            ] {
                let cut = (*slot).min(over);
                *slot -= cut;
                over -= cut;
                if over == 0 {
                    break;
                }
            }
        }
        self.lifecycles.push(MsgLifecycle {
            msg: st.msg,
            injected_at: st.injected_at,
            delivered_at,
            breakdown: bd,
        });
    }

    fn handle_setup(&mut self, at: SimTime, id: u64, hop: u32) {
        let hop = hop as usize;
        let st = self.msgs.get(id).expect("setup for unknown msg");
        let (route, msg) = (st.route, st.msg);
        let here = route.node(self.side, hop);
        let len = route.len();
        let last = hop + 1 == len;
        let svc_done = self.serve(here, at);
        if self.capture {
            let svc = self.cycles(self.cfg.service_cycles).as_ps();
            let bd = &mut self.msgs.get_mut(id).expect("unknown message").bd;
            bd.queue_ps += svc_done.saturating_since(at).as_ps().saturating_sub(svc);
            bd.arbitration_ps += svc;
        }
        if last {
            // Path fully reserved. ACK back to source (uncontended
            // control broadcast on the reserved path), then the optical
            // burst: time of flight + serialisation.
            debug_assert_eq!(here, msg.dst);
            let hops = (len - 1) as u64;
            let ack = if self.cfg.ack_required {
                self.cycles(self.cfg.setup_hop_cycles * hops)
            } else {
                SimTime::ZERO
            };
            let length_mm = self.cfg.floorplan.mesh_distance_mm(msg.src, msg.dst);
            let tof = SimTime::from_ps(self.cfg.kit.waveguide.tof_ps(length_mm));
            let burst = self.cfg.plan.burst_time(msg.bytes);
            let arrive = svc_done + ack + tof + burst + self.cycles(self.cfg.ni_cycles);
            self.optical_bits += msg.bytes as u64 * 8;
            if self.capture {
                let ni = self.cycles(self.cfg.ni_cycles).as_ps();
                let bd = &mut self.msgs.get_mut(id).expect("unknown message").bd;
                bd.arbitration_ps += ack.as_ps();
                bd.propagation_ps += tof.as_ps();
                bd.serialization_ps += burst.as_ps();
                bd.overhead_ps += ni;
            }
            self.q.schedule(arrive, Ev::OptDone(id));
        } else {
            let seg = route.seg(self.side, hop);
            if self.seg_busy[seg].is_none() {
                self.seg_busy[seg] = Some(id);
                self.seg_since[seg] = svc_done;
                obs::sim_event("omesh", "arbitrate", (seg / 4) as u32, svc_done);
                self.advance_setup(id, hop as u32, svc_done);
            } else {
                if self.capture {
                    self.msgs.get_mut(id).expect("unknown message").blocked_at = svc_done;
                }
                self.seg_wait[seg].push_back((id, hop as u32));
            }
        }
    }

    /// Move the setup from route position `hop` to the next router
    /// (segment already reserved). No table access on the common path:
    /// the position rides in the event.
    fn advance_setup(&mut self, id: u64, hop: u32, from_time: SimTime) {
        let hop_time = self.cycles(self.cfg.setup_hop_cycles);
        if self.capture {
            let st = self.msgs.get_mut(id).unwrap();
            st.bd.propagation_ps += hop_time.as_ps();
        }
        let t = from_time + hop_time;
        self.q.schedule(t.max(self.q.now()), Ev::Setup(id, hop + 1));
    }

    fn handle_ctrl_hop(&mut self, at: SimTime, id: u64, hop: u32) {
        let hop = hop as usize;
        let route = self.msgs.get(id).expect("ctrl hop for unknown msg").route;
        let here = route.node(self.side, hop);
        let last = hop + 1 == route.len();
        let svc_done = self.serve(here, at);
        if self.capture {
            let svc = self.cycles(self.cfg.service_cycles).as_ps();
            let ni = self.cycles(self.cfg.ni_cycles).as_ps();
            let wire = self.cycles(self.cfg.setup_hop_cycles).as_ps();
            let bd = &mut self.msgs.get_mut(id).expect("unknown message").bd;
            bd.queue_ps += svc_done.saturating_since(at).as_ps().saturating_sub(svc);
            bd.arbitration_ps += svc;
            if last {
                bd.overhead_ps += ni; // trailing NI on the electrical plane
            } else {
                bd.propagation_ps += wire; // wire hop to the next router
            }
        }
        if last {
            let t = svc_done + self.cycles(self.cfg.ni_cycles);
            self.q.schedule(t, Ev::CtrlDone(id));
        } else {
            let t = svc_done + self.cycles(self.cfg.setup_hop_cycles);
            self.q.schedule(t, Ev::CtrlHop(id, hop as u32 + 1));
        }
    }

    fn handle_opt_done(&mut self, at: SimTime, id: u64, out: &mut Vec<Delivery>) {
        let st = self.msgs.remove(id).expect("opt done for unknown msg");
        // Tear down every segment and hand freed ones to waiters.
        for k in 0..st.route.len() - 1 {
            let seg = st.route.seg(self.side, k);
            debug_assert_eq!(self.seg_busy[seg], Some(id), "segment not held by owner");
            self.seg_busy[seg] = None;
            self.node_busy_ps[seg / 4] += at.saturating_since(self.seg_since[seg]).as_ps();
            if let Some((next_id, next_hop)) = self.seg_wait[seg].pop_front() {
                self.seg_busy[seg] = Some(next_id);
                self.seg_since[seg] = at;
                obs::sim_event("omesh", "arbitrate", (seg / 4) as u32, at);
                if self.capture {
                    let w = self.msgs.get_mut(next_id).expect("unknown waiter");
                    w.bd.queue_ps += at.saturating_since(w.blocked_at).as_ps();
                }
                self.advance_setup(next_id, next_hop, at);
            }
        }
        obs::sim_event("omesh", "deliver", st.msg.dst.0, at);
        let d = Delivery {
            msg: st.msg,
            injected_at: st.injected_at,
            delivered_at: at,
        };
        self.stats.record_delivery(&d);
        if self.capture {
            self.push_lifecycle(&st, at);
        }
        out.push(d);
    }
}

impl NetworkModel for OmeshSim {
    fn snapshot(&self) -> Option<Box<dyn NetworkModel>> {
        Some(Box::new(self.clone()))
    }

    fn num_nodes(&self) -> usize {
        self.cfg.floorplan.num_nodes()
    }

    fn inject(&mut self, at: SimTime, msg: Message) {
        let at = at.max(self.q.now());
        self.stats.injected += 1;
        obs::sim_event("omesh", "inject", msg.src.0, at);
        let id = msg.id.0;
        let electrical = msg.bytes <= self.cfg.ctrl_cutoff_bytes
            || msg.class == MsgClass::Control
            || msg.src == msg.dst;
        let mut bd = LatencyBreakdown::default();
        if self.capture {
            bd.overhead_ps = self.cycles(self.cfg.ni_cycles).as_ps();
        }
        let st = MsgState {
            msg,
            injected_at: at,
            route: Route::new(self.side, msg.src, msg.dst),
            blocked_at: SimTime::ZERO,
            bd,
        };
        let prev = self.msgs.insert(id, st);
        debug_assert!(prev.is_none(), "duplicate message id {id}");
        let start = at + self.cycles(self.cfg.ni_cycles);
        if electrical {
            self.q.schedule(start, Ev::CtrlHop(id, 0));
        } else {
            self.q.schedule(start, Ev::Setup(id, 0));
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    fn advance_until(&mut self, t: SimTime, out: &mut Vec<Delivery>) {
        while let Some(ev) = self.q.pop_before(t) {
            self.handle(ev.at, ev.payload, out);
        }
        self.q.advance_to(t);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    fn label(&self) -> &'static str {
        "omesh"
    }

    fn set_lifecycle_capture(&mut self, on: bool) {
        self.capture = on;
    }

    fn lifecycle_capture(&self) -> bool {
        self.capture
    }

    fn take_lifecycles(&mut self, out: &mut Vec<MsgLifecycle>) {
        out.append(&mut self.lifecycles);
    }

    fn observe_nodes(&self, out: &mut Vec<NodeObs>) {
        for node in 0..self.num_nodes() {
            let queue_depth = (0..4)
                .map(|d| self.seg_wait[node * 4 + d].len() as u64)
                .sum();
            out.push(NodeObs {
                node: node as u32,
                queue_depth,
                link_busy_ps: self.node_busy_ps[node],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::MsgId;

    fn sim() -> OmeshSim {
        OmeshSim::new(OmeshConfig::new(4))
    }

    fn msg(id: u64, src: u32, dst: u32, class: MsgClass, bytes: u32) -> Message {
        Message {
            id: MsgId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class,
            bytes,
        }
    }

    fn drain(s: &mut OmeshSim) -> Vec<Delivery> {
        let mut out = Vec::new();
        s.drain(&mut out);
        out
    }

    #[test]
    fn xy_path_shape() {
        let s = sim();
        let p = s.xy_path(NodeId(0), NodeId(15));
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(15)));
        assert_eq!(p.len(), 7); // 6 hops corner to corner in 4x4
                                // X first
        assert_eq!(p[1], NodeId(1));
    }

    /// The O(1) `xy_node` formula must agree with a literal hop-by-hop
    /// XY walk for every (src, dst) pair — it replaced a materialised
    /// path and any disagreement silently reroutes traffic.
    #[test]
    fn xy_node_matches_walked_route() {
        for side in [2usize, 3, 4, 5] {
            let s = OmeshSim::new(OmeshConfig::new(side));
            let n = side * side;
            for src in 0..n as u32 {
                for dst in 0..n as u32 {
                    let (src, dst) = (NodeId(src), NodeId(dst));
                    let mut walked = vec![src];
                    let (mut x, mut y) = (src.idx() % side, src.idx() / side);
                    let (dx, dy) = (dst.idx() % side, dst.idx() / side);
                    while x != dx {
                        x = if dx > x { x + 1 } else { x - 1 };
                        walked.push(NodeId((y * side + x) as u32));
                    }
                    while y != dy {
                        y = if dy > y { y + 1 } else { y - 1 };
                        walked.push(NodeId((y * side + x) as u32));
                    }
                    assert_eq!(s.xy_path(src, dst), walked, "{src}->{dst} side {side}");
                    let r = Route::new(side, src, dst);
                    for (k, w) in walked.windows(2).enumerate() {
                        assert_eq!(
                            r.seg(side, k),
                            w[0].idx() * 4 + dir_between(side, w[0], w[1]),
                            "segment mismatch at step {k} of {src}->{dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn data_message_delivers_optically() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        assert!(out[0].latency() > SimTime::ZERO);
        assert!(s.optical_bits == 512);
    }

    #[test]
    fn control_message_goes_electrically() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Control, 8));
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        assert_eq!(s.optical_bits, 0, "control must not burn laser bits");
    }

    #[test]
    fn segments_all_released_after_transfer() {
        let mut s = sim();
        for i in 0..20 {
            s.inject(
                SimTime::ZERO,
                msg(
                    i,
                    (i % 16) as u32,
                    ((i + 5) % 16) as u32,
                    MsgClass::Data,
                    64,
                ),
            );
        }
        let out = drain(&mut s);
        assert_eq!(out.len(), 20);
        assert!(
            s.seg_busy.iter().all(|b| b.is_none()),
            "leaked segment reservation"
        );
        assert!(s.seg_wait.iter().all(|w| w.is_empty()), "stranded waiter");
    }

    #[test]
    fn colliding_paths_serialise() {
        let mut a = sim();
        a.inject(SimTime::ZERO, msg(1, 0, 3, MsgClass::Data, 512));
        let solo = drain(&mut a)[0].latency();

        let mut b = sim();
        // Same row, same direction: second transfer must wait.
        b.inject(SimTime::ZERO, msg(1, 0, 3, MsgClass::Data, 512));
        b.inject(SimTime::ZERO, msg(2, 0, 3, MsgClass::Data, 512));
        let both = drain(&mut b);
        let worst = both.iter().map(|d| d.latency()).max().unwrap();
        assert!(
            worst.as_ps() > solo.as_ps() + 400,
            "no serialisation visible: solo={solo}, worst={worst}"
        );
    }

    #[test]
    fn bigger_messages_take_longer() {
        let mut a = sim();
        a.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let small = drain(&mut a)[0].latency();
        let mut b = sim();
        b.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 4096));
        let large = drain(&mut b)[0].latency();
        assert!(large > small);
    }

    #[test]
    fn setup_dominates_short_optical_transfers() {
        // With ACK on, optical setup ≈ 2×hops×3cyc: a near-minimal data
        // burst should still pay it.
        let mut with_ack = sim();
        with_ack.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let l_ack = drain(&mut with_ack)[0].latency();

        let mut cfg = OmeshConfig::new(4);
        cfg.ack_required = false;
        let mut no_ack = OmeshSim::new(cfg);
        no_ack.inject(SimTime::ZERO, msg(1, 0, 15, MsgClass::Data, 64));
        let l_no = drain(&mut no_ack)[0].latency();
        assert!(l_ack > l_no, "ack overhead invisible: {l_ack} vs {l_no}");
    }

    #[test]
    fn self_send_delivers() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 5, 5, MsgClass::Data, 64));
        assert_eq!(drain(&mut s).len(), 1);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut s = sim();
            for i in 0..200u64 {
                let src = (i * 7 % 16) as u32;
                let dst = ((i * 7 + 5) % 16) as u32;
                s.inject(
                    SimTime::from_ns(i * 3),
                    msg(i, src, dst, MsgClass::Data, 64 + (i as u32 % 3) * 64),
                );
            }
            drain(&mut s)
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lifecycle_components_sum_exactly() {
        let mut s = sim();
        s.set_lifecycle_capture(true);
        s.inject(SimTime::ZERO, msg(0, 5, 5, MsgClass::Data, 64)); // loopback
        for i in 1..200u64 {
            let src = (i * 7 % 16) as u32;
            let dst = ((i * 7 + 5) % 16) as u32;
            let class = if i % 3 == 0 {
                MsgClass::Control
            } else {
                MsgClass::Data
            };
            s.inject(SimTime::from_ns(i % 40), msg(i, src, dst, class, 64));
        }
        let out = drain(&mut s);
        assert_eq!(out.len(), 200);
        let mut lc = Vec::new();
        s.take_lifecycles(&mut lc);
        assert_eq!(lc.len(), 200);
        for l in &lc {
            assert_eq!(l.breakdown.total_ps(), l.latency_ps(), "{:?}", l.msg.id);
        }
        // Optical transfers see setup-path arbitration and propagation;
        // contention shows up as queueing somewhere.
        assert!(lc.iter().any(|l| l.breakdown.arbitration_ps > 0));
        assert!(lc.iter().any(|l| l.breakdown.queue_ps > 0));
        assert!(lc.iter().any(|l| l.breakdown.serialization_ps > 0));
    }

    #[test]
    fn lifecycle_capture_does_not_change_timing() {
        let run = |capture: bool| {
            let mut s = sim();
            s.set_lifecycle_capture(capture);
            for i in 0..150u64 {
                s.inject(
                    SimTime::from_ns(i % 25),
                    msg(
                        i,
                        (i % 16) as u32,
                        ((i * 11 + 1) % 16) as u32,
                        MsgClass::Data,
                        128,
                    ),
                );
            }
            drain(&mut s)
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at.as_ps()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn power_report_positive_under_traffic() {
        let mut s = sim();
        for i in 0..50 {
            s.inject(SimTime::from_ns(i), msg(i, 0, 15, MsgClass::Data, 256));
        }
        let mut out = Vec::new();
        let end = s.drain(&mut out);
        let p = s.power_report(end);
        assert!(p.laser_mw > 0.0);
        assert!(
            p.modulation_mw > 0.0,
            "dynamic power should reflect traffic"
        );
    }

    #[test]
    fn stats_track_classes() {
        let mut s = sim();
        s.inject(SimTime::ZERO, msg(1, 0, 3, MsgClass::Control, 8));
        s.inject(SimTime::ZERO, msg(2, 0, 3, MsgClass::Data, 64));
        drain(&mut s);
        assert_eq!(s.stats().ctrl_latency_ps.count(), 1);
        assert_eq!(s.stats().data_latency_ps.count(), 1);
    }
}
